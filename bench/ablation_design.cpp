// Ablation bench: quantifies each design choice DESIGN.md calls out, on the
// paper's power-law workload (the most discriminating one):
//
//   full       — Algorithm 2 + per-server re-allocation (paper's evaluated
//                configuration, `solve_algorithm2_refined`)
//   raw        — Algorithm 2 exactly as the pseudocode (no refinement)
//   no-density — step 2 (tail density sort) disabled
//   paper-typo — tail sorted NONDECREASING by density (the Section VI-A
//                prose reading; Lemma V.10 requires the opposite)
//   no-sort    — both sorts disabled (heap placement only)
//   alg1       — Algorithm 1 (raw) for cross-algorithm comparison
//
// Every row reports mean utility relative to the super-optimal bound.
// Expected: full > raw ~ no-density > paper-typo > no-sort; alg1 ~ raw.
// (The tail density sort matters mostly through its *direction*: the
// nondecreasing reading of the paper's prose measurably loses.)

#include <array>
#include <iostream>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/refine.hpp"
#include "alloc/super_optimal.hpp"
#include "sim/workload.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace aa;

struct Accumulator {
  std::array<double, 6> utility{};
  double so = 0.0;
};

Accumulator run_beta(double beta, std::size_t trials) {
  std::vector<Accumulator> partial(trials);
  support::parallel_for(
      support::global_pool(), 0, trials, [&](std::size_t t) {
        sim::WorkloadConfig config;
        config.num_servers = 8;
        config.capacity = 1000;
        config.beta = beta;
        config.dist.kind = support::DistributionKind::kPowerLaw;
        config.dist.alpha = 2.0;
        auto rng = support::Rng::child(808, t);
        const core::Instance instance = sim::generate_instance(config, rng);

        const alloc::SuperOptimalResult so = alloc::super_optimal(
            instance.threads, instance.num_servers, instance.capacity);
        const auto lin = util::linearize(instance.threads, so.c_hat);

        auto evaluate = [&](const core::Algorithm2Options& options) {
          return core::total_utility(
              instance,
              core::assign_algorithm2_with_options(instance, lin, options));
        };

        Accumulator& acc = partial[t];
        acc.so = so.utility;
        acc.utility[0] = core::solve_algorithm2_refined(instance).utility;
        acc.utility[1] = evaluate(core::Algorithm2Options{});
        core::Algorithm2Options no_density;
        no_density.resort_tail_by_density = false;
        acc.utility[2] = evaluate(no_density);
        core::Algorithm2Options typo;
        typo.density_nonincreasing = false;
        acc.utility[3] = evaluate(typo);
        core::Algorithm2Options no_sort;
        no_sort.sort_by_peak = false;
        no_sort.resort_tail_by_density = false;
        acc.utility[4] = evaluate(no_sort);
        acc.utility[5] = core::solve_algorithm1(instance).utility;
      });
  Accumulator total;
  for (const Accumulator& p : partial) {
    total.so += p.so;
    for (std::size_t i = 0; i < total.utility.size(); ++i) {
      total.utility[i] += p.utility[i];
    }
  }
  return total;
}

std::size_t trials_from_env() {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 500;
}

}  // namespace

int main() {
  const std::size_t trials = trials_from_env();
  support::Table table({"beta", "full/SO", "raw/SO", "no-density/SO",
                        "paper-typo/SO", "no-sort/SO", "alg1/SO"});
  for (const double beta : {2.0, 5.0, 10.0, 15.0}) {
    const Accumulator acc = run_beta(beta, trials);
    table.add_row_numeric({beta, acc.utility[0] / acc.so,
                           acc.utility[1] / acc.so, acc.utility[2] / acc.so,
                           acc.utility[3] / acc.so, acc.utility[4] / acc.so,
                           acc.utility[5] / acc.so});
  }
  std::cout << "== Ablation: Algorithm 2 design choices (power law, "
               "alpha = 2, m = 8, C = 1000, "
            << trials << " trials) ==\n"
            << "expect: full > raw ~ no-density > paper-typo > no-sort;\n"
            << "alg1 close to raw.\n\n"
            << table.to_text() << std::flush;
  return 0;
}
