// Related-work baseline bench (Section II, Jiang et al. [13]): optimal
// pair co-scheduling vs AA on n = 2m workloads.
//
// Co-scheduling fixes group sizes at exactly two threads per server; AA
// chooses group sizes freely. On the n = 2m shape the optimal pairing is
// an EXACT solver for its restricted space, so it can edge out approximate
// AA by a fraction of a percent; adding local search to AA recovers (and
// exceeds) it, and AA dominates outright whenever uneven group sizes pay
// off (see tests/coschedule_test.cpp) or n != 2m, where pairing does not
// even apply. Expected: AA within ~0.5% of optimal pairing, AA+search >=
// optimal pairing, optimal pairing >= greedy pairing.

#include <cstdlib>
#include <iostream>

#include "aa/coschedule.hpp"
#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "sim/workload.hpp"
#include "support/table.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  const std::size_t trials = trials_from_env(200);

  support::Table table({"alpha", "AA/pairs(opt)", "AA+search/pairs(opt)",
                        "AA/pairs(greedy)", "pairsOpt/greedy"});
  for (const double alpha : {5.0, 3.0, 2.0, 1.5}) {
    double aa_sum = 0.0;
    double search_sum = 0.0;
    double exact_pairs_sum = 0.0;
    double greedy_pairs_sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      sim::WorkloadConfig config;
      config.num_servers = 8;
      config.capacity = 200;
      config.beta = 2.0;  // n = 16 = 2m: the co-scheduling shape.
      config.dist.kind = support::DistributionKind::kPowerLaw;
      config.dist.alpha = alpha;
      auto rng = support::Rng::child(1337, t);
      const core::Instance instance = sim::generate_instance(config, rng);

      const core::SolveResult aa = core::solve_algorithm2_refined(instance);
      aa_sum += aa.utility;
      search_sum +=
          core::improve_local_search(instance, aa.assignment).utility;
      exact_pairs_sum += core::coschedule_exact_pairs(instance).utility;
      greedy_pairs_sum += core::coschedule_greedy_pairs(instance).utility;
    }
    table.add_row_numeric({alpha, aa_sum / exact_pairs_sum,
                           search_sum / exact_pairs_sum,
                           aa_sum / greedy_pairs_sum,
                           exact_pairs_sum / greedy_pairs_sum});
  }

  std::cout << "== Baseline: optimal pair co-scheduling vs AA (power law, "
               "m=8, n=16, C=200, "
            << trials << " trials) ==\n"
            << "expect: AA within ~0.5% of optimal pairing (an exact solver\n"
            << "for this restricted shape); AA+search >= optimal pairing;\n"
            << "optimal pairing >= greedy pairing.\n\n"
            << table.to_text() << std::flush;
  return 0;
}
