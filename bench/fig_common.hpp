#pragma once

// Shared scaffolding for the figure-reproduction benches: every binary
// prints the figure id, the workload description, and the series table
// (mean of Algorithm 2's utility over each competitor's, exactly the ratios
// the paper plots), then a CSV block for downstream plotting.
//
// Trials default to the paper's 1000; set AA_BENCH_TRIALS to override
// (tests and smoke runs use small values).

// Each bench also installs an aa::obs session for its lifetime (MetricsScope)
// and appends the machine-readable metrics blob — counters, phase timings and
// the sampled approximation certificates — after the CSV block, so perf work
// can diff solver behaviour run over run. Set AA_BENCH_METRICS=0 to suppress.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "obs/session.hpp"
#include "sim/figures.hpp"

namespace aa::bench {

inline std::size_t trials_from_env(std::size_t default_trials = 1000) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return default_trials;
}

inline sim::SweepOptions paper_options() {
  sim::SweepOptions options;  // m = 8, C = 1000, the paper's setting.
  options.trials = trials_from_env();
  return options;
}

inline void print_figure(const std::string& title,
                         const std::string& expectation,
                         const support::Table& table) {
  std::cout << "== " << title << " ==\n"
            << expectation << "\n\n"
            << table.to_text() << "\ncsv:\n"
            << table.to_csv() << std::flush;
}

/// RAII observability scope for bench mains: installs an obs::Session for
/// the run and prints the metrics blob (a single JSON document after a
/// "metrics:" line) when the bench finishes. Declare one at the top of
/// main() so every solve in the sweep is instrumented.
class MetricsScope {
 public:
  MetricsScope() {
    const char* env = std::getenv("AA_BENCH_METRICS");
    if (env != nullptr && std::string(env) == "0") return;
    session_ = std::make_unique<obs::Session>();
  }

  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  ~MetricsScope() {
    if (session_ == nullptr) return;
    std::cout << "\nmetrics:\n"
              << session_->to_json().dump(2) << "\n"
              << std::flush;
  }

 private:
  std::unique_ptr<obs::Session> session_;
};

}  // namespace aa::bench
