#pragma once

// Shared scaffolding for the figure-reproduction benches: every binary
// prints the figure id, the workload description, and the series table
// (mean of Algorithm 2's utility over each competitor's, exactly the ratios
// the paper plots), then a CSV block for downstream plotting.
//
// Trials default to the paper's 1000; set AA_BENCH_TRIALS to override
// (tests and smoke runs use small values).

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/figures.hpp"

namespace aa::bench {

inline std::size_t trials_from_env(std::size_t default_trials = 1000) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return default_trials;
}

inline sim::SweepOptions paper_options() {
  sim::SweepOptions options;  // m = 8, C = 1000, the paper's setting.
  options.trials = trials_from_env();
  return options;
}

inline void print_figure(const std::string& title,
                         const std::string& expectation,
                         const support::Table& table) {
  std::cout << "== " << title << " ==\n"
            << expectation << "\n\n"
            << table.to_text() << "\ncsv:\n"
            << table.to_csv() << std::flush;
}

}  // namespace aa::bench
