// Figure 1(a): Algorithm 2 vs SO / UU / UR / RU / RR under the uniform
// distribution, beta = 1..15, m = 8, C = 1000, 1000 trials per point.
//
// Paper shape: Alg2/SO >= 0.99 throughout; heuristic ratios start near 1
// (UU exactly 1 at beta = 1) and grow with beta; UU~RU and UR~RR converge
// for large beta, with the uniform-allocation pair clearly ahead.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  aa::support::DistributionParams dist;
  dist.kind = aa::support::DistributionKind::kUniform;
  const auto table =
      aa::sim::sweep_beta(dist, {}, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 1(a): uniform distribution, beta sweep",
      "expect: Alg2/SO >= 0.99; heuristic ratios >= 1 and growing in beta;\n"
      "UU == 1 at beta = 1; UU/RU ahead of UR/RR.",
      table);
  return 0;
}
