// Figure 2(b): power law with beta = 5 fixed, alpha swept. m = 8, C = 1000.
//
// Paper shape: Algorithm 2 near-optimal throughout; heuristics improve as
// alpha grows (the tail lightens, so maximum utilities homogenize); UU/RU
// stay ahead of UR/RR.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  const auto table = aa::sim::sweep_powerlaw_alpha(
      {1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}, /*beta=*/5.0,
      aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 2(b): power law, alpha sweep at beta = 5",
      "expect: Alg2/SO ~0.99 flat; heuristic ratios decrease toward 1 as\n"
      "alpha grows; UU/RU below UR/RR in ratio (i.e. better heuristics).",
      table);
  return 0;
}
