// Extension bench (paper Section VIII future work): online utility drift.
// Compares the three re-assignment policies over identical drift sequences
// at increasing drift intensity.
//
// Expected: resolve tracks the oracle by construction with the most
// migrations; sticky stays within its hysteresis bound of the oracle at a
// fraction of the migrations; static decays as drift grows.

#include <cstdlib>
#include <iostream>

#include "aa/online.hpp"
#include "support/table.hpp"
#include "utility/generator.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  const std::size_t trials = trials_from_env(50);

  support::Table table({"sigma", "static/oracle", "sticky/oracle",
                        "resolve/oracle", "sticky migr/epoch",
                        "resolve migr/epoch"});
  for (const double sigma : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    double static_frac = 0.0;
    double sticky_frac = 0.0;
    double resolve_frac = 0.0;
    double sticky_migr = 0.0;
    double resolve_migr = 0.0;
    core::OnlineConfig config;
    config.epochs = 40;
    config.drift_sigma = sigma;

    for (std::size_t t = 0; t < trials; ++t) {
      support::DistributionParams dist;
      dist.kind = support::DistributionKind::kPowerLaw;
      dist.alpha = 2.0;
      auto gen_rng = support::Rng::child(55, t);
      core::Instance base;
      base.num_servers = 4;
      base.capacity = 200;
      base.threads = util::generate_utilities(20, 200, dist, gen_rng);

      support::Rng r1 = support::Rng::child(66, t);
      support::Rng r2 = support::Rng::child(66, t);
      support::Rng r3 = support::Rng::child(66, t);
      const auto st =
          core::run_online(base, core::OnlinePolicy::kStatic, config, r1);
      const auto sk =
          core::run_online(base, core::OnlinePolicy::kSticky, config, r2);
      const auto rs =
          core::run_online(base, core::OnlinePolicy::kResolve, config, r3);
      static_frac += st.utility_fraction();
      sticky_frac += sk.utility_fraction();
      resolve_frac += rs.utility_fraction();
      sticky_migr += static_cast<double>(sk.migrations) /
                     static_cast<double>(config.epochs);
      resolve_migr += static_cast<double>(rs.migrations) /
                      static_cast<double>(config.epochs);
    }
    const auto scale = static_cast<double>(trials);
    table.add_row_numeric({sigma, static_frac / scale, sticky_frac / scale,
                           resolve_frac / scale, sticky_migr / scale,
                           resolve_migr / scale});
  }

  std::cout << "== Extension: online drift (power law alpha=2, m=4, n=20, "
               "40 epochs, "
            << trials << " trials) ==\n"
            << "expect: resolve/oracle = 1; sticky/oracle >= 1/(1+0.05);\n"
            << "static/oracle decays with sigma; sticky migrates far less\n"
            << "than resolve.\n\n"
            << table.to_text() << std::flush;
  return 0;
}
