// Figure 3(c): discrete distribution with beta = 5, gamma = 0.85, theta
// swept. Paper shape: heuristics degrade as theta grows (high/low utility
// gap widens); Algorithm 2 stays above 99% of SO.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  const auto table = aa::sim::sweep_discrete_theta(
      {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0}, /*beta=*/5.0,
      /*gamma=*/0.85, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 3(c): discrete, theta sweep at beta = 5, gamma = 0.85",
      "expect: heuristic ratios grow with theta; Alg2/SO >= 0.99\n"
      "throughout.",
      table);
  return 0;
}
