// Ablation bench: how much of the remaining gap to the super-optimal bound
// does local search close, and what does it cost?
//
// Rows compare, per beta on the power-law workload:
//   raw/SO      — Algorithm 2 pseudocode
//   refined/SO  — + per-server exact re-allocation
//   search/SO   — + move/swap hill climbing
// plus mean accepted moves/swaps per instance. Expected: each stage is a
// strict (small) improvement; local search's edge shrinks as beta grows
// (Algorithm 2 is already near-optimal when servers hold many threads).

#include <cstdlib>
#include <iostream>

#include "aa/algorithm2.hpp"
#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "sim/workload.hpp"
#include "support/table.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  const std::size_t trials = trials_from_env(100);

  support::Table table({"beta", "raw/SO", "refined/SO", "search/SO",
                        "moves", "swaps"});
  for (const double beta : {2.0, 5.0, 10.0}) {
    double raw_sum = 0.0;
    double refined_sum = 0.0;
    double search_sum = 0.0;
    double so_sum = 0.0;
    double moves = 0.0;
    double swaps = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      sim::WorkloadConfig config;
      config.num_servers = 8;
      config.capacity = 200;  // Smaller C keeps local search affordable.
      config.beta = beta;
      config.dist.kind = support::DistributionKind::kPowerLaw;
      config.dist.alpha = 2.0;
      auto rng = support::Rng::child(31415, t);
      const core::Instance instance = sim::generate_instance(config, rng);

      const core::SolveResult raw = core::solve_algorithm2(instance);
      const core::SolveResult refined =
          core::solve_algorithm2_refined(instance);
      const core::LocalSearchResult searched =
          core::improve_local_search(instance, refined.assignment);

      raw_sum += raw.utility;
      refined_sum += refined.utility;
      search_sum += searched.utility;
      so_sum += raw.super_optimal_utility;
      moves += static_cast<double>(searched.moves_applied);
      swaps += static_cast<double>(searched.swaps_applied);
    }
    const auto scale = static_cast<double>(trials);
    table.add_row_numeric({beta, raw_sum / so_sum, refined_sum / so_sum,
                           search_sum / so_sum, moves / scale, swaps / scale});
  }

  std::cout << "== Ablation: local search on top of Algorithm 2 (power law "
               "alpha=2, m=8, C=200, "
            << trials << " trials) ==\n"
            << "expect: raw < refined < search, all converging toward SO as\n"
            << "beta grows; few accepted moves/swaps (Algorithm 2 is a good\n"
            << "starting point).\n\n"
            << table.to_text() << std::flush;
  return 0;
}
