// Microbenchmarks of the exact solvers: exhaustive canonical-partition
// enumeration (aa/exact.hpp) vs branch-and-bound with the suffix
// super-optimal bound (aa/branch_and_bound.hpp). Expected: both exponential
// in n, but B&B's pruning extends the practical range by several threads on
// uniform workloads and collapses to near-zero work on heavy-tailed ones
// (the incumbent already matches the root bound).

#include <benchmark/benchmark.h>

#include "aa/branch_and_bound.hpp"
#include "aa/exact.hpp"
#include "sim/workload.hpp"

namespace {

aa::core::Instance sized_instance(std::size_t n,
                                  aa::support::DistributionKind kind) {
  aa::sim::WorkloadConfig config;
  config.num_servers = 3;
  config.capacity = 24;
  config.beta = static_cast<double>(n) / 3.0;
  config.dist.kind = kind;
  auto rng = aa::support::Rng::child(99, n);
  return aa::sim::generate_instance(config, rng);
}

void BM_ExhaustiveUniform(benchmark::State& state) {
  const auto instance = sized_instance(
      static_cast<std::size_t>(state.range(0)),
      aa::support::DistributionKind::kUniform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_exact(instance, 12));
  }
}
BENCHMARK(BM_ExhaustiveUniform)->DenseRange(8, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundUniform(benchmark::State& state) {
  const auto instance = sized_instance(
      static_cast<std::size_t>(state.range(0)),
      aa::support::DistributionKind::kUniform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_branch_and_bound(instance));
  }
}
BENCHMARK(BM_BranchAndBoundUniform)->DenseRange(8, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundPowerLaw(benchmark::State& state) {
  const auto instance = sized_instance(
      static_cast<std::size_t>(state.range(0)),
      aa::support::DistributionKind::kPowerLaw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_branch_and_bound(instance));
  }
}
BENCHMARK(BM_BranchAndBoundPowerLaw)->DenseRange(8, 14, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
