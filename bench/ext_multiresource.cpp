// Extension bench (paper Section VIII future work): multiple resource
// types with additive utilities. Measures the generalized Algorithm 2
// against the exact optimum (small instances) and round-robin placement
// (larger instances) as the number of resource types grows and as
// per-thread type demands skew.
//
// Expected: >= ~0.95 of optimal on small instances; a consistent edge over
// round-robin that widens with demand skew (round-robin cannot pair
// complementary threads).

#include <cstdlib>
#include <iostream>
#include <memory>

#include "aa/multi_resource.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace aa;

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Thread with a preferred type: full-strength utility on one type,
/// `skew`-scaled on the others.
core::MultiUtility skewed_bundle(const std::vector<core::Resource>& caps,
                                 std::size_t preferred, double skew,
                                 support::Rng& rng) {
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  dist.alpha = 2.0;
  core::MultiUtility bundle;
  for (std::size_t r = 0; r < caps.size(); ++r) {
    util::UtilityPtr base = util::generate_utility(caps[r], dist, rng);
    const double factor = r == preferred ? 1.0 : skew;
    bundle.parts.push_back(
        std::make_shared<util::ScaledUtility>(std::move(base), factor));
  }
  return bundle;
}

}  // namespace

int main() {
  const std::size_t trials = trials_from_env(60);

  // Part 1: quality vs exact on small instances, growing type count.
  support::Table exact_table({"types", "alg2m/OPT(mean)", "alg2m/OPT(min)"});
  for (const std::size_t types : {1u, 2u, 3u}) {
    double sum_ratio = 0.0;
    double min_ratio = 1.0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto rng = support::Rng::child(611, t * 10 + types);
      core::MultiInstance instance;
      instance.num_servers = 2;
      instance.capacities.assign(types, 16);
      for (std::size_t i = 0; i < 6; ++i) {
        instance.threads.push_back(
            skewed_bundle(instance.capacities, i % types, 0.2, rng));
      }
      const double approx = core::solve_algorithm2_multi(instance).utility;
      const double exact = core::solve_exact_multi(instance);
      const double ratio = exact > 0.0 ? approx / exact : 1.0;
      sum_ratio += ratio;
      min_ratio = std::min(min_ratio, ratio);
    }
    exact_table.add_row_numeric({static_cast<double>(types),
                                 sum_ratio / static_cast<double>(trials),
                                 min_ratio});
  }

  // Part 2: edge over round-robin as skew sharpens (2 types, larger n).
  support::Table rr_table({"skew", "alg2m/RR"});
  for (const double skew : {1.0, 0.5, 0.2, 0.05}) {
    double alg_sum = 0.0;
    double rr_sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto rng = support::Rng::child(733, t);
      core::MultiInstance instance;
      instance.num_servers = 4;
      instance.capacities = {100, 100};
      for (std::size_t i = 0; i < 20; ++i) {
        instance.threads.push_back(
            skewed_bundle(instance.capacities, i % 2, skew, rng));
      }
      alg_sum += core::solve_algorithm2_multi(instance).utility;
      rr_sum += core::solve_round_robin_multi(instance).utility;
    }
    rr_table.add_row_numeric({skew, alg_sum / rr_sum});
  }

  std::cout << "== Extension: multiple resource types (additive utilities, "
            << trials << " trials) ==\n"
            << "expect: alg2m/OPT >= ~0.95; alg2m/RR >= 1, widening as\n"
            << "per-thread type demands skew (skew = off-type utility\n"
            << "scale; 1.0 = symmetric demands).\n\n"
            << exact_table.to_text() << "\n"
            << rr_table.to_text() << std::flush;
  return 0;
}
