// Domain bench (paper Section I motivation): end-to-end multicore cache
// partitioning. Synthetic threads with mixed locality are profiled through
// the Mattson stack-distance engine; AA schedules them onto sockets and
// partitions LLC ways; achieved throughput is measured on the RAW miss
// curves (not the concave model).
//
// Expected: AA (Algorithm 2 refined) beats UU/RR placement on measured
// aggregate IPC, and the concave model's predicted utility tracks the
// measured value closely.

#include <cstdlib>
#include <iostream>

#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "cachesim/machine.hpp"
#include "support/table.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  using namespace aa::cachesim;
  const std::size_t trials = trials_from_env(20);

  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 16, .lines_per_way = 64}};
  const std::size_t lines = machine.geometry.lines_per_way;

  support::Table table(
      {"threads", "AA IPC", "UU IPC", "RR IPC", "AA/UU", "AA/RR",
       "model/measured"});

  for (const std::size_t num_threads : {4u, 8u, 12u}) {
    double aa_sum = 0.0;
    double uu_sum = 0.0;
    double rr_sum = 0.0;
    double model_sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto rng = support::Rng::child(4242, t * 100 + num_threads);
      std::vector<ThreadProfile> profiles;
      for (std::size_t i = 0; i < num_threads; ++i) {
        // Rotate through archetypes with randomized footprints.
        TraceConfig config;
        switch (i % 4) {
          case 0:
            config = TraceConfig::cache_friendly(
                (2 + rng.uniform_below(6)) * lines, 40000);
            break;
          case 1:
            config = TraceConfig::mixed(
                (1 + rng.uniform_below(3)) * lines,
                (4 + rng.uniform_below(8)) * lines, 60 * lines, 40000);
            break;
          case 2:
            config = TraceConfig::streaming(300 * lines, 40000);
            break;
          default:
            config = TraceConfig::cache_friendly(
                (8 + rng.uniform_below(10)) * lines, 40000);
            break;
        }
        profiles.push_back(profile_trace(generate_trace(config, rng),
                                         machine.geometry, PerfModel{}));
      }
      const core::Instance instance = build_instance(machine, profiles);
      const core::SolveResult solved =
          core::solve_algorithm2_refined(instance);
      aa_sum += measure_throughput(profiles, solved.assignment);
      model_sum += solved.utility;
      uu_sum += measure_throughput(profiles, core::heuristic_uu(instance));
      rr_sum +=
          measure_throughput(profiles, core::heuristic_rr(instance, rng));
    }
    table.add_row_numeric({static_cast<double>(num_threads),
                           aa_sum / static_cast<double>(trials),
                           uu_sum / static_cast<double>(trials),
                           rr_sum / static_cast<double>(trials),
                           aa_sum / uu_sum, aa_sum / rr_sum,
                           model_sum / aa_sum});
  }

  std::cout << "== Domain: multicore cache partitioning (2 sockets x 16 "
               "ways, "
            << trials << " trials) ==\n"
            << "expect: AA/UU and AA/RR >= 1 (growing with contention);\n"
            << "model/measured ~ 1 (concave projection gap only).\n\n"
            << table.to_text() << std::flush;
  return 0;
}
