// Asymptotic-shape benchmarks for Theorems V.18 and VI.2:
//   Algorithm 1: O(m n^2 + n (log mC)^2) — the m n^2 term dominates at
//                large n, so time grows ~quadratically in n.
//   Algorithm 2: O(n (log mC)^2) — near-linear in n (dominated by the
//                super-optimal allocation).
// Also isolates the two super-optimal allocator implementations: the
// heap greedy is O((n + mC) log n), the bisection O(n (log mC)^2), so the
// bisection wins at large C.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "alloc/super_optimal.hpp"
#include "sim/workload.hpp"

namespace {

aa::core::Instance sized_instance(std::size_t n, std::size_t m,
                                  aa::util::Resource capacity) {
  aa::sim::WorkloadConfig config;
  config.num_servers = m;
  config.capacity = capacity;
  config.beta = static_cast<double>(n) / static_cast<double>(m);
  config.dist.kind = aa::support::DistributionKind::kUniform;
  auto rng = aa::support::Rng::child(7, n * 1000 + m);
  return aa::sim::generate_instance(config, rng);
}

void BM_Algorithm1_ScaleN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = sized_instance(n, 8, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_algorithm1(instance));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Algorithm1_ScaleN)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_Algorithm2_ScaleN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto instance = sized_instance(n, 8, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_algorithm2(instance));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Algorithm2_ScaleN)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_SuperOptimalBisection_ScaleC(benchmark::State& state) {
  const auto capacity =
      static_cast<aa::util::Resource>(state.range(0));
  const auto instance = sized_instance(64, 8, capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::alloc::super_optimal(
        instance.threads, instance.num_servers, instance.capacity));
  }
}
BENCHMARK(BM_SuperOptimalBisection_ScaleC)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

void BM_SuperOptimalGreedy_ScaleC(benchmark::State& state) {
  const auto capacity =
      static_cast<aa::util::Resource>(state.range(0));
  const auto instance = sized_instance(64, 8, capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::alloc::super_optimal_greedy(
        instance.threads, instance.num_servers, instance.capacity));
  }
}
BENCHMARK(BM_SuperOptimalGreedy_ScaleC)
    ->RangeMultiplier(4)
    ->Range(256, 16384);

}  // namespace

BENCHMARK_MAIN();
