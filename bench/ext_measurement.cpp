// Extension bench (paper Section VIII future work): planning on measured
// curves. Every thread's utility is re-estimated from noisy samples
// (utility/fitting.hpp); AA plans on the fitted instance and is evaluated
// on the TRUE one. Reports the realized fraction of the perfect-knowledge
// plan across noise levels and measurement budgets.
//
// Expected: remarkably robust — >= ~0.99 realized even at 20% noise for
// every budget (the assignment depends on coarse curve shape, not fine
// values; per-server refinement on the fitted curves absorbs the rest).

#include <cstdlib>
#include <iostream>

#include "aa/refine.hpp"
#include "sim/workload.hpp"
#include "support/table.hpp"
#include "utility/fitting.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  const std::size_t trials = trials_from_env(50);

  struct Budget {
    std::size_t levels;
    std::size_t repeats;
  };
  const std::vector<Budget> budgets = {{4, 1}, {8, 3}, {16, 8}};
  const std::vector<double> noises = {0.02, 0.05, 0.1, 0.2};

  support::Table table({"noise", "4 lvl x1", "8 lvl x3", "16 lvl x8"});
  for (const double noise : noises) {
    std::vector<double> realized_fraction;
    for (const Budget& budget : budgets) {
      double realized_sum = 0.0;
      double perfect_sum = 0.0;
      for (std::size_t t = 0; t < trials; ++t) {
        sim::WorkloadConfig config;
        config.num_servers = 8;
        config.capacity = 200;
        config.beta = 4.0;
        config.dist.kind = support::DistributionKind::kPowerLaw;
        config.dist.alpha = 2.0;
        auto rng = support::Rng::child(4242, t);
        const core::Instance truth = sim::generate_instance(config, rng);

        core::Instance fitted = truth;
        const auto levels =
            util::even_levels(config.capacity, budget.levels);
        for (std::size_t i = 0; i < truth.threads.size(); ++i) {
          const auto samples = util::measure_utility(
              *truth.threads[i], levels, budget.repeats, noise, rng);
          fitted.threads[i] =
              util::fit_concave_utility(samples, config.capacity);
        }

        const core::SolveResult planned_fitted =
            core::solve_algorithm2_refined(fitted);
        realized_sum +=
            core::total_utility(truth, planned_fitted.assignment);
        perfect_sum += core::solve_algorithm2_refined(truth).utility;
      }
      realized_fraction.push_back(realized_sum / perfect_sum);
    }
    table.add_row_numeric({noise, realized_fraction[0], realized_fraction[1],
                           realized_fraction[2]});
  }

  std::cout << "== Extension: planning on measured curves (power law "
               "alpha=2, m=8, n=32, C=200, "
            << trials << " trials) ==\n"
            << "cells: realized true utility / perfect-knowledge plan.\n"
            << "expect: >= ~0.99 for every cell — the assignment depends on\n"
            << "coarse curve shape, so AA is robust to estimation error.\n\n"
            << table.to_text() << std::flush;
  return 0;
}
