// Microbenchmarks of the end-to-end solvers at the paper's timing point
// (Section VII: m = 8, n = 100, C = 1000 — "an unoptimized Matlab
// implementation of Algorithm 2 finishes in only 0.02 seconds") and of the
// baselines. Expected shape: Algorithm 2 comfortably under the paper's
// Matlab time; heuristics orders of magnitude cheaper; Algorithm 1 close to
// Algorithm 2 at this size (the m n^2 term is still small).

#include <benchmark/benchmark.h>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "sim/workload.hpp"

namespace {

aa::core::Instance paper_instance(std::uint64_t seed) {
  aa::sim::WorkloadConfig config;
  config.num_servers = 8;
  config.capacity = 1000;
  config.beta = 12.5;  // n = 100.
  config.dist.kind = aa::support::DistributionKind::kUniform;
  auto rng = aa::support::Rng::child(2016, seed);
  return aa::sim::generate_instance(config, rng);
}

void BM_Algorithm2_PaperPoint(benchmark::State& state) {
  const auto instance = paper_instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_algorithm2(instance));
  }
}
BENCHMARK(BM_Algorithm2_PaperPoint);

void BM_Algorithm2Refined_PaperPoint(benchmark::State& state) {
  const auto instance = paper_instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_algorithm2_refined(instance));
  }
}
BENCHMARK(BM_Algorithm2Refined_PaperPoint);

void BM_Algorithm1_PaperPoint(benchmark::State& state) {
  const auto instance = paper_instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::solve_algorithm1(instance));
  }
}
BENCHMARK(BM_Algorithm1_PaperPoint);

void BM_HeuristicUU_PaperPoint(benchmark::State& state) {
  const auto instance = paper_instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::heuristic_uu(instance));
  }
}
BENCHMARK(BM_HeuristicUU_PaperPoint);

void BM_HeuristicRR_PaperPoint(benchmark::State& state) {
  const auto instance = paper_instance(0);
  aa::support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aa::core::heuristic_rr(instance, rng));
  }
}
BENCHMARK(BM_HeuristicRR_PaperPoint);

void BM_InstanceGeneration_PaperPoint(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(paper_instance(seed++));
  }
}
BENCHMARK(BM_InstanceGeneration_PaperPoint);

}  // namespace

BENCHMARK_MAIN();
