// Figure 3(b): discrete distribution with beta = 5, theta = 5, gamma swept.
//
// Paper shape: all algorithms do worst near gamma ~ 0.75 (Algorithm 2 still
// >= 97.5% of SO there); near gamma = 0 or 1 the threads homogenize and
// every heuristic recovers.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  const auto table = aa::sim::sweep_discrete_gamma(
      {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95},
      /*beta=*/5.0, /*theta=*/5.0, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 3(b): discrete, gamma sweep at beta = 5, theta = 5",
      "expect: worst point near gamma ~ 0.75 (Alg2/SO >= ~0.975); ratios\n"
      "fall back toward 1 at the gamma extremes.",
      table);
  return 0;
}
