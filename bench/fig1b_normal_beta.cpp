// Figure 1(b): normal(1,1) distribution (truncated at 0), beta = 1..15,
// m = 8, C = 1000. Paper shape: same trends as Figure 1(a).

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  aa::support::DistributionParams dist;
  dist.kind = aa::support::DistributionKind::kNormal;
  dist.mean = 1.0;
  dist.stddev = 1.0;
  const auto table =
      aa::sim::sweep_beta(dist, {}, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 1(b): normal(1,1) distribution, beta sweep",
      "expect: same trends as Figure 1(a) — Alg2/SO >= 0.99, heuristics\n"
      "degrade with beta, UU/RU above UR/RR.",
      table);
  return 0;
}
