// Microbenchmarks of the substrates the main pipeline stands on: the
// Mattson stack-distance engine (O(N log N) Fenwick vs O(N * footprint)
// naive), PCHIP construction + sampling, PAV projection, the set-assoc
// simulator, JSON parse/dump, and the MCKP solvers. These bound how fast
// instances can be profiled, generated and serialized.

#include <benchmark/benchmark.h>

#include "alloc/mckp.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "cachesim/stack_distance.hpp"
#include "io/instance_io.hpp"
#include "sim/workload.hpp"
#include "support/interpolate.hpp"
#include "utility/generator.hpp"

namespace {

using namespace aa;

cachesim::Trace bench_trace(std::size_t length) {
  support::Rng rng(1);
  return cachesim::generate_trace(
      cachesim::TraceConfig::mixed(64, 512, 4096, length), rng);
}

void BM_StackDistanceFenwick(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cachesim::compute_stack_distances(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StackDistanceFenwick)->Range(1 << 12, 1 << 17);

void BM_StackDistanceNaive(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cachesim::compute_stack_distances_naive(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StackDistanceNaive)->Range(1 << 12, 1 << 14);

void BM_SetAssocSimulation(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    cachesim::SetAssocCache cache({.num_sets = 64, .num_ways = 16}, 8);
    benchmark::DoNotOptimize(cache.run(trace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetAssocSimulation)->Range(1 << 12, 1 << 17);

void BM_GenerateUtility(benchmark::State& state) {
  support::Rng rng(2);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  const auto capacity = static_cast<util::Resource>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::generate_utility(capacity, dist, rng));
  }
}
BENCHMARK(BM_GenerateUtility)->Range(256, 4096);

void BM_PavProjection(benchmark::State& state) {
  support::Rng rng(3);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (auto& v : values) v = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::pav_nonincreasing(values));
  }
}
BENCHMARK(BM_PavProjection)->Range(1 << 8, 1 << 14);

void BM_JsonRoundTrip(benchmark::State& state) {
  sim::WorkloadConfig config;
  config.num_servers = 8;
  config.capacity = static_cast<util::Resource>(state.range(0));
  config.beta = 4.0;
  support::Rng rng(4);
  const core::Instance instance = sim::generate_instance(config, rng);
  const std::string document = io::instance_to_json(instance).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        io::instance_from_json(support::json_parse(document)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(document.size()));
}
BENCHMARK(BM_JsonRoundTrip)->Range(64, 1024);

void BM_MckpDp(benchmark::State& state) {
  support::Rng rng(5);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  std::vector<alloc::MckpClass> classes;
  for (int i = 0; i < 16; ++i) {
    const auto utility = util::generate_utility(64, dist, rng);
    classes.push_back(alloc::class_from_utility_uniform(*utility, 4));
  }
  const auto capacity = static_cast<util::Resource>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::mckp_dp_exact(classes, capacity));
  }
}
BENCHMARK(BM_MckpDp)->Range(64, 1024);

void BM_MckpGreedy(benchmark::State& state) {
  support::Rng rng(6);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  std::vector<alloc::MckpClass> classes;
  for (int i = 0; i < 16; ++i) {
    const auto utility = util::generate_utility(64, dist, rng);
    classes.push_back(alloc::class_from_utility_uniform(*utility, 4));
  }
  const auto capacity = static_cast<util::Resource>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::mckp_greedy(classes, capacity));
  }
}
BENCHMARK(BM_MckpGreedy)->Range(64, 1024);

}  // namespace

BENCHMARK_MAIN();
