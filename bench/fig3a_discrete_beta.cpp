// Figure 3(a): discrete two-point distribution (gamma = 0.85, theta = 5),
// beta = 1..15, m = 8, C = 1000. Paper shape: same trends as the other
// distributions.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  aa::support::DistributionParams dist;
  dist.kind = aa::support::DistributionKind::kDiscrete;
  dist.gamma = 0.85;
  dist.theta = 5.0;
  const auto table =
      aa::sim::sweep_beta(dist, {}, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 3(a): discrete (gamma = 0.85, theta = 5), beta sweep",
      "expect: same trends as Figures 1-2 — heuristics degrade with beta,\n"
      "Alg2/SO >= 0.99.",
      table);
  return 0;
}
