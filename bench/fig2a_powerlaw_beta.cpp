// Figure 2(a): power law with alpha = 2, beta = 1..15, m = 8, C = 1000.
//
// Paper shape: heuristics degrade much faster than under uniform/normal;
// at beta = 15 Algorithm 2 is ~3.9x better than UU/RU and ~5.7x better
// than UR/RR, while Alg2/SO stays ~0.99.

#include "fig_common.hpp"

int main() {
  const aa::bench::MetricsScope metrics;
  aa::support::DistributionParams dist;
  dist.kind = aa::support::DistributionKind::kPowerLaw;
  dist.alpha = 2.0;
  const auto table =
      aa::sim::sweep_beta(dist, {}, aa::bench::paper_options());
  aa::bench::print_figure(
      "Figure 2(a): power law (alpha = 2), beta sweep",
      "expect: Alg2/SO ~0.99; ratios grow fast with beta, reaching ~3.9x\n"
      "(UU, RU) and ~5.7x (UR, RR) at beta = 15.",
      table);
  return 0;
}
