// Extension bench (paper Section VIII future work): heterogeneous server
// capacities. Compares the generalized Algorithm 2 against the exact
// optimum (small instances) and against the UU-style baseline (large
// instances), across increasingly skewed capacity mixes.
//
// Expected: near-exact quality (>= 0.95 of optimal empirically — no formal
// guarantee, see DESIGN.md) and a growing edge over UU as skew increases.

#include <cstdlib>
#include <iostream>
#include <numeric>

#include "aa/heterogeneous.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "utility/generator.hpp"

namespace {

using namespace aa;

std::vector<core::Resource> capacities_with_skew(std::size_t m,
                                                 core::Resource base,
                                                 double skew) {
  // Server j gets base * skew^j, normalized-ish by construction.
  std::vector<core::Resource> caps(m);
  double c = static_cast<double>(base);
  for (std::size_t j = 0; j < m; ++j) {
    caps[j] = std::max<core::Resource>(1, static_cast<core::Resource>(c));
    c *= skew;
  }
  return caps;
}

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  const std::size_t trials = trials_from_env(100);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  dist.alpha = 2.0;

  // Part 1: quality vs exact optimum on small instances.
  support::Table exact_table({"skew", "alg2h/OPT(mean)", "alg2h/OPT(min)"});
  for (const double skew : {1.0, 0.7, 0.5, 0.3}) {
    double sum_ratio = 0.0;
    double min_ratio = 1.0;
    for (std::size_t t = 0; t < trials; ++t) {
      core::HeteroInstance instance;
      instance.capacities = capacities_with_skew(3, 24, skew);
      auto rng = support::Rng::child(99, t);
      instance.threads = util::generate_utilities(
          7, instance.max_capacity(), dist, rng);
      const double approx = core::solve_algorithm2_hetero(instance).utility;
      const double exact = core::solve_exact_hetero(instance);
      const double ratio = exact > 0.0 ? approx / exact : 1.0;
      sum_ratio += ratio;
      min_ratio = std::min(min_ratio, ratio);
    }
    exact_table.add_row_numeric(
        {skew, sum_ratio / static_cast<double>(trials), min_ratio});
  }

  // Part 2: edge over round-robin UU on larger instances.
  support::Table uu_table({"skew", "alg2h/UU"});
  for (const double skew : {1.0, 0.7, 0.5, 0.3}) {
    double sum_alg = 0.0;
    double sum_uu = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      core::HeteroInstance instance;
      instance.capacities = capacities_with_skew(8, 1000, skew);
      auto rng = support::Rng::child(77, t);
      instance.threads = util::generate_utilities(
          40, instance.max_capacity(), dist, rng);
      sum_alg += core::solve_algorithm2_hetero(instance).utility;
      sum_uu += core::total_utility(instance,
                                    core::heuristic_uu_hetero(instance));
    }
    uu_table.add_row_numeric({skew, sum_alg / sum_uu});
  }

  std::cout << "== Extension: heterogeneous capacities (power law alpha=2, "
            << trials << " trials) ==\n"
            << "expect: alg2h/OPT >= ~0.95 even at high skew; alg2h/UU > 1\n"
            << "and growing as skew increases (skew = per-server capacity\n"
            << "decay factor; 1.0 = homogeneous).\n\n"
            << exact_table.to_text() << "\n"
            << uu_table.to_text() << std::flush;
  return 0;
}
