// Microbenchmarks of the observability layer's instrumentation cost on
// both sides of the enable switch. Expected shape: the no-session paths
// (one relaxed atomic load + branch — the contract tests/obs_test.cpp
// pins) in the low single-digit nanoseconds; with a session installed,
// counters and histogram samples cost a mutex acquire plus a map lookup,
// ScopedPhase adds two clock reads and two ring pushes, and the trace-ring
// push stays flat as threads multiply (per-thread rings, no shared tail).

#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/histogram.hpp"
#include "obs/session.hpp"

namespace {

void BM_CountNoSession(benchmark::State& state) {
  for (auto _ : state) {
    aa::obs::count("bench/counter", 1);
  }
}
BENCHMARK(BM_CountNoSession);

void BM_CountWithSession(benchmark::State& state) {
  aa::obs::Session session;
  for (auto _ : state) {
    aa::obs::count("bench/counter", 1);
  }
  benchmark::DoNotOptimize(session.metrics());
}
BENCHMARK(BM_CountWithSession);

void BM_ScopedPhaseNoSession(benchmark::State& state) {
  for (auto _ : state) {
    const aa::obs::ScopedPhase phase("bench/phase");
  }
}
BENCHMARK(BM_ScopedPhaseNoSession);

void BM_ScopedPhaseWithSession(benchmark::State& state) {
  aa::obs::Session session;
  for (auto _ : state) {
    const aa::obs::ScopedPhase phase("bench/phase");
  }
  benchmark::DoNotOptimize(session.metrics());
}
BENCHMARK(BM_ScopedPhaseWithSession);

void BM_SampleNoSession(benchmark::State& state) {
  for (auto _ : state) {
    aa::obs::sample("bench/latency", 0.125);
  }
}
BENCHMARK(BM_SampleNoSession);

void BM_SampleWithSession(benchmark::State& state) {
  aa::obs::Session session;
  double value = 0.0;
  for (auto _ : state) {
    value += 0.001;  // Walk the buckets instead of hammering one.
    aa::obs::sample("bench/latency", value);
  }
  benchmark::DoNotOptimize(session.metrics());
}
BENCHMARK(BM_SampleWithSession);

void BM_InstantWithSession(benchmark::State& state) {
  aa::obs::Session session;
  for (auto _ : state) {
    aa::obs::instant("bench/event");
  }
}
BENCHMARK(BM_InstantWithSession);

// The raw histogram update, no session indirection: the floor for any
// sampled metric.
void BM_HistogramSample(benchmark::State& state) {
  aa::obs::Histogram histogram;
  double value = 0.0;
  for (auto _ : state) {
    value += 0.001;
    benchmark::DoNotOptimize(histogram.sample(value));
  }
}
BENCHMARK(BM_HistogramSample);

// Trace-ring throughput as recording threads multiply. Per-thread rings
// mean no cross-thread cacheline ping-pong: time per push should stay
// flat from 1 to N threads (the old single-mutex trace degraded here).
void BM_TraceRingPushThreaded(benchmark::State& state) {
  // Magic static: installed once on first call, torn down at process
  // exit — safe for every thread-count variant, and this is the last
  // benchmark in the file so nothing after it observes the session.
  static aa::obs::Session session;
  for (auto _ : state) {
    const aa::obs::ScopedPhase phase("bench/threaded");
  }
}
BENCHMARK(BM_TraceRingPushThreaded)->ThreadRange(1, 8);

}  // namespace

BENCHMARK_MAIN();
