// Domain bench: phased co-run on the multi-socket machine — the cache
// domain (Section I) driven through program phase changes with the online
// policies (Section VIII). Throughput measured on RAW per-phase miss
// curves.
//
// Expected: the headline is that cheap WITHIN-socket re-partitioning does
// nearly all the work — sticky tracks the oracle at (almost) zero
// migrations, while static pays a roughly constant ~15% tax (its epoch-0
// way split is wrong whenever a thread is in its other phase; the
// alternating schedule makes that fraction cadence-independent). Resolve
// migrates increasingly often as phases shorten for no extra throughput.

#include <cstdlib>
#include <iostream>

#include "cachesim/phased.hpp"
#include "support/table.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  using namespace aa::cachesim;
  const std::size_t trials = trials_from_env(10);
  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 16, .lines_per_way = 64}};
  const std::size_t lines = machine.geometry.lines_per_way;

  support::Table table({"phase len", "static/oracle", "sticky/oracle",
                        "sticky migr/epoch", "resolve migr/epoch"});
  for (const std::size_t phase_length : {16u, 8u, 4u, 2u}) {
    double static_sum = 0.0;
    double sticky_sum = 0.0;
    double sticky_migr = 0.0;
    double resolve_migr = 0.0;
    const std::size_t epochs = 32;
    for (std::size_t t = 0; t < trials; ++t) {
      auto rng = support::Rng::child(909, t);
      std::vector<PhasedThread> threads;
      for (std::size_t i = 0; i < 8; ++i) {
        PhasedThread thread;
        thread.phase_length = phase_length;
        thread.initial_phase = i % 2;
        thread.phases.push_back(profile_trace(
            generate_trace(TraceConfig::cache_friendly(
                               (2 + rng.uniform_below(6)) * lines, 30000),
                           rng),
            machine.geometry, PerfModel{}));
        thread.phases.push_back(profile_trace(
            generate_trace(
                TraceConfig::mixed(lines, 6 * lines, 80 * lines, 30000),
                rng),
            machine.geometry, PerfModel{}));
        threads.push_back(std::move(thread));
      }
      const PhasedResult st = simulate_phased(
          machine, threads, core::OnlinePolicy::kStatic, epochs);
      const PhasedResult sk = simulate_phased(
          machine, threads, core::OnlinePolicy::kSticky, epochs);
      const PhasedResult rs = simulate_phased(
          machine, threads, core::OnlinePolicy::kResolve, epochs);
      static_sum += st.fraction();
      sticky_sum += sk.fraction();
      sticky_migr += static_cast<double>(sk.migrations) /
                     static_cast<double>(epochs);
      resolve_migr += static_cast<double>(rs.migrations) /
                      static_cast<double>(epochs);
    }
    const auto scale = static_cast<double>(trials);
    table.add_row_numeric({static_cast<double>(phase_length),
                           static_sum / scale, sticky_sum / scale,
                           sticky_migr / scale, resolve_migr / scale});
  }

  std::cout << "== Domain: phased co-run (2 sockets x 16 ways, 8 threads, "
               "32 epochs, "
            << trials << " trials) ==\n"
            << "expect: sticky ~ 1.0 at ~0 migrations (free re-partitioning\n"
            << "absorbs phase changes); static pays a flat ~15% tax;\n"
            << "resolve migrates more as phases shorten, gaining nothing.\n\n"
            << table.to_text() << std::flush;
  return 0;
}
