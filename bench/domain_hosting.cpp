// Domain bench (paper Section I): web hosting center end-to-end.
//
// Service threads with random concave service-rate curves (the paper's
// power-law generator) are placed by AA — solved on SATURATED utilities
// min(f_i(x), lambda_i), the correct goodput model — and by the UU/RR
// heuristics. A discrete-event simulation with Poisson arrivals then
// measures goodput and mean latency on the raw curves.
//
// Expected: AA ties UU at low load (everyone is overprovisioned) and
// dominates both heuristics under overload; the saturated model's
// predicted utility tracks simulated goodput to within queueing noise.
// Note the latency trade-off: AA provisions services at exactly their
// arrival rate (rho ~ 1), so at LOW load UU's overprovisioning gives
// better latency — goodput, not latency, is the objective AA optimizes.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "hostsim/simulator.hpp"
#include "support/table.hpp"
#include "utility/generator.hpp"

namespace {

std::size_t trials_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("AA_BENCH_TRIALS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace aa;
  const std::size_t trials = trials_from_env(20);

  support::Table table({"load", "AA goodput", "UU goodput", "RR goodput",
                        "AA latency", "UU latency", "predicted/AA"});

  for (const double load : {0.5, 1.0, 2.0}) {
    double aa_good = 0.0;
    double uu_good = 0.0;
    double rr_good = 0.0;
    support::RunningStats aa_lat;
    support::RunningStats uu_lat;
    double predicted = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      support::DistributionParams dist;
      dist.kind = support::DistributionKind::kPowerLaw;
      dist.alpha = 2.0;
      auto rng = support::Rng::child(2718, t);

      core::Instance raw;
      raw.num_servers = 4;
      raw.capacity = 200;
      raw.threads = util::generate_utilities(24, 200, dist, rng);

      // Arrival rates sized so that `load` = lambda_i / f_i(fair share).
      hostsim::ServiceConfig config;
      config.horizon = 1000.0;
      config.warmup = 100.0;
      config.seed = 1000 + t;
      const double fair_share = 200.0 / 6.0;  // 24 threads on 4 servers.
      for (const auto& thread : raw.threads) {
        config.arrival_rates.push_back(load * thread->value(fair_share));
      }

      core::Instance saturated = raw;
      for (std::size_t i = 0; i < raw.threads.size(); ++i) {
        saturated.threads[i] = std::make_shared<util::SaturatedUtility>(
            raw.threads[i], config.arrival_rates[i]);
      }

      const core::SolveResult solved =
          core::solve_algorithm2_refined(saturated);
      predicted += solved.utility;
      const auto aa_run =
          hostsim::simulate_hosting(raw, solved.assignment, config);
      const auto uu_run =
          hostsim::simulate_hosting(raw, core::heuristic_uu(raw), config);
      const auto rr_run = hostsim::simulate_hosting(
          raw, core::heuristic_rr(raw, rng), config);
      aa_good += aa_run.goodput();
      uu_good += uu_run.goodput();
      rr_good += rr_run.goodput();
      if (aa_run.sojourn_all.count() > 0) aa_lat.add(aa_run.sojourn_all.mean());
      if (uu_run.sojourn_all.count() > 0) uu_lat.add(uu_run.sojourn_all.mean());
    }
    const auto scale = static_cast<double>(trials);
    table.add_row_numeric({load, aa_good / scale, uu_good / scale,
                           rr_good / scale, aa_lat.mean(), uu_lat.mean(),
                           predicted / aa_good});
  }

  std::cout << "== Domain: hosting center DES (power law alpha=2, 4 servers "
               "x 200 units, 24 services, "
            << trials << " trials) ==\n"
            << "expect: AA ~ UU goodput at load 0.5, AA dominant at load >= 1;\n"
            << "predicted/AA ~ 1. (AA runs queues at rho~1, so its latency\n"
            << "exceeds UU's at low load — goodput is the objective.)\n\n"
            << table.to_text() << std::flush;
  return 0;
}
