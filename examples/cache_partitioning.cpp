// Domain example (paper Section I): scheduling threads on a multi-socket
// machine with way-partitioned shared LLCs.
//
//   $ ./cache_partitioning
//
// Pipeline: synthetic traces -> Mattson stack distances -> per-thread miss
// curves -> concave throughput utilities -> AA instance (sockets = servers,
// ways = resource) -> Algorithm 2 -> measured aggregate IPC on the RAW
// curves, compared against naive placements.

#include <iostream>

#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "cachesim/machine.hpp"
#include "support/table.hpp"

int main() {
  using namespace aa;
  using namespace aa::cachesim;

  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 16, .lines_per_way = 64}};
  const std::size_t lines = machine.geometry.lines_per_way;
  support::Rng rng(2016);

  // Six threads with distinct locality personalities.
  struct Spec {
    const char* name;
    TraceConfig config;
  };
  const std::vector<Spec> specs = {
      {"hot-loop", TraceConfig::cache_friendly(2 * lines, 50000)},
      {"medium-ws", TraceConfig::cache_friendly(6 * lines, 50000)},
      {"big-ws", TraceConfig::cache_friendly(14 * lines, 50000)},
      {"mixed", TraceConfig::mixed(lines, 5 * lines, 50 * lines, 50000)},
      {"stream", TraceConfig::streaming(300 * lines, 50000)},
      {"mixed-2", TraceConfig::mixed(2 * lines, 8 * lines, 80 * lines, 50000)},
  };

  std::vector<ThreadProfile> profiles;
  std::cout << "profiling threads (Mattson stack distances):\n";
  support::Table profile_table(
      {"thread", "footprint(lines)", "missratio@4w", "missratio@16w",
       "IPC@1w", "IPC@16w"});
  for (const Spec& spec : specs) {
    const Trace trace = generate_trace(spec.config, rng);
    ThreadProfile profile =
        profile_trace(trace, machine.geometry, PerfModel{});
    profile_table.add_row(
        {spec.name,
         std::to_string(
             compute_stack_distances(trace).footprint()),
         support::format_double(profile.curve.miss_ratio(4), 3),
         support::format_double(profile.curve.miss_ratio(16), 3),
         support::format_double(profile.curve.throughput(1, profile.model),
                                3),
         support::format_double(profile.curve.throughput(16, profile.model),
                                3)});
    profiles.push_back(std::move(profile));
  }
  std::cout << profile_table.to_text() << "\n";

  // Schedule with AA.
  const core::Instance instance = build_instance(machine, profiles);
  const core::SolveResult solved = core::solve_algorithm2_refined(instance);

  support::Table placement({"thread", "socket", "ways"});
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    placement.add_row({specs[i].name,
                       std::to_string(solved.assignment.server[i]),
                       support::format_double(solved.assignment.alloc[i], 0)});
  }
  std::cout << "AA placement and way-partitions:\n"
            << placement.to_text() << "\n";

  const double aa_ipc = measure_throughput(profiles, solved.assignment);
  const double uu_ipc =
      measure_throughput(profiles, core::heuristic_uu(instance));
  support::Rng heur_rng(7);
  const double rr_ipc =
      measure_throughput(profiles, core::heuristic_rr(instance, heur_rng));

  std::cout << "measured aggregate IPC (raw miss curves):\n"
            << "  AA (Algorithm 2 + refine): " << aa_ipc << "\n"
            << "  UU (round robin / equal):  " << uu_ipc << "\n"
            << "  RR (random / random):      " << rr_ipc << "\n"
            << "  AA vs UU: " << aa_ipc / uu_ipc << "x,  AA vs RR: "
            << aa_ipc / rr_ipc << "x\n";
  return 0;
}
