// Domain example (paper Section I): a web hosting center running service
// threads whose load — and hence utility curves — drift over the day.
//
//   $ ./web_hosting
//
// Uses the paper's random generator (power-law mix: a few hot services,
// many cold ones) for the initial curves and the online extension to track
// drift, comparing the static / sticky / re-solve policies on identical
// load sequences.

#include <iostream>

#include "aa/online.hpp"
#include "support/table.hpp"
#include "utility/generator.hpp"

int main() {
  using namespace aa;

  // 3 frontend servers, 300 capacity units each, 18 service threads whose
  // throughput curves come from the paper's power-law generator (heavy
  // tail: a couple of services dominate traffic).
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  dist.alpha = 2.0;
  support::Rng gen_rng(20260706);

  core::Instance site;
  site.num_servers = 3;
  site.capacity = 300;
  site.threads = util::generate_utilities(18, site.capacity, dist, gen_rng);

  core::OnlineConfig config;
  config.epochs = 48;        // Two days of hourly re-evaluation.
  config.drift_sigma = 0.25; // Moderate hourly load drift.
  config.hysteresis = 0.05;  // Migrate only for a >= 5% win.

  support::Table table(
      {"policy", "utility/oracle", "migrations", "migrations/epoch"});
  const struct {
    const char* name;
    core::OnlinePolicy policy;
  } policies[] = {
      {"static (assign once)", core::OnlinePolicy::kStatic},
      {"sticky (5% hysteresis)", core::OnlinePolicy::kSticky},
      {"re-solve every epoch", core::OnlinePolicy::kResolve},
  };
  for (const auto& p : policies) {
    // Same seed -> identical drift sequence for a fair comparison.
    support::Rng drift_rng(4711);
    const core::OnlineResult result =
        core::run_online(site, p.policy, config, drift_rng);
    table.add_row(
        {p.name, support::format_double(result.utility_fraction(), 4),
         std::to_string(result.migrations),
         support::format_double(static_cast<double>(result.migrations) /
                                    static_cast<double>(config.epochs),
                                2)});
  }

  std::cout << "== web hosting: 3 servers x 300 units, 18 services, 48 "
               "hourly epochs ==\n"
            << "(power-law service mix; drift sigma = 0.25; oracle = "
               "re-solving Algorithm 2)\n\n"
            << table.to_text()
            << "\nsticky keeps ~99% of the oracle's utility while migrating "
               "an order of\nmagnitude less than re-solve — the operational "
               "sweet spot the paper's\nSection VIII sketches.\n";
  return 0;
}
