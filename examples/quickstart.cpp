// Quickstart: build an AA instance by hand, solve it with Algorithm 2 (plus
// per-server refinement), and inspect the assignment.
//
//   $ ./quickstart
//
// Walks through the library's core types: utility functions, Instance,
// solve_algorithm2_refined, and the validity/quality certificates.

#include <iostream>
#include <memory>

#include "aa/refine.hpp"
#include "aa/solve_result.hpp"
#include "support/table.hpp"

int main() {
  using namespace aa;

  // Two servers with 100 resource units each (say, two sockets with 100
  // units of shared cache), and five threads with different concave
  // utility shapes.
  core::Instance instance;
  instance.num_servers = 2;
  instance.capacity = 100;
  instance.threads = {
      // A thread that saturates quickly: min(2x, 80).
      std::make_shared<util::CappedLinearUtility>(2.0, 40.0, 100),
      // Diminishing returns: 10 * sqrt(x).
      std::make_shared<util::PowerUtility>(10.0, 0.5, 100),
      // Logarithmic (cache-like): 30 * log(1 + 0.1 x).
      std::make_shared<util::LogUtility>(30.0, 0.1, 100),
      // A slow linear burner: min(0.5x, 50).
      std::make_shared<util::CappedLinearUtility>(0.5, 100.0, 100),
      // Another sqrt thread with a smaller scale.
      std::make_shared<util::PowerUtility>(4.0, 0.5, 100),
  };
  instance.validate();

  // Solve: super-optimal allocation -> linearize -> greedy assignment ->
  // per-server exact re-allocation.
  const core::SolveResult result = core::solve_algorithm2_refined(instance);

  // The result carries its own quality certificates.
  std::cout << "total utility:        " << result.utility << "\n";
  std::cout << "super-optimal bound:  " << result.super_optimal_utility
            << "\n";
  std::cout << "certified fraction:   "
            << result.utility / result.super_optimal_utility
            << "  (guarantee: >= " << core::kApproximationRatio
            << " of optimal)\n\n";

  support::Table table({"thread", "server", "allocated", "c_hat", "utility"});
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    table.add_row_numeric(
        {static_cast<double>(i),
         static_cast<double>(result.assignment.server[i]),
         result.assignment.alloc[i], static_cast<double>(result.c_hat[i]),
         instance.threads[i]->value(result.assignment.alloc[i])},
        2);
  }
  std::cout << table.to_text();

  // The assignment is structurally valid: every server within capacity.
  const std::string error =
      core::check_assignment(instance, result.assignment);
  std::cout << "\nvalidity check: " << (error.empty() ? "ok" : error) << "\n";
  return 0;
}
