// Example: the full "measure, fit, plan" workflow from the paper's future
// work (Section VIII: integrating online performance measurements).
//
//   $ ./measured_scheduling
//
// A hidden "ground truth" instance stands in for real hardware. We probe
// each thread at a handful of allocation levels with noisy measurements,
// fit concave utility curves, plan with Algorithm 2 on the fitted curves,
// and finally evaluate the plan against the truth — comparing with both
// the perfect-knowledge plan and a measurement-free round-robin baseline.

#include <iostream>

#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "support/table.hpp"
#include "utility/fitting.hpp"
#include "utility/generator.hpp"

int main() {
  using namespace aa;

  // Ground truth: 16 threads with random concave curves (hidden from the
  // scheduler in a real deployment).
  support::Rng rng(20260706);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  dist.alpha = 2.0;
  core::Instance truth;
  truth.num_servers = 4;
  truth.capacity = 128;
  truth.threads = util::generate_utilities(16, truth.capacity, dist, rng);

  // Measurement campaign: 6 allocation levels, 3 runs each, 8% noise.
  const auto levels = util::even_levels(truth.capacity, 6);
  core::Instance fitted = truth;
  std::cout << "probing 16 threads at " << levels.size()
            << " levels x 3 repeats (8% noise)...\n";
  for (std::size_t i = 0; i < truth.threads.size(); ++i) {
    const auto samples =
        util::measure_utility(*truth.threads[i], levels, 3, 0.08, rng);
    fitted.threads[i] = util::fit_concave_utility(samples, truth.capacity);
  }

  // Plan on what we measured; evaluate on reality.
  const core::SolveResult fitted_plan =
      core::solve_algorithm2_refined(fitted);
  const double realized =
      core::total_utility(truth, fitted_plan.assignment);
  const core::SolveResult perfect_plan =
      core::solve_algorithm2_refined(truth);
  support::Rng heur_rng(1);
  const double blind = core::total_utility(
      truth, core::heuristic_ru(truth, heur_rng));

  support::Table table({"plan", "true utility", "vs perfect"});
  table.add_row({"perfect knowledge",
                 support::format_double(perfect_plan.utility, 2), "1.000"});
  table.add_row({"measured curves (ours)",
                 support::format_double(realized, 2),
                 support::format_double(realized / perfect_plan.utility, 3)});
  table.add_row({"no measurements (RU)",
                 support::format_double(blind, 2),
                 support::format_double(blind / perfect_plan.utility, 3)});
  std::cout << "\n" << table.to_text()
            << "\na coarse, noisy measurement campaign already captures "
               "nearly the whole\nbenefit of utility-aware scheduling.\n";
  return 0;
}
