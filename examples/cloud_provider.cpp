// Domain example (paper Section I): a cloud provider sizing and placing
// virtual machine instances on physical hosts to maximize revenue.
//
//   $ ./cloud_provider
//
// Customers express willingness-to-pay for resources as concave utility
// functions (here log- and power-shaped revenue curves); the provider runs
// AA to decide which host each VM lands on and how much resource it gets.
// Compares revenue against first-fit-style heuristics and shows the
// heterogeneous-capacity extension for a mixed host fleet.

#include <iostream>
#include <memory>

#include "aa/heterogeneous.hpp"
#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace aa;

  constexpr util::Resource kHostUnits = 256;  // e.g. GB of RAM per host.
  constexpr std::size_t kHosts = 4;

  // A tenant mix: a few premium customers with steep willingness-to-pay
  // and many economy customers with shallow curves.
  support::Rng rng(11);
  core::Instance instance;
  instance.num_servers = kHosts;
  instance.capacity = kHostUnits;
  std::vector<std::string> names;
  for (int premium = 0; premium < 4; ++premium) {
    // Premium: pays ~log-shaped, scale 80-120 dollars.
    instance.threads.push_back(std::make_shared<util::LogUtility>(
        80.0 + rng.uniform(0.0, 40.0), 0.08, kHostUnits));
    names.push_back("premium-" + std::to_string(premium));
  }
  for (int standard = 0; standard < 8; ++standard) {
    // Standard: sqrt-shaped, scale 8-16.
    instance.threads.push_back(std::make_shared<util::PowerUtility>(
        8.0 + rng.uniform(0.0, 8.0), 0.5, kHostUnits));
    names.push_back("standard-" + std::to_string(standard));
  }
  for (int economy = 0; economy < 12; ++economy) {
    // Economy: flat-rate up to a small reservation, min(0.4x, 12.8).
    instance.threads.push_back(std::make_shared<util::CappedLinearUtility>(
        0.4, 16.0 + rng.uniform(0.0, 32.0), kHostUnits));
    names.push_back("economy-" + std::to_string(economy));
  }

  const core::SolveResult solved = core::solve_algorithm2_refined(instance);
  support::Rng heur_rng(3);
  const double uu = core::total_utility(instance, core::heuristic_uu(instance));
  const double rr =
      core::total_utility(instance, core::heuristic_rr(instance, heur_rng));

  std::cout << "== homogeneous fleet: " << kHosts << " hosts x "
            << kHostUnits << " units ==\n";
  std::cout << "revenue (AA):          $" << solved.utility << " per hour\n";
  std::cout << "revenue (round robin): $" << uu << " per hour\n";
  std::cout << "revenue (random):      $" << rr << " per hour\n";
  std::cout << "upper bound (SO):      $" << solved.super_optimal_utility
            << " per hour\n\n";

  support::Table table({"vm", "host", "units", "revenue/h"});
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    table.add_row(
        {names[i], std::to_string(solved.assignment.server[i]),
         support::format_double(solved.assignment.alloc[i], 0),
         support::format_double(
             instance.threads[i]->value(solved.assignment.alloc[i]), 2)});
  }
  std::cout << table.to_text() << "\n";

  // Heterogeneous fleet (Section VIII extension): two big hosts, two small.
  // Utility domains must cover the largest host (512 units), so the tenant
  // curves are rebuilt with wider domains.
  core::HeteroInstance fleet;
  fleet.capacities = {512, 512, 128, 128};
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    if (i < 4) {
      fleet.threads.push_back(
          std::make_shared<util::LogUtility>(100.0, 0.08, 512));
    } else if (i < 12) {
      fleet.threads.push_back(
          std::make_shared<util::PowerUtility>(12.0, 0.5, 512));
    } else {
      fleet.threads.push_back(
          std::make_shared<util::CappedLinearUtility>(0.4, 32.0, 512));
    }
  }
  const core::SolveResult hetero = core::solve_algorithm2_hetero(fleet);
  const double hetero_uu =
      core::total_utility(fleet, core::heuristic_uu_hetero(fleet));
  std::cout << "== heterogeneous fleet: hosts {512, 512, 128, 128} ==\n";
  std::cout << "revenue (AA hetero):   $" << hetero.utility << " per hour\n";
  std::cout << "revenue (round robin): $" << hetero_uu << " per hour\n";
  std::cout << "upper bound (pooled):  $" << hetero.super_optimal_utility
            << " per hour\n";
  return 0;
}
