// aa_bench: the unified benchmark driver and regression gate
// (docs/BENCHMARKS.md).
//
//   aa_bench [--suite quick|full] [--filter SUBSTR] [--out FILE]
//            [--list 1] [--seed S] [--min-reps N] [--max-reps N]
//            [--target-rel-stderr X] [--max-case-seconds X]
//   aa_bench --compare BASELINE.json [CURRENT.json] [--threshold X]
//            [--warn-only 1] [--require-all 1] [other run flags]
//
// Run mode executes the selected suite — solver latency across an
// n x m x C grid (alg1 incremental vs. the literal-pseudocode
// alg1_reference, alg2, alg2h), the super-optimal allocator, the
// warm-start cached/warm/full re-solve paths, and end-to-end svc request
// latency through an in-process Service — each case repeated until its
// mean converges (benchkit::run_case), and writes a schema-versioned
// BENCH_<host>_<date>.json. Compare mode loads a committed baseline and
// either a second report file or a fresh run of the same suite, and exits
// nonzero when any case's median regressed by more than the threshold
// (benchkit::compare_reports) unless --warn-only 1.
//
// Exit codes: 0 success, 1 regression (or check mismatch), 2 usage/input
// error.

#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/heterogeneous.hpp"
#include "aa/problem.hpp"
#include "alloc/super_optimal.hpp"
#include "benchkit/compare.hpp"
#include "benchkit/report.hpp"
#include "benchkit/runner.hpp"
#include "io/instance_io.hpp"
#include "sim/workload.hpp"
#include "support/args.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"
#include "svc/instance_state.hpp"
#include "svc/service.hpp"
#include "svc/warm_start.hpp"
#include "utility/generator.hpp"
#include "utility/linearized.hpp"

namespace {

using aa::benchkit::CaseResult;
using aa::benchkit::Report;
using aa::support::JsonValue;

/// One suite entry. `make` runs the (untimed) setup and returns the body
/// that run_case() measures; captured state keeps the workload alive and
/// identical across repetitions.
struct BenchCase {
  std::string name;
  std::string group;
  bool quick = false;  ///< Member of the CI `quick` suite.
  std::function<std::function<double()>()> make;
};

aa::core::Instance make_instance(std::size_t n, std::uint64_t seed) {
  aa::sim::WorkloadConfig config;
  config.num_servers = 8;
  config.capacity = 1000;
  config.beta = static_cast<double>(n) / 8.0;
  // Stream keyed by n: alg1 / alg1_reference / alg2 at the same n solve
  // the identical instance, so their check utilities are comparable.
  aa::support::Rng rng = aa::support::Rng::child(seed, n);
  return aa::sim::generate_instance(config, rng);
}

std::vector<BenchCase> build_suite(std::uint64_t seed) {
  std::vector<BenchCase> cases;

  const std::size_t grid[] = {64, 256, 512, 1024};
  for (const std::size_t n : grid) {
    const bool quick = n <= 256;
    const std::string shape = "n" + std::to_string(n) + "_m8_c1000";
    cases.push_back(
        {"alg1/solve/" + shape, "alg1", quick, [n, seed] {
           auto instance =
               std::make_shared<aa::core::Instance>(make_instance(n, seed));
           return [instance] {
             return aa::core::solve_algorithm1(*instance).utility;
           };
         }});
    cases.push_back(
        {"alg1_reference/solve/" + shape, "alg1_reference", quick, [n, seed] {
           auto instance =
               std::make_shared<aa::core::Instance>(make_instance(n, seed));
           // The pre-optimization pipeline: identical super-optimal +
           // linearization stages, literal O(m n^2) assignment rounds.
           return [instance] {
             aa::alloc::SuperOptimalResult so = aa::alloc::super_optimal(
                 instance->threads, instance->num_servers, instance->capacity);
             const std::vector<aa::util::Linearized> linearized =
                 aa::util::linearize(instance->threads, so.c_hat);
             const aa::core::Assignment assignment =
                 aa::core::assign_algorithm1_reference(*instance, linearized);
             return aa::core::total_utility(*instance, assignment);
           };
         }});
    cases.push_back(
        {"alg2/solve/" + shape, "alg2", quick, [n, seed] {
           auto instance =
               std::make_shared<aa::core::Instance>(make_instance(n, seed));
           return [instance] {
             return aa::core::solve_algorithm2(*instance).utility;
           };
         }});
  }

  cases.push_back(
      {"alg2h/solve/n512_m8_het", "alg2h", false, [seed] {
         auto hetero = std::make_shared<aa::core::HeteroInstance>();
         for (std::size_t j = 0; j < 8; ++j) {
           hetero->capacities.push_back(800 +
                                        50 * static_cast<aa::util::Resource>(j));
         }
         aa::support::DistributionParams dist;
         aa::support::Rng rng = aa::support::Rng::child(seed, 9001);
         hetero->threads = aa::util::generate_utilities(
             512, hetero->max_capacity(), dist, rng);
         return [hetero] {
           return aa::core::solve_algorithm2_hetero(*hetero).utility;
         };
       }});

  cases.push_back(
      {"super_optimal/n1024_m8_c1000", "super_optimal", false, [seed] {
         auto instance =
             std::make_shared<aa::core::Instance>(make_instance(1024, seed));
         return [instance] {
           return aa::alloc::super_optimal(instance->threads,
                                           instance->num_servers,
                                           instance->capacity)
               .utility;
         };
       }});

  // Strategy-seam grid (docs/ALGORITHMS.md "Strategy seam"): the serial
  // reference vs. the bit-identical SoA/parallel rewrite vs. price
  // discovery, on the same instance per (n, C) so medians are directly
  // comparable. n = 10^4 rides in the quick suite as the CI regression
  // gate; 10^5 and 10^6 (smaller grids, or setup would dominate) belong to
  // the full suite and back the committed-baseline speedup claims.
  struct SoShape {
    std::size_t n;
    aa::util::Resource capacity;
    bool quick;
  };
  const SoShape so_shapes[] = {
      {10'000, 1000, true}, {100'000, 1000, false}, {1'000'000, 128, false}};
  for (const SoShape& shape : so_shapes) {
    const std::string suffix = "/n" + std::to_string(shape.n) + "_m8_c" +
                               std::to_string(shape.capacity);
    const auto make_threads = [shape, seed] {
      aa::support::DistributionParams dist;
      aa::support::Rng rng = aa::support::Rng::child(seed, shape.n);
      return std::make_shared<const std::vector<aa::util::UtilityPtr>>(
          aa::util::generate_utilities(shape.n, shape.capacity, dist, rng));
    };
    cases.push_back({"super_optimal_serial" + suffix, "super_optimal_serial",
                     shape.quick, [make_threads, shape] {
                       auto threads = make_threads();
                       return [threads, shape] {
                         return aa::alloc::super_optimal(*threads, 8,
                                                         shape.capacity)
                             .utility;
                       };
                     }});
    cases.push_back({"super_optimal_parallel" + suffix,
                     "super_optimal_parallel", shape.quick,
                     [make_threads, shape] {
                       auto threads = make_threads();
                       return [threads, shape] {
                         return aa::alloc::super_optimal_parallel(
                                    *threads, 8, shape.capacity)
                             .utility;
                       };
                     }});
    cases.push_back({"super_optimal_price" + suffix, "super_optimal_price",
                     shape.quick, [make_threads, shape] {
                       auto threads = make_threads();
                       return [threads, shape] {
                         return aa::alloc::super_optimal_price(
                                    *threads, 8, shape.capacity)
                             .utility;
                       };
                     }});
  }

  // Warm-start paths (svc/warm_start.hpp): one shared state per case; the
  // paths differ only in what happened since the previous solve.
  const auto make_warm_state = [seed] {
    auto state = std::make_shared<aa::svc::InstanceState>(8, 1000);
    aa::support::DistributionParams dist;
    aa::support::Rng rng = aa::support::Rng::child(seed, 9002);
    for (std::size_t i = 0; i < 256; ++i) {
      state->add_thread(aa::util::generate_utility(1000, dist, rng));
    }
    return state;
  };
  cases.push_back(
      {"warm_start/cached/n256_m8_c1000", "warm_start", true,
       [make_warm_state] {
         auto state = make_warm_state();
         auto solver = std::make_shared<aa::svc::WarmStartSolver>();
         static_cast<void>(solver->solve(*state));  // Prime the cache.
         return [state, solver] {
           return solver->solve(*state).result.utility;
         };
       }});
  cases.push_back(
      {"warm_start/warm/n256_m8_c1000", "warm_start", false,
       [make_warm_state] {
         auto state = make_warm_state();
         auto solver = std::make_shared<aa::svc::WarmStartSolver>();
         static_cast<void>(solver->solve(*state));
         return [state, solver] {
           // Factor-1 scale: bumps the version (one delta -> warm path)
           // without changing the workload between repetitions.
           state->scale_utility(1, 1.0);
           return solver->solve(*state).result.utility;
         };
       }});
  cases.push_back(
      {"warm_start/full/n256_m8_c1000", "warm_start", false,
       [make_warm_state] {
         auto state = make_warm_state();
         auto solver = std::make_shared<aa::svc::WarmStartSolver>();
         return [state, solver] {
           solver->reset();
           return solver->solve(*state).result.utility;
         };
       }});

  // End-to-end service latency: full request -> parse -> queue -> batch ->
  // solve -> render round trip through Service::request.
  const auto make_service = [seed] {
    aa::svc::ServiceConfig config;
    config.num_servers = 8;
    config.capacity = 1000;
    config.workers = 1;
    auto service = std::make_shared<aa::svc::Service>(config);
    service->start();
    aa::support::DistributionParams dist;
    aa::support::Rng rng = aa::support::Rng::child(seed, 9003);
    for (std::size_t i = 0; i < 64; ++i) {
      const aa::util::UtilityPtr utility =
          aa::util::generate_utility(1000, dist, rng);
      JsonValue request{JsonValue::Object{}};
      request.set("op", "add_thread");
      request.set("thread", aa::io::utility_to_json(*utility));
      static_cast<void>(service->request(request.dump()));
    }
    return service;
  };
  const auto solve_utility = [](const std::string& reply) {
    const JsonValue parsed = aa::support::json_parse(reply);
    const JsonValue* utility = parsed.find("utility");
    return utility == nullptr ? 0.0 : utility->as_number();
  };
  cases.push_back(
      {"svc/request/solve_cached_n64", "svc", true,
       [make_service, solve_utility] {
         auto service = make_service();
         static_cast<void>(service->request(R"({"op": "solve"})"));
         return [service, solve_utility] {
           return solve_utility(service->request(R"({"op": "solve"})"));
         };
       }});
  cases.push_back(
      {"svc/request/delta_solve_n64", "svc", false,
       [make_service, solve_utility] {
         auto service = make_service();
         static_cast<void>(service->request(R"({"op": "solve"})"));
         return [service, solve_utility] {
           static_cast<void>(service->request(
               R"({"op": "update_utility", "id": 1, "factor": 1.0})"));
           return solve_utility(service->request(R"({"op": "solve"})"));
         };
       }});

  // Multi-tenant request latency (docs/SERVICE.md "Multi-tenant
  // sharding"): T tenants over 4 shards, 4 threads each, cached solves
  // round-robined across the tenants. The 1-vs-16 pair is the sharding
  // regression bar — hosting 16 tenants must not tax one tenant's
  // request path (acceptance: 16-tenant median within 1.3x of
  // 1-tenant's).
  const auto make_tenant_service = [seed](std::size_t tenants) {
    aa::svc::ServiceConfig config;
    config.num_servers = 8;
    config.capacity = 1000;
    config.workers = 4;
    config.shards = 4;
    auto service = std::make_shared<aa::svc::Service>(config);
    service->start();
    aa::support::DistributionParams dist;
    aa::support::Rng rng = aa::support::Rng::child(seed, 9004);
    for (std::size_t t = 0; t < tenants; ++t) {
      const std::string tenant = "bench" + std::to_string(t);
      JsonValue create{JsonValue::Object{}};
      create.set("op", "tenant_create");
      create.set("tenant", tenant);
      static_cast<void>(service->request(create.dump()));
      for (std::size_t i = 0; i < 4; ++i) {
        const aa::util::UtilityPtr utility =
            aa::util::generate_utility(1000, dist, rng);
        JsonValue request{JsonValue::Object{}};
        request.set("op", "add_thread");
        request.set("tenant", tenant);
        request.set("thread", aa::io::utility_to_json(*utility));
        static_cast<void>(service->request(request.dump()));
      }
      // Prime the cached path so the measured solves never re-solve.
      JsonValue solve{JsonValue::Object{}};
      solve.set("op", "solve");
      solve.set("tenant", tenant);
      static_cast<void>(service->request(solve.dump()));
    }
    return service;
  };
  const auto tenant_case = [make_tenant_service,
                            solve_utility](std::size_t tenants) {
    return [make_tenant_service, solve_utility, tenants] {
      auto service = make_tenant_service(tenants);
      auto next = std::make_shared<std::size_t>(0);
      return [service, solve_utility, tenants, next] {
        const std::string tenant =
            "bench" + std::to_string(*next % tenants);
        ++*next;
        return solve_utility(service->request(
            R"({"op": "solve", "tenant": ")" + tenant + "\"}"));
      };
    };
  };
  cases.push_back({"svc/tenant_request/solve_1_tenant", "svc", true,
                   tenant_case(1)});
  cases.push_back({"svc/tenant_request/solve_16_tenants", "svc", true,
                   tenant_case(16)});

  return cases;
}

std::string host_name() {
  char buffer[256] = {};
  if (gethostname(buffer, sizeof buffer - 1) != 0) return "unknown";
  return buffer[0] == '\0' ? "unknown" : std::string(buffer);
}

std::string utc_date() {
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  gmtime_r(&now, &utc);
  char buffer[16];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", &utc);
  return buffer;
}

std::string git_sha() {
  FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {};
  const bool got = std::fgets(buffer, sizeof buffer, pipe) != nullptr;
  if (pclose(pipe) != 0 || !got) return "unknown";
  std::string sha(buffer);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

Report run_suite(const std::string& suite, const std::string& filter,
                 std::uint64_t seed,
                 const aa::benchkit::RunnerOptions& options) {
  Report report;
  report.host = host_name();
  report.date_utc = utc_date();
  report.git_sha = git_sha();
  report.compiler = __VERSION__;
#ifdef AA_BENCH_BUILD_TYPE
  report.build_type = AA_BENCH_BUILD_TYPE;
#else
  report.build_type = "unknown";
#endif
  report.suite = suite;
  report.seed = seed;

  for (const BenchCase& bench : build_suite(seed)) {
    if (suite == "quick" && !bench.quick) continue;
    if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
      continue;
    }
    std::fprintf(stderr, "running %s ...\n", bench.name.c_str());
    CaseResult result =
        aa::benchkit::run_case(bench.name, bench.group, bench.make(), options);
    std::fprintf(stderr, "  median %.4f ms over %zu reps (rel stderr %.3f)\n",
                 result.median_ms, result.repetitions, result.rel_stderr);
    report.cases.push_back(std::move(result));
  }
  return report;
}

int usage() {
  std::cerr
      << "usage: aa_bench [--suite quick|full] [--filter SUBSTR] "
         "[--out FILE] [--list 1]\n"
         "                [--seed S] [--min-reps N] [--max-reps N]\n"
         "                [--target-rel-stderr X] [--max-case-seconds X]\n"
         "       aa_bench --compare BASELINE.json [CURRENT.json] "
         "[--threshold X]\n"
         "                [--warn-only 1] [--require-all 1]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const aa::support::Args args(
        argc, argv,
        {"suite", "filter", "out", "list", "seed", "min-reps", "max-reps",
         "target-rel-stderr", "max-case-seconds", "compare", "threshold",
         "warn-only", "require-all"});

    const std::string suite = args.get("suite", "full");
    if (suite != "quick" && suite != "full") return usage();
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    if (args.get_int("list", 0) != 0) {
      for (const BenchCase& bench : build_suite(seed)) {
        if (suite == "quick" && !bench.quick) continue;
        std::cout << bench.name << "\n";
      }
      return 0;
    }

    aa::benchkit::RunnerOptions options;
    options.min_reps = static_cast<std::size_t>(
        args.get_int("min-reps", static_cast<long long>(options.min_reps)));
    options.max_reps = static_cast<std::size_t>(
        args.get_int("max-reps", static_cast<long long>(options.max_reps)));
    options.target_rel_stderr =
        args.get_double("target-rel-stderr", options.target_rel_stderr);
    options.max_case_seconds =
        args.get_double("max-case-seconds", options.max_case_seconds);

    const std::string baseline_path = args.get("compare", "");
    if (baseline_path.empty() && !args.positional().empty()) return usage();

    if (!baseline_path.empty()) {
      if (args.positional().size() > 1) return usage();
      const Report baseline = aa::benchkit::report_from_json(
          aa::support::json_parse(aa::io::read_file(baseline_path)));
      Report current;
      if (args.positional().size() == 1) {
        current = aa::benchkit::report_from_json(
            aa::support::json_parse(aa::io::read_file(args.positional()[0])));
      } else {
        current = run_suite(baseline.suite, args.get("filter", ""), seed,
                            options);
      }
      aa::benchkit::CompareOptions compare;
      compare.threshold = args.get_double("threshold", compare.threshold);
      compare.require_all = args.get_int("require-all", 0) != 0;
      const aa::benchkit::CompareResult result =
          aa::benchkit::compare_reports(baseline, current, compare);
      std::cout << aa::benchkit::format_compare(result, compare);
      if (!result.ok() && args.get_int("warn-only", 0) != 0) {
        std::cout << "warn-only: regressions reported but not failing the "
                     "run\n";
        return 0;
      }
      return result.ok() ? 0 : 1;
    }

    const Report report =
        run_suite(suite, args.get("filter", ""), seed, options);
    const std::string default_out =
        "BENCH_" + report.host + "_" + report.date_utc + ".json";
    const std::string out_path = args.get("out", default_out);
    const JsonValue json = aa::benchkit::report_to_json(report);
    aa::io::write_file(out_path, json.dump(2) + "\n");
    std::cout << "wrote " << report.cases.size() << " cases to " << out_path
              << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "aa_bench: " << error.what() << "\n";
    return 2;
  }
}
