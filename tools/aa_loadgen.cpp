// aa_loadgen — load generator / correctness checker for aa_serve.
//
//   aa_loadgen --socket PATH [--requests N] [--connections K]
//              [--threads-init T] [--solve-every S] [--capacity C]
//              [--seed SEED] [--deadline-ms D] [--script FILE]
//              [--shutdown 1] [--connect-timeout-ms MS] [--json 1]
//
// Replays a request stream against a running aa_serve and verifies every
// reply. Default mode is randomized: each of K connections seeds the
// service with T threads (Section VII generator utilities against
// --capacity, which must match the server's), then issues its share of N
// requests — a mix of update_utility (drift factor in [0.8, 1.25]),
// add_thread, remove_thread, with a solve every S requests. --script FILE
// replays the file's lines verbatim on one connection instead.
//
// Every reply must parse and carry ok=true, and every solve reply must
// carry certificate_ok=true (the 0.828-approximation certificate); anything
// else counts as a failure and the exit status is 1. On success prints
// throughput and p50/p90/p99/max round-trip latency, the solve-path mix
// observed, and the server's own stats line. --json 1 appends one
// machine-readable summary line (a single JSON object with the same
// numbers) as the final stdout line, for CI and scripts.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/instance_io.hpp"
#include "support/args.hpp"
#include "support/distributions.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "svc/channel.hpp"
#include "utility/generator.hpp"

namespace {

using namespace aa;

struct Options {
  std::string socket_path;
  std::size_t requests = 1000;
  std::size_t connections = 1;
  std::size_t threads_init = 8;
  std::size_t solve_every = 8;
  util::Resource capacity = 64;
  std::uint64_t seed = 1;
  double deadline_ms = 0.0;
  std::string script_path;
  bool send_shutdown = false;
  int connect_timeout_ms = 5000;
};

struct Tally {
  std::size_t sent = 0;
  std::size_t failures = 0;
  std::size_t solves = 0;
  std::size_t solves_warm = 0;
  std::size_t solves_full = 0;
  std::size_t solves_cached = 0;
  std::vector<double> latency_ms;
  std::vector<std::string> failure_samples;  ///< First few, for stderr.

  void merge(const Tally& other) {
    sent += other.sent;
    failures += other.failures;
    solves += other.solves;
    solves_warm += other.solves_warm;
    solves_full += other.solves_full;
    solves_cached += other.solves_cached;
    latency_ms.insert(latency_ms.end(), other.latency_ms.begin(),
                      other.latency_ms.end());
    for (const std::string& sample : other.failure_samples) {
      if (failure_samples.size() >= 5) break;
      failure_samples.push_back(sample);
    }
  }
};

void record_failure(Tally& tally, const std::string& context) {
  ++tally.failures;
  if (tally.failure_samples.size() < 5) {
    tally.failure_samples.push_back(context);
  }
}

/// Sends one request line and validates the reply. Returns the parsed
/// reply, or nullopt when the round trip or validation failed.
std::optional<support::JsonValue> round_trip(svc::LineChannel& channel,
                                             const std::string& line,
                                             Tally& tally) {
  ++tally.sent;
  const auto start = std::chrono::steady_clock::now();
  if (!channel.write_line(line)) {
    record_failure(tally, "write failed: " + line);
    return std::nullopt;
  }
  const std::optional<std::string> reply = channel.read_line();
  if (!reply.has_value()) {
    record_failure(tally, "connection closed awaiting reply to: " + line);
    return std::nullopt;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  tally.latency_ms.push_back(
      std::chrono::duration<double, std::milli>(elapsed).count());
  support::JsonValue parsed;
  try {
    parsed = support::json_parse(*reply);
    if (!parsed.at("ok").as_bool()) {
      record_failure(tally, "error reply: " + *reply);
      return std::nullopt;
    }
  } catch (const std::exception& error) {
    record_failure(tally,
                   std::string("unparseable reply (") + error.what() +
                       "): " + *reply);
    return std::nullopt;
  }
  return parsed;
}

void check_solve_reply(const support::JsonValue& reply, Tally& tally) {
  ++tally.solves;
  try {
    if (!reply.at("certificate_ok").as_bool()) {
      record_failure(tally,
                     "solve reply without passing certificate: " +
                         reply.dump());
      return;
    }
    const std::string& path = reply.at("path").as_string();
    if (path == "warm") {
      ++tally.solves_warm;
    } else if (path == "cached") {
      ++tally.solves_cached;
    } else {
      ++tally.solves_full;
    }
  } catch (const std::exception& error) {
    record_failure(tally,
                   std::string("malformed solve reply (") + error.what() +
                       "): " + reply.dump());
  }
}

std::string with_deadline(support::JsonValue request, double deadline_ms) {
  if (deadline_ms > 0.0) request.set("deadline_ms", deadline_ms);
  return request.dump();
}

/// One connection's randomized stream.
Tally run_connection(const Options& options, std::size_t index,
                     std::size_t request_count) {
  Tally tally;
  svc::FdHandle fd =
      svc::connect_unix(options.socket_path, options.connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  support::Rng rng(options.seed + 0x9e3779b9u * (index + 1));
  support::DistributionParams dist;  // Section VII uniform H.
  std::vector<std::int64_t> ids;

  const auto send_add = [&] {
    const util::UtilityPtr utility =
        util::generate_utility(options.capacity, dist, rng);
    support::JsonValue request;
    request.set("op", "add_thread");
    request.set("thread", io::utility_to_json(*utility));
    const auto reply =
        round_trip(channel, with_deadline(std::move(request),
                                          options.deadline_ms),
                   tally);
    if (reply.has_value()) ids.push_back(reply->at("id").as_int());
  };

  for (std::size_t i = 0; i < options.threads_init; ++i) send_add();

  for (std::size_t i = 0; i < request_count; ++i) {
    if (options.solve_every > 0 && (i + 1) % options.solve_every == 0) {
      support::JsonValue request;
      request.set("op", "solve");
      const auto reply =
          round_trip(channel, with_deadline(std::move(request),
                                            options.deadline_ms),
                     tally);
      if (reply.has_value()) check_solve_reply(*reply, tally);
      continue;
    }
    const double dice = rng.uniform01();
    if (ids.empty() || dice < 0.15) {
      send_add();
    } else if (dice < 0.25) {
      const std::size_t pick = rng.uniform_below(ids.size());
      support::JsonValue request;
      request.set("op", "remove_thread");
      request.set("id", ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      (void)round_trip(channel, with_deadline(std::move(request),
                                              options.deadline_ms),
                       tally);
    } else {
      const std::size_t pick = rng.uniform_below(ids.size());
      support::JsonValue request;
      request.set("op", "update_utility");
      request.set("id", ids[pick]);
      request.set("factor", 0.8 + 0.45 * rng.uniform01());
      (void)round_trip(channel, with_deadline(std::move(request),
                                              options.deadline_ms),
                       tally);
    }
  }
  return tally;
}

Tally run_script(const Options& options) {
  Tally tally;
  std::ifstream script(options.script_path);
  if (!script) {
    throw std::runtime_error("cannot open script " + options.script_path);
  }
  svc::FdHandle fd =
      svc::connect_unix(options.socket_path, options.connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  std::string line;
  while (std::getline(script, line)) {
    if (line.empty()) continue;
    const auto reply = round_trip(channel, line, tally);
    if (reply.has_value() && reply->find("certificate_ok") != nullptr) {
      check_solve_reply(*reply, tally);
    }
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Args args(
        argc, argv,
        {"socket", "requests", "connections", "threads-init", "solve-every",
         "capacity", "seed", "deadline-ms", "script", "shutdown",
         "connect-timeout-ms", "json"});
    Options options;
    options.socket_path = args.get("socket", "");
    if (options.socket_path.empty() || !args.positional().empty()) {
      std::cerr << "usage: aa_loadgen --socket PATH [--requests N] "
                   "[--connections K] [--threads-init T] [--solve-every S] "
                   "[--capacity C] [--seed SEED] [--deadline-ms D] "
                   "[--script FILE] [--shutdown 1] [--connect-timeout-ms "
                   "MS] [--json 1]\n";
      return 2;
    }
    options.requests = static_cast<std::size_t>(args.get_int("requests", 1000));
    options.connections =
        static_cast<std::size_t>(args.get_int("connections", 1));
    if (options.connections == 0) options.connections = 1;
    options.threads_init =
        static_cast<std::size_t>(args.get_int("threads-init", 8));
    options.solve_every =
        static_cast<std::size_t>(args.get_int("solve-every", 8));
    options.capacity = static_cast<util::Resource>(args.get_int("capacity", 64));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.script_path = args.get("script", "");
    options.send_shutdown = args.get_int("shutdown", 0) != 0;
    options.connect_timeout_ms =
        static_cast<int>(args.get_int("connect-timeout-ms", 5000));
    const bool json_summary = args.get_int("json", 0) != 0;

    Tally total;
    const auto start = std::chrono::steady_clock::now();
    if (!options.script_path.empty()) {
      total = run_script(options);
    } else {
      std::mutex merge_mutex;
      std::vector<std::thread> workers;
      const std::size_t per_connection =
          options.requests / options.connections;
      const std::size_t remainder = options.requests % options.connections;
      for (std::size_t k = 0; k < options.connections; ++k) {
        const std::size_t share = per_connection + (k < remainder ? 1 : 0);
        workers.emplace_back([&, k, share] {
          Tally tally;
          try {
            tally = run_connection(options, k, share);
          } catch (const std::exception& error) {
            record_failure(tally, std::string("connection ") +
                                      std::to_string(k) + ": " +
                                      error.what());
          }
          std::lock_guard<std::mutex> lock(merge_mutex);
          total.merge(tally);
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Server-side view (and optional shutdown) on a fresh connection.
    std::string server_stats;
    try {
      svc::FdHandle fd =
          svc::connect_unix(options.socket_path, options.connect_timeout_ms);
      svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
      const auto stats = round_trip(channel, "{\"op\": \"stats\"}", total);
      if (stats.has_value()) server_stats = stats->dump();
      if (options.send_shutdown) {
        (void)round_trip(channel, "{\"op\": \"shutdown\"}", total);
      }
    } catch (const std::exception& error) {
      record_failure(total, std::string("stats connection: ") + error.what());
    }

    std::cout << "requests: " << total.sent << "  failures: "
              << total.failures << "\n";
    if (elapsed_s > 0.0) {
      std::cout << "elapsed: " << elapsed_s << " s  throughput: "
                << static_cast<double>(total.sent) / elapsed_s << " req/s\n";
    }
    if (!total.latency_ms.empty()) {
      const double qs[] = {0.5, 0.9, 0.99, 1.0};
      const std::vector<double> quantiles =
          support::quantiles(total.latency_ms, qs);
      std::cout << "latency ms: p50 " << quantiles[0] << "  p90 "
                << quantiles[1] << "  p99 " << quantiles[2] << "  max "
                << quantiles[3] << "\n";
    }
    std::cout << "solves: " << total.solves << " (warm " << total.solves_warm
              << ", full " << total.solves_full << ", cached "
              << total.solves_cached << "), all certified >= 0.828\n";
    if (!server_stats.empty()) {
      std::cout << "server stats: " << server_stats << "\n";
    }
    if (json_summary) {
      support::JsonValue summary;
      summary.set("requests", total.sent);
      summary.set("failures", total.failures);
      summary.set("elapsed_s", elapsed_s);
      summary.set("throughput_rps",
                  elapsed_s > 0.0
                      ? static_cast<double>(total.sent) / elapsed_s
                      : 0.0);
      if (!total.latency_ms.empty()) {
        const double qs[] = {0.5, 0.9, 0.99, 1.0};
        const std::vector<double> quantiles =
            support::quantiles(total.latency_ms, qs);
        support::JsonValue latency;
        latency.set("p50_ms", quantiles[0]);
        latency.set("p90_ms", quantiles[1]);
        latency.set("p99_ms", quantiles[2]);
        latency.set("max_ms", quantiles[3]);
        summary.set("latency", std::move(latency));
      }
      support::JsonValue solves;
      solves.set("total", total.solves);
      solves.set("warm", total.solves_warm);
      solves.set("full", total.solves_full);
      solves.set("cached", total.solves_cached);
      summary.set("solves", std::move(solves));
      std::cout << summary.dump() << "\n";
    }
    for (const std::string& sample : total.failure_samples) {
      std::cerr << "aa_loadgen: failure: " << sample << "\n";
    }
    return total.failures == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "aa_loadgen: " << error.what() << "\n";
    return 1;
  }
}
