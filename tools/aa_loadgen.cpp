// aa_loadgen — load generator / correctness checker for aa_serve.
//
//   aa_loadgen --socket PATH [--requests N] [--connections K]
//              [--threads-init T] [--solve-every S] [--capacity C]
//              [--seed SEED] [--deadline-ms D] [--script FILE]
//              [--tenants T] [--tenant-skew S] [--tenant-churn 1]
//              [--shutdown 1] [--connect-timeout-ms MS] [--json 1]
//
// Replays a request stream against a running aa_serve and verifies every
// reply. Default mode is randomized: each of K connections seeds the
// service with T threads (Section VII generator utilities against
// --capacity, which must match the server's), then issues its share of N
// requests — a mix of update_utility (drift factor in [0.8, 1.25]),
// add_thread, remove_thread, with a solve every S requests. --script FILE
// replays the file's lines verbatim on one connection instead.
//
// --tenants T switches to multi-tenant mode: tenants lg0..lg(T-1) are
// created up front and every request addresses one of them, sampled from a
// Zipf(--tenant-skew) popularity distribution (skew 0 = uniform; higher
// skews a few hot tenants, the realistic shape for consolidated hosts).
// --tenant-churn 1 additionally deletes and recreates the sampled tenant
// at a low rate mid-stream; races lost to churn (tenant_not_found /
// tenant_exists / not_found on a thread that died with its tenant) are
// expected there, tolerated, and reported per code rather than failing the
// run — the generator recreates the tenant and carries on, exercising the
// fairness policies' churn paths (Karma credit books included).
//
// Every reply must parse and carry ok=true (or a tolerated churn code),
// and every solve reply must carry certificate_ok=true (the
// 0.828-approximation certificate); anything else counts as a failure and
// the exit status is 1. On success prints throughput and p50/p90/p99/max
// round-trip latency, the solve-path mix observed, failures broken down by
// error code, and the server's own stats line. --json 1 appends one
// machine-readable summary line (a single JSON object with the same
// numbers plus a per-tenant breakdown) as the final stdout line, for CI
// and scripts.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/instance_io.hpp"
#include "support/args.hpp"
#include "support/distributions.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/sync.hpp"
#include "svc/channel.hpp"
#include "utility/generator.hpp"

namespace {

using namespace aa;

struct Options {
  std::string socket_path;
  std::size_t requests = 1000;
  std::size_t connections = 1;
  std::size_t threads_init = 8;
  std::size_t solve_every = 8;
  util::Resource capacity = 64;
  std::uint64_t seed = 1;
  double deadline_ms = 0.0;
  std::string script_path;
  std::size_t tenants = 0;  ///< 0 = single-tenant (no tenant fields).
  double tenant_skew = 1.0;
  bool tenant_churn = false;
  bool send_shutdown = false;
  int connect_timeout_ms = 5000;
};

/// Loadgen tenant ids: lg0..lg(N-1).
std::string tenant_name(std::size_t index) {
  return "lg" + std::to_string(index);
}

struct Tally {
  std::size_t sent = 0;
  std::size_t failures = 0;
  std::size_t tolerated = 0;  ///< Expected churn races, by code below.
  std::size_t solves = 0;
  std::size_t solves_warm = 0;
  std::size_t solves_full = 0;
  std::size_t solves_cached = 0;
  std::vector<double> latency_ms;
  /// Every non-ok reply by its stable error code — failures and tolerated
  /// churn races alike ("" for replies that never parsed).
  std::map<std::string, std::size_t> error_codes;
  /// Requests and hard failures per tenant (multi-tenant mode only).
  std::map<std::string, std::size_t> tenant_requests;
  std::map<std::string, std::size_t> tenant_failures;
  std::vector<std::string> failure_samples;  ///< First few, for stderr.

  void merge(const Tally& other) {
    sent += other.sent;
    failures += other.failures;
    tolerated += other.tolerated;
    solves += other.solves;
    solves_warm += other.solves_warm;
    solves_full += other.solves_full;
    solves_cached += other.solves_cached;
    latency_ms.insert(latency_ms.end(), other.latency_ms.begin(),
                      other.latency_ms.end());
    for (const auto& [code, count] : other.error_codes) {
      error_codes[code] += count;
    }
    for (const auto& [tenant, count] : other.tenant_requests) {
      tenant_requests[tenant] += count;
    }
    for (const auto& [tenant, count] : other.tenant_failures) {
      tenant_failures[tenant] += count;
    }
    for (const std::string& sample : other.failure_samples) {
      if (failure_samples.size() >= 5) break;
      failure_samples.push_back(sample);
    }
  }
};

/// Zipf popularity over `n` tenants: weight 1/(rank+1)^skew, sampled by
/// inverse CDF. skew 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_.push_back(total);
    }
    for (double& value : cdf_) value /= total;
  }

  [[nodiscard]] std::size_t sample(support::Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

void record_failure(Tally& tally, const std::string& context) {
  ++tally.failures;
  if (tally.failure_samples.size() < 5) {
    tally.failure_samples.push_back(context);
  }
}

/// Sends one request line and validates the reply. Returns the parsed
/// reply when it is ok — or a non-ok reply whose code is in `tolerated`
/// (an expected churn race; the caller checks "ok" and reacts). Any other
/// outcome is recorded as a failure and returns nullopt. Every non-ok
/// reply's code lands in tally.error_codes either way.
std::optional<support::JsonValue> round_trip(
    svc::LineChannel& channel, const std::string& line, Tally& tally,
    const std::set<std::string>* tolerated = nullptr) {
  ++tally.sent;
  const auto start = std::chrono::steady_clock::now();
  if (!channel.write_line(line)) {
    record_failure(tally, "write failed: " + line);
    return std::nullopt;
  }
  const std::optional<std::string> reply = channel.read_line();
  if (!reply.has_value()) {
    record_failure(tally, "connection closed awaiting reply to: " + line);
    return std::nullopt;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  tally.latency_ms.push_back(
      std::chrono::duration<double, std::milli>(elapsed).count());
  support::JsonValue parsed;
  try {
    parsed = support::json_parse(*reply);
    if (!parsed.at("ok").as_bool()) {
      const support::JsonValue* code = parsed.find("code");
      const std::string code_text =
          code != nullptr ? code->as_string() : "";
      ++tally.error_codes[code_text];
      if (tolerated != nullptr && tolerated->count(code_text) > 0) {
        ++tally.tolerated;
        return parsed;
      }
      record_failure(tally, "error reply: " + *reply);
      return std::nullopt;
    }
  } catch (const std::exception& error) {
    ++tally.error_codes[""];
    record_failure(tally,
                   std::string("unparseable reply (") + error.what() +
                       "): " + *reply);
    return std::nullopt;
  }
  return parsed;
}

bool is_ok(const support::JsonValue& reply) {
  return reply.at("ok").as_bool();
}

void check_solve_reply(const support::JsonValue& reply, Tally& tally) {
  ++tally.solves;
  try {
    if (!reply.at("certificate_ok").as_bool()) {
      record_failure(tally,
                     "solve reply without passing certificate: " +
                         reply.dump());
      return;
    }
    const std::string& path = reply.at("path").as_string();
    if (path == "warm") {
      ++tally.solves_warm;
    } else if (path == "cached") {
      ++tally.solves_cached;
    } else {
      ++tally.solves_full;
    }
  } catch (const std::exception& error) {
    record_failure(tally,
                   std::string("malformed solve reply (") + error.what() +
                       "): " + reply.dump());
  }
}

std::string with_deadline(support::JsonValue request, double deadline_ms) {
  if (deadline_ms > 0.0) request.set("deadline_ms", deadline_ms);
  return request.dump();
}

/// One connection's randomized stream. In multi-tenant mode every request
/// addresses a Zipf-sampled tenant; with churn, tenants may vanish under
/// us (another connection deleted them) — those races are tolerated,
/// repaired by recreating the tenant, and tallied per error code.
Tally run_connection(const Options& options, std::size_t index,
                     std::size_t request_count) {
  Tally tally;
  svc::FdHandle fd =
      svc::connect_unix(options.socket_path, options.connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  support::Rng rng(options.seed + 0x9e3779b9u * (index + 1));
  support::DistributionParams dist;  // Section VII uniform H.
  const bool multi_tenant = options.tenants > 0;
  const ZipfSampler zipf(std::max<std::size_t>(options.tenants, 1),
                         options.tenant_skew);
  // Per-tenant id pools ("" = the default tenant in single-tenant mode).
  std::map<std::string, std::vector<std::int64_t>> ids_by_tenant;
  // Churn races: the codes a request may legitimately come back with.
  const std::set<std::string> churn_codes = {"tenant_not_found",
                                             "tenant_exists", "not_found"};
  const std::set<std::string>* tolerated =
      options.tenant_churn ? &churn_codes : nullptr;

  const auto pick_tenant = [&]() -> std::string {
    return multi_tenant ? tenant_name(zipf.sample(rng)) : std::string();
  };
  const auto tag_tenant = [&](support::JsonValue& request,
                              const std::string& tenant) {
    if (!tenant.empty()) {
      request.set("tenant", tenant);
      ++tally.tenant_requests[tenant];
    }
  };
  /// The sampled tenant lost a churn race: recreate it (another connection
  /// may beat us to that too) and forget its dead threads.
  const auto repair_tenant = [&](const std::string& tenant) {
    ids_by_tenant[tenant].clear();
    support::JsonValue request;
    request.set("op", "tenant_create");
    request.set("tenant", tenant);
    ++tally.tenant_requests[tenant];
    (void)round_trip(channel, request.dump(), tally, tolerated);
  };
  /// Runs one request against `tenant`, reacting to tolerated races.
  const auto send = [&](support::JsonValue request,
                        const std::string& tenant) {
    tag_tenant(request, tenant);
    const auto reply = round_trip(
        channel, with_deadline(std::move(request), options.deadline_ms),
        tally, tolerated);
    if (!reply.has_value()) {
      if (!tenant.empty()) ++tally.tenant_failures[tenant];
      return reply;
    }
    if (!is_ok(*reply)) {
      if (reply->at("code").as_string() == "tenant_not_found") {
        repair_tenant(tenant);
      } else if (reply->at("code").as_string() == "not_found") {
        // A thread that died with its deleted tenant; drop our stale id.
        ids_by_tenant[tenant].clear();
      }
      return decltype(reply)(std::nullopt);
    }
    return reply;
  };

  const auto send_add = [&](const std::string& tenant) {
    const util::UtilityPtr utility =
        util::generate_utility(options.capacity, dist, rng);
    support::JsonValue request;
    request.set("op", "add_thread");
    request.set("thread", io::utility_to_json(*utility));
    const auto reply = send(std::move(request), tenant);
    if (reply.has_value()) {
      ids_by_tenant[tenant].push_back(reply->at("id").as_int());
    }
  };

  for (std::size_t i = 0; i < options.threads_init; ++i) {
    send_add(pick_tenant());
  }

  for (std::size_t i = 0; i < request_count; ++i) {
    const std::string tenant = pick_tenant();
    std::vector<std::int64_t>& ids = ids_by_tenant[tenant];
    if (options.solve_every > 0 && (i + 1) % options.solve_every == 0) {
      support::JsonValue request;
      request.set("op", "solve");
      const auto reply = send(std::move(request), tenant);
      if (reply.has_value()) check_solve_reply(*reply, tally);
      continue;
    }
    const double dice = rng.uniform01();
    if (options.tenant_churn && multi_tenant && dice < 0.01) {
      // Drop and recreate the sampled tenant: a full fairness re-division
      // (and, under karma, credit retirement + re-minting) under load.
      support::JsonValue request;
      request.set("op", "tenant_delete");
      request.set("tenant", tenant);
      ++tally.tenant_requests[tenant];
      (void)round_trip(channel, request.dump(), tally, tolerated);
      ids.clear();
      repair_tenant(tenant);
    } else if (ids.empty() || dice < 0.15) {
      send_add(tenant);
    } else if (dice < 0.25) {
      const std::size_t pick = rng.uniform_below(ids.size());
      support::JsonValue request;
      request.set("op", "remove_thread");
      request.set("id", ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
      (void)send(std::move(request), tenant);
    } else {
      const std::size_t pick = rng.uniform_below(ids.size());
      support::JsonValue request;
      request.set("op", "update_utility");
      request.set("id", ids[pick]);
      request.set("factor", 0.8 + 0.45 * rng.uniform01());
      (void)send(std::move(request), tenant);
    }
  }
  return tally;
}

/// Creates the loadgen tenants up front on a dedicated connection
/// (tolerating tenant_exists so reruns against a live server work).
void create_tenants(const Options& options, Tally& tally) {
  svc::FdHandle fd =
      svc::connect_unix(options.socket_path, options.connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  const std::set<std::string> tolerated = {"tenant_exists"};
  for (std::size_t t = 0; t < options.tenants; ++t) {
    support::JsonValue request;
    request.set("op", "tenant_create");
    request.set("tenant", tenant_name(t));
    (void)round_trip(channel, request.dump(), tally, &tolerated);
  }
}

Tally run_script(const Options& options) {
  Tally tally;
  std::ifstream script(options.script_path);
  if (!script) {
    throw std::runtime_error("cannot open script " + options.script_path);
  }
  svc::FdHandle fd =
      svc::connect_unix(options.socket_path, options.connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  std::string line;
  while (std::getline(script, line)) {
    if (line.empty()) continue;
    const auto reply = round_trip(channel, line, tally);
    if (reply.has_value() && reply->find("certificate_ok") != nullptr) {
      check_solve_reply(*reply, tally);
    }
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Args args(
        argc, argv,
        {"socket", "requests", "connections", "threads-init", "solve-every",
         "capacity", "seed", "deadline-ms", "script", "tenants",
         "tenant-skew", "tenant-churn", "shutdown", "connect-timeout-ms",
         "json"});
    Options options;
    options.socket_path = args.get("socket", "");
    if (options.socket_path.empty() || !args.positional().empty()) {
      std::cerr << "usage: aa_loadgen --socket PATH [--requests N] "
                   "[--connections K] [--threads-init T] [--solve-every S] "
                   "[--capacity C] [--seed SEED] [--deadline-ms D] "
                   "[--script FILE] [--tenants T] [--tenant-skew S] "
                   "[--tenant-churn 1] [--shutdown 1] [--connect-timeout-ms "
                   "MS] [--json 1]\n";
      return 2;
    }
    options.requests = static_cast<std::size_t>(args.get_int("requests", 1000));
    options.connections =
        static_cast<std::size_t>(args.get_int("connections", 1));
    if (options.connections == 0) options.connections = 1;
    options.threads_init =
        static_cast<std::size_t>(args.get_int("threads-init", 8));
    options.solve_every =
        static_cast<std::size_t>(args.get_int("solve-every", 8));
    options.capacity = static_cast<util::Resource>(args.get_int("capacity", 64));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.script_path = args.get("script", "");
    options.tenants = static_cast<std::size_t>(args.get_int("tenants", 0));
    options.tenant_skew = args.get_double("tenant-skew", 1.0);
    options.tenant_churn = args.get_int("tenant-churn", 0) != 0;
    options.send_shutdown = args.get_int("shutdown", 0) != 0;
    options.connect_timeout_ms =
        static_cast<int>(args.get_int("connect-timeout-ms", 5000));
    const bool json_summary = args.get_int("json", 0) != 0;

    Tally total;
    const auto start = std::chrono::steady_clock::now();
    if (!options.script_path.empty()) {
      total = run_script(options);
    } else {
      if (options.tenants > 0) create_tenants(options, total);
      // Lock order: leaf — serializes per-connection tally merges.
      support::Mutex merge_mutex;
      std::vector<std::thread> workers;
      const std::size_t per_connection =
          options.requests / options.connections;
      const std::size_t remainder = options.requests % options.connections;
      for (std::size_t k = 0; k < options.connections; ++k) {
        const std::size_t share = per_connection + (k < remainder ? 1 : 0);
        workers.emplace_back([&, k, share] {
          Tally tally;
          try {
            tally = run_connection(options, k, share);
          } catch (const std::exception& error) {
            record_failure(tally, std::string("connection ") +
                                      std::to_string(k) + ": " +
                                      error.what());
          }
          const support::MutexLock lock(merge_mutex);
          total.merge(tally);
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Server-side view (and optional shutdown) on a fresh connection.
    std::string server_stats;
    try {
      svc::FdHandle fd =
          svc::connect_unix(options.socket_path, options.connect_timeout_ms);
      svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
      const auto stats = round_trip(channel, "{\"op\": \"stats\"}", total);
      if (stats.has_value()) server_stats = stats->dump();
      if (options.send_shutdown) {
        (void)round_trip(channel, "{\"op\": \"shutdown\"}", total);
      }
    } catch (const std::exception& error) {
      record_failure(total, std::string("stats connection: ") + error.what());
    }

    std::cout << "requests: " << total.sent << "  failures: "
              << total.failures;
    if (total.tolerated > 0) {
      std::cout << "  tolerated churn races: " << total.tolerated;
    }
    std::cout << "\n";
    if (!total.error_codes.empty()) {
      std::cout << "errors by code:";
      for (const auto& [code, count] : total.error_codes) {
        std::cout << "  " << (code.empty() ? "(unparseable)" : code) << "="
                  << count;
      }
      std::cout << "\n";
    }
    if (elapsed_s > 0.0) {
      std::cout << "elapsed: " << elapsed_s << " s  throughput: "
                << static_cast<double>(total.sent) / elapsed_s << " req/s\n";
    }
    if (!total.latency_ms.empty()) {
      const double qs[] = {0.5, 0.9, 0.99, 1.0};
      const std::vector<double> quantiles =
          support::quantiles(total.latency_ms, qs);
      std::cout << "latency ms: p50 " << quantiles[0] << "  p90 "
                << quantiles[1] << "  p99 " << quantiles[2] << "  max "
                << quantiles[3] << "\n";
    }
    std::cout << "solves: " << total.solves << " (warm " << total.solves_warm
              << ", full " << total.solves_full << ", cached "
              << total.solves_cached << "), all certified >= 0.828\n";
    if (!server_stats.empty()) {
      std::cout << "server stats: " << server_stats << "\n";
    }
    if (json_summary) {
      support::JsonValue summary;
      summary.set("requests", total.sent);
      summary.set("failures", total.failures);
      summary.set("elapsed_s", elapsed_s);
      summary.set("throughput_rps",
                  elapsed_s > 0.0
                      ? static_cast<double>(total.sent) / elapsed_s
                      : 0.0);
      if (!total.latency_ms.empty()) {
        const double qs[] = {0.5, 0.9, 0.99, 1.0};
        const std::vector<double> quantiles =
            support::quantiles(total.latency_ms, qs);
        support::JsonValue latency;
        latency.set("p50_ms", quantiles[0]);
        latency.set("p90_ms", quantiles[1]);
        latency.set("p99_ms", quantiles[2]);
        latency.set("max_ms", quantiles[3]);
        summary.set("latency", std::move(latency));
      }
      support::JsonValue solves;
      solves.set("total", total.solves);
      solves.set("warm", total.solves_warm);
      solves.set("full", total.solves_full);
      solves.set("cached", total.solves_cached);
      summary.set("solves", std::move(solves));
      summary.set("tolerated", total.tolerated);
      if (!total.error_codes.empty()) {
        support::JsonValue errors;
        for (const auto& [code, count] : total.error_codes) {
          errors.set(code.empty() ? "unparseable" : code, count);
        }
        summary.set("errors", std::move(errors));
      }
      if (!total.tenant_requests.empty()) {
        support::JsonValue tenants;
        for (const auto& [tenant, count] : total.tenant_requests) {
          support::JsonValue entry;
          entry.set("requests", count);
          const auto failed = total.tenant_failures.find(tenant);
          entry.set("failures", failed == total.tenant_failures.end()
                                    ? std::size_t{0}
                                    : failed->second);
          tenants.set(tenant, std::move(entry));
        }
        summary.set("tenants", std::move(tenants));
      }
      std::cout << summary.dump() << "\n";
    }
    for (const std::string& sample : total.failure_samples) {
      std::cerr << "aa_loadgen: failure: " << sample << "\n";
    }
    return total.failures == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "aa_loadgen: " << error.what() << "\n";
    return 1;
  }
}
