// aa_solve — solve an AA instance file and print the assignment.
//
//   aa_solve INSTANCE.json [--algorithm alg2|alg2raw|alg2h|alg1|exact|bnb|
//                                       search|uu|ur|ru|rr]
//            [--so-strategy serial|parallel|price] [--so-price-tol T]
//            [--format json|text] [--seed S] [--out FILE] [--metrics FILE|-]
//
// --so-strategy picks the super-optimal allocation implementation the
// approximation algorithms consume (docs/ALGORITHMS.md "Strategy seam"):
// `serial` is the reference bisection, `parallel` the bit-identical SoA
// rewrite fanned across the thread pool, and `price` the single-price
// discovery variant whose utility trails F_hat by at most --so-price-tol
// relative scale (default 1e-9). Branch-and-bound ignores the seam: its
// pruning needs a true upper bound.
//
// The default algorithm is alg2 (Algorithm 2 + per-server refinement, the
// paper's evaluated configuration). `search` adds local-search
// post-processing; `exact` brute-forces small instances. The randomized
// heuristics use --seed.
//
// --metrics enables the aa::obs observability session for the solve and
// writes the metrics blob (counters, phase timings, trace, approximation
// certificates; see docs/OBSERVABILITY.md) to FILE, or to stdout with "-".
// When sending metrics to stdout, route the solution elsewhere with --out
// so each stream stays a single parseable document.

#include <iostream>
#include <memory>
#include <sstream>

#include "aa/algorithm1.hpp"
#include "aa/branch_and_bound.hpp"
#include "aa/heterogeneous.hpp"
#include "aa/algorithm2.hpp"
#include "aa/exact.hpp"
#include "aa/heuristics.hpp"
#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/session.hpp"
#include "support/args.hpp"
#include "io/instance_io.hpp"
#include "support/table.hpp"

namespace {

using namespace aa;

struct Solution {
  core::Assignment assignment;
  double super_optimal = -1.0;  // Only set by the approximation algorithms.
};

Solution run(const std::string& algorithm, const core::Instance& instance,
             std::uint64_t seed) {
  support::Rng rng(seed);
  if (algorithm == "alg2") {
    core::SolveResult result = core::solve_algorithm2_refined(instance);
    return {std::move(result.assignment), result.super_optimal_utility};
  }
  if (algorithm == "alg2raw") {
    core::SolveResult result = core::solve_algorithm2(instance);
    return {std::move(result.assignment), result.super_optimal_utility};
  }
  if (algorithm == "alg1") {
    core::SolveResult result = core::solve_algorithm1_refined(instance);
    return {std::move(result.assignment), result.super_optimal_utility};
  }
  if (algorithm == "search") {
    const core::SolveResult start = core::solve_algorithm2_refined(instance);
    core::LocalSearchResult result =
        core::improve_local_search(instance, start.assignment);
    return {std::move(result.assignment), start.super_optimal_utility};
  }
  if (algorithm == "exact") {
    core::ExactResult result = core::solve_exact(instance);
    return {std::move(result.assignment), -1.0};
  }
  if (algorithm == "bnb") {
    core::BranchAndBoundResult result = core::solve_branch_and_bound(instance);
    if (!result.proven_optimal) {
      std::cerr << "aa_solve: warning: node budget hit; solution is the "
                   "best found, optimality unproven\n";
    }
    return {std::move(result.assignment), -1.0};
  }
  if (algorithm == "uu") return {core::heuristic_uu(instance), -1.0};
  if (algorithm == "ur") return {core::heuristic_ur(instance, rng), -1.0};
  if (algorithm == "ru") return {core::heuristic_ru(instance, rng), -1.0};
  if (algorithm == "rr") return {core::heuristic_rr(instance, rng), -1.0};
  throw std::runtime_error("unknown algorithm '" + algorithm + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Args args(argc, argv,
                             {"algorithm", "format", "seed", "out", "metrics",
                              "so-strategy", "so-price-tol"});
    if (args.positional().size() != 1) {
      std::cerr << "usage: aa_solve INSTANCE.json [--algorithm alg2|alg2raw|"
                   "alg2h|alg1|exact|bnb|search|uu|ur|ru|rr] "
                   "[--so-strategy serial|parallel|price] [--so-price-tol T] "
                   "[--format json|text] "
                   "[--seed S] [--out FILE] [--metrics FILE|-]\n";
      return 2;
    }
    alloc::SuperOptimalOptions so_options;
    so_options.strategy = alloc::parse_super_optimal_strategy(
        args.get("so-strategy", "serial"));
    so_options.price_tolerance = args.get_double("so-price-tol", 1e-9);
    alloc::set_default_super_optimal_options(so_options);
    const std::string metrics_path = args.get("metrics", "");
    std::unique_ptr<obs::Session> session;
    if (!metrics_path.empty()) session = std::make_unique<obs::Session>();
    const auto emit_metrics = [&] {
      if (session == nullptr) return;
      const std::string blob = session->to_json().dump(2) + "\n";
      if (metrics_path == "-") {
        std::cout << blob;
      } else {
        io::write_file(metrics_path, blob);
      }
    };
    const support::JsonValue document =
        support::json_parse(io::read_file(args.positional()[0]));
    const std::string algorithm = args.get("algorithm", "alg2");

    // Heterogeneous documents (a "capacities" array) route to the
    // heterogeneous extension; only alg2h and uu apply there.
    if (io::is_hetero_document(document)) {
      const core::HeteroInstance hetero =
          io::hetero_instance_from_json(document);
      core::Assignment assignment;
      double bound = -1.0;
      if (algorithm == "alg2" || algorithm == "alg2h") {
        core::SolveResult result = core::solve_algorithm2_hetero(hetero);
        bound = result.super_optimal_utility;
        assignment = std::move(result.assignment);
      } else if (algorithm == "uu") {
        assignment = core::heuristic_uu_hetero(hetero);
      } else {
        throw std::runtime_error(
            "heterogeneous instances support --algorithm alg2h or uu only");
      }
      const std::string error = core::check_assignment(hetero, assignment);
      if (!error.empty()) throw std::runtime_error(error);
      const double hetero_utility = core::total_utility(hetero, assignment);
      std::ostringstream out;
      out << "heterogeneous instance: " << hetero.num_servers()
          << " servers, " << hetero.num_threads() << " threads\n"
          << "total utility: " << hetero_utility << "\n";
      if (bound >= 0.0) {
        out << "pooled upper bound: " << bound << "\n";
      }
      const std::string out_path_h = args.get("out", "");
      if (out_path_h.empty()) {
        std::cout << out.str();
      } else {
        io::write_file(out_path_h, out.str());
      }
      emit_metrics();
      return 0;
    }

    const core::Instance instance = io::instance_from_json(document);
    const Solution solution =
        run(algorithm, instance,
            static_cast<std::uint64_t>(args.get_int("seed", 1)));
    core::require_valid(instance, solution.assignment);
    const double utility = core::total_utility(instance, solution.assignment);

    const std::string format = args.get("format", "text");
    std::string rendered;
    if (format == "json") {
      support::JsonValue rendered_json =
          io::assignment_to_json(instance, solution.assignment);
      rendered_json.set("algorithm", algorithm);
      if (solution.super_optimal >= 0.0) {
        rendered_json.set("super_optimal_utility", solution.super_optimal);
      }
      rendered = rendered_json.dump(2) + "\n";
    } else if (format == "text") {
      support::Table table({"thread", "server", "alloc", "utility"});
      for (std::size_t i = 0; i < instance.num_threads(); ++i) {
        table.add_row_numeric(
            {static_cast<double>(i),
             static_cast<double>(solution.assignment.server[i]),
             solution.assignment.alloc[i],
             instance.threads[i]->value(solution.assignment.alloc[i])},
            2);
      }
      std::ostringstream out;
      out << table.to_text() << "\ntotal utility: " << utility << "\n";
      if (solution.super_optimal >= 0.0) {
        out << "super-optimal bound: " << solution.super_optimal
            << "  (certified >= " << utility / solution.super_optimal
            << " of optimal)\n";
      }
      rendered = out.str();
    } else {
      throw std::runtime_error("unknown format '" + format + "'");
    }

    const std::string out_path = args.get("out", "");
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      io::write_file(out_path, rendered);
    }
    emit_metrics();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "aa_solve: " << error.what() << "\n";
    return 1;
  }
}
