// aa_gen — generate a random AA instance as JSON.
//
//   aa_gen [--out FILE] [--dist uniform|normal|powerlaw|discrete]
//          [--servers M] [--capacity C] [--threads N] [--seed S]
//          [--alpha A] [--gamma G] [--theta T] [--mean MU] [--stddev SD]
//
// Defaults reproduce the paper's setting (m = 8, C = 1000). With no --out
// the document is written to stdout.

#include <iostream>

#include "support/args.hpp"
#include "io/instance_io.hpp"
#include "sim/workload.hpp"

namespace {

aa::support::DistributionKind parse_kind(const std::string& name) {
  using aa::support::DistributionKind;
  if (name == "uniform") return DistributionKind::kUniform;
  if (name == "normal") return DistributionKind::kNormal;
  if (name == "powerlaw") return DistributionKind::kPowerLaw;
  if (name == "discrete") return DistributionKind::kDiscrete;
  throw std::runtime_error("unknown distribution '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const aa::support::Args args(
        argc, argv,
        {"out", "dist", "servers", "capacity", "threads", "seed", "alpha",
         "gamma", "theta", "mean", "stddev"});

    aa::sim::WorkloadConfig config;
    config.dist.kind = parse_kind(args.get("dist", "uniform"));
    config.dist.alpha = args.get_double("alpha", 2.0);
    config.dist.gamma = args.get_double("gamma", 0.85);
    config.dist.theta = args.get_double("theta", 5.0);
    config.dist.mean = args.get_double("mean", 1.0);
    config.dist.stddev = args.get_double("stddev", 1.0);
    config.num_servers =
        static_cast<std::size_t>(args.get_int("servers", 8));
    config.capacity = args.get_int("capacity", 1000);
    const auto threads = static_cast<double>(args.get_int("threads", 40));
    config.beta = threads / static_cast<double>(config.num_servers);

    aa::support::Rng rng(
        static_cast<std::uint64_t>(args.get_int("seed", 1)));
    const aa::core::Instance instance =
        aa::sim::generate_instance(config, rng);

    const std::string document =
        aa::io::instance_to_json(instance).dump(2) + "\n";
    const std::string out = args.get("out", "");
    if (out.empty()) {
      std::cout << document;
    } else {
      aa::io::write_file(out, document);
      std::cerr << "wrote " << instance.num_threads() << " threads to " << out
                << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "aa_gen: " << error.what() << "\n";
    return 1;
  }
}
