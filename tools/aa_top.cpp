// aa_top — live terminal dashboard for a running aa_serve.
//
//   aa_top --socket PATH [--interval-ms MS] [--iterations N]
//          [--once 1] [--raw 1] [--connect-timeout-ms MS]
//
// Polls the service's `metrics` protocol verb (docs/SERVICE.md), validates
// the returned Prometheus text exposition, and renders a one-screen
// summary: request/error rates (computed between polls), queue depth,
// solve-path mix, certificate verdicts, latency quantiles, telemetry
// drop counters, and — when the server reports more than one tenant — the
// top tenants by request rate (per-tenant requests/errors/threads/slice,
// from the aa_svc_tenant_* labeled families in docs/OBSERVABILITY.md).
// Plain ANSI escapes only — no curses dependency — so it runs anywhere a
// terminal does.
//
//   --once 1        take a single snapshot and exit (no screen clearing);
//                   CI uses this as a scrape-and-validate step.
//   --raw 1         print the raw exposition body instead of the dashboard
//                   (still validated; combine with --once for checkers).
//   --iterations N  stop after N polls (0 = run until interrupted).
//
// Exit status is 0 only if every scrape parsed and validated: TYPE-declared
// families, well-formed sample lines, label bodies that follow the
// exposition grammar (valid label names, quoted values with only \\ \" \n
// escapes, no duplicate keys), cumulative histogram buckets whose +Inf
// count equals _count. A malformed exposition prints the violations to
// stderr and exits 1, so wiring `aa_top --once 1` into a pipeline doubles
// as a format regression test.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "support/args.hpp"
#include "support/json.hpp"
#include "svc/channel.hpp"

namespace {

using namespace aa;

struct Sample {
  std::string name;
  std::string labels;  ///< Raw label body without braces; empty when none.
  std::map<std::string, std::string> label_map;  ///< Parsed, unescaped.
  double value = 0.0;
};

struct Exposition {
  std::map<std::string, std::string> types;  ///< family -> TYPE.
  std::vector<Sample> samples;
};

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    return alpha || c == '_' || c == ':' || (digit && !first);
  };
  if (!ok(name.front(), true)) return false;
  for (const char c : name.substr(1)) {
    if (!ok(c, false)) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    return alpha || c == '_' || (digit && !first);
  };
  if (!ok(name.front(), true)) return false;
  for (const char c : name.substr(1)) {
    if (!ok(c, false)) return false;
  }
  return true;
}

/// Parses a label body (the text between the braces) against the
/// exposition grammar: `name="value"` pairs separated by commas, values
/// quoted with only \\ \" \n escapes, no duplicate keys. Violations are
/// appended to `errors` tagged with `context`; the parsed (unescaped)
/// pairs are returned either way.
std::map<std::string, std::string> parse_labels(
    std::string_view body, std::vector<std::string>& errors,
    const std::string& context) {
  std::map<std::string, std::string> labels;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos) {
      errors.push_back("label without '=': " + context);
      return labels;
    }
    const std::string name(body.substr(pos, eq - pos));
    if (!valid_label_name(name)) {
      errors.push_back("invalid label name '" + name + "': " + context);
    }
    if (eq + 1 >= body.size() || body[eq + 1] != '"') {
      errors.push_back("unquoted label value: " + context);
      return labels;
    }
    std::string value;
    std::size_t i = eq + 2;
    bool closed = false;
    for (; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '\\') {
        if (i + 1 >= body.size()) break;
        const char escaped = body[++i];
        if (escaped == '\\' || escaped == '"') {
          value.push_back(escaped);
        } else if (escaped == 'n') {
          value.push_back('\n');
        } else {
          errors.push_back(std::string("bad label escape '\\") + escaped +
                           "': " + context);
        }
      } else if (c == '"') {
        closed = true;
        ++i;
        break;
      } else {
        value.push_back(c);
      }
    }
    if (!closed) {
      errors.push_back("unterminated label value: " + context);
      return labels;
    }
    if (!labels.emplace(name, value).second) {
      errors.push_back("duplicate label '" + name + "': " + context);
    }
    if (i < body.size()) {
      if (body[i] != ',') {
        errors.push_back("expected ',' between labels: " + context);
        return labels;
      }
      ++i;
      if (i >= body.size()) {
        errors.push_back("trailing ',' in labels: " + context);
      }
    }
    pos = i;
  }
  return labels;
}

std::optional<double> parse_value(const std::string& text) {
  if (text == "+Inf") return std::numeric_limits<double>::infinity();
  if (text == "-Inf") return -std::numeric_limits<double>::infinity();
  if (text == "NaN") return std::nan("");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    return std::nullopt;
  }
  return value;
}

/// Parses one exposition body, appending any format violations to
/// `errors`. Parsing is strict about what aa_serve emits but tolerant of
/// standard extras (comments, HELP lines).
Exposition parse_exposition(const std::string& body,
                            std::vector<std::string>& errors) {
  Exposition exposition;
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) {
        errors.push_back("malformed TYPE line: " + line);
        continue;
      }
      const std::string family = rest.substr(0, space);
      const std::string type = rest.substr(space + 1);
      if (!valid_name(family)) {
        errors.push_back("invalid family name: " + line);
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        errors.push_back("unknown TYPE: " + line);
      }
      if (!exposition.types.emplace(family, type).second) {
        errors.push_back("duplicate TYPE for family: " + family);
      }
      continue;
    }
    if (line.front() == '#') continue;  // HELP or comment.
    Sample sample;
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      errors.push_back("malformed sample line: " + line);
      continue;
    }
    sample.name = line.substr(0, name_end);
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      const std::size_t brace = line.find('}', name_end);
      if (brace == std::string::npos || brace + 1 >= line.size() ||
          line[brace + 1] != ' ') {
        errors.push_back("malformed labels: " + line);
        continue;
      }
      sample.labels = line.substr(name_end + 1, brace - name_end - 1);
      sample.label_map = parse_labels(sample.labels, errors, line);
      value_start = brace + 1;
    }
    const std::optional<double> value =
        parse_value(line.substr(value_start + 1));
    if (!valid_name(sample.name)) {
      errors.push_back("invalid metric name: " + line);
      continue;
    }
    if (!value.has_value()) {
      errors.push_back("unparseable value: " + line);
      continue;
    }
    sample.value = *value;
    exposition.samples.push_back(std::move(sample));
  }
  return exposition;
}

/// The TYPE-declared family a sample belongs to, resolving the histogram /
/// summary child suffixes (_bucket/_sum/_count); empty when undeclared.
std::string family_of(const Exposition& exposition, const std::string& name) {
  if (exposition.types.count(name) != 0) return name;
  for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      const std::string base = name.substr(0, name.size() - suffix.size());
      if (exposition.types.count(base) != 0) return base;
    }
  }
  return {};
}

void validate(const Exposition& exposition,
              std::vector<std::string>& errors) {
  for (const Sample& sample : exposition.samples) {
    if (family_of(exposition, sample.name).empty()) {
      errors.push_back("sample without TYPE declaration: " + sample.name);
    }
  }
  for (const auto& [family, type] : exposition.types) {
    if (type != "histogram") continue;
    double previous = -1.0;
    double inf_count = -1.0;
    double total = -1.0;
    for (const Sample& sample : exposition.samples) {
      if (sample.name == family + "_bucket") {
        if (sample.value < previous) {
          errors.push_back("non-cumulative buckets in " + family);
        }
        previous = sample.value;
        if (sample.labels.find("le=\"+Inf\"") != std::string::npos) {
          inf_count = sample.value;
        }
      } else if (sample.name == family + "_count") {
        total = sample.value;
      }
    }
    if (inf_count < 0.0) {
      errors.push_back("histogram missing +Inf bucket: " + family);
    } else if (total >= 0.0 && inf_count != total) {
      errors.push_back("histogram +Inf bucket != _count: " + family);
    }
  }
}

/// First sample of `name` whose labels contain `label_part` (empty = any).
std::optional<double> find_value(const Exposition& exposition,
                                 std::string_view name,
                                 std::string_view label_part = {}) {
  for (const Sample& sample : exposition.samples) {
    if (sample.name != name) continue;
    if (!label_part.empty() &&
        sample.labels.find(label_part) == std::string::npos) {
      continue;
    }
    return sample.value;
  }
  return std::nullopt;
}

double value_or_zero(const Exposition& exposition, std::string_view name,
                     std::string_view label_part = {}) {
  return find_value(exposition, name, label_part).value_or(0.0);
}

/// Per-tenant values of family `name`, keyed by the tenant label; samples
/// without a tenant label are skipped, multiple samples per tenant (e.g.
/// the per-path solve counters) are summed.
std::map<std::string, double> by_tenant(const Exposition& exposition,
                                        std::string_view name) {
  std::map<std::string, double> out;
  for (const Sample& sample : exposition.samples) {
    if (sample.name != name) continue;
    const auto tenant = sample.label_map.find("tenant");
    if (tenant == sample.label_map.end()) continue;
    out[tenant->second] += sample.value;
  }
  return out;
}

/// Top tenants by request rate (requests_total when no rate yet), one row
/// each. Only rendered in multi-tenant deployments — a lone default
/// tenant adds nothing over the global rows.
void render_tenants(const Exposition& exposition,
                    const std::map<std::string, double>& tenant_rates) {
  constexpr std::size_t kTopTenants = 5;
  const std::map<std::string, double> requests =
      by_tenant(exposition, "aa_svc_tenant_requests_total");
  if (requests.size() < 2) return;
  const std::map<std::string, double> errors =
      by_tenant(exposition, "aa_svc_tenant_errors_total");
  const std::map<std::string, double> threads =
      by_tenant(exposition, "aa_svc_tenant_threads");
  const std::map<std::string, double> slices =
      by_tenant(exposition, "aa_svc_tenant_slice_units");
  const auto rate_of = [&](const std::string& tenant) {
    const auto it = tenant_rates.find(tenant);
    return it == tenant_rates.end() ? 0.0 : it->second;
  };
  std::vector<std::pair<std::string, double>> order(requests.begin(),
                                                    requests.end());
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    const double ra = rate_of(a.first);
    const double rb = rate_of(b.first);
    if (ra != rb) return ra > rb;
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // Deterministic tie-break.
  });
  std::cout << "tenants   " << requests.size() << " total, top "
            << std::min(kTopTenants, order.size()) << " by req/s:\n";
  for (std::size_t i = 0; i < order.size() && i < kTopTenants; ++i) {
    const std::string& tenant = order[i].first;
    const auto value = [&](const std::map<std::string, double>& table) {
      const auto it = table.find(tenant);
      return it == table.end() ? 0.0 : it->second;
    };
    std::cout << "  " << tenant << "  req " << order[i].second << " ("
              << rate_of(tenant) << "/s)  err " << value(errors)
              << "  threads " << value(threads) << "  slice "
              << value(slices) << "\n";
  }
}

void render_dashboard(const Exposition& exposition,
                      const std::string& socket_path,
                      std::optional<double> request_rate,
                      const std::map<std::string, double>& tenant_rates) {
  const auto line_quantiles = [&](const char* label,
                                  const std::string& family) {
    std::cout << label << "p50 "
              << value_or_zero(exposition, family, "quantile=\"0.5\"")
              << "  p90 "
              << value_or_zero(exposition, family, "quantile=\"0.9\"")
              << "  p99 "
              << value_or_zero(exposition, family, "quantile=\"0.99\"")
              << "  p99.9 "
              << value_or_zero(exposition, family, "quantile=\"0.999\"")
              << "  (n=" << value_or_zero(exposition, family + "_count")
              << ")\n";
  };

  std::cout << "aa_top — " << socket_path << "   uptime "
            << value_or_zero(exposition, "aa_uptime_seconds") << " s\n";
  std::cout << "requests  total "
            << value_or_zero(exposition, "aa_svc_requests_total");
  if (request_rate.has_value()) {
    std::cout << "  rate " << *request_rate << "/s";
  }
  std::cout << "  errors " << value_or_zero(exposition, "aa_svc_errors_total")
            << "  timeouts "
            << value_or_zero(exposition, "aa_svc_timeouts_total") << "\n";
  std::cout << "state     threads "
            << value_or_zero(exposition, "aa_svc_threads") << "  version "
            << value_or_zero(exposition, "aa_svc_state_version")
            << "  queue depth "
            << value_or_zero(exposition, "aa_svc_queue_depth") << " (peak "
            << value_or_zero(exposition, "aa_svc_queue_peak") << ")\n";
  std::cout << "batches   "
            << value_or_zero(exposition, "aa_svc_batches_total")
            << "  mean size "
            << (value_or_zero(exposition, "aa_svc_batch_size_count") > 0.0
                    ? value_or_zero(exposition, "aa_svc_batch_size_sum") /
                          value_or_zero(exposition, "aa_svc_batch_size_count")
                    : 0.0)
            << "\n";
  std::cout << "solves    full "
            << value_or_zero(exposition, "aa_svc_solves_total",
                             "path=\"full\"")
            << "  warm "
            << value_or_zero(exposition, "aa_svc_solves_total",
                             "path=\"warm\"")
            << "  cached "
            << value_or_zero(exposition, "aa_svc_solves_total",
                             "path=\"cached\"")
            << "  coalesced "
            << value_or_zero(exposition, "aa_svc_solves_coalesced_total")
            << "  migrations "
            << value_or_zero(exposition, "aa_svc_migrations_total") << "\n";
  std::cout << "certs     pass "
            << value_or_zero(exposition, "aa_svc_certificates_total",
                             "verdict=\"pass\"")
            << "  fail "
            << value_or_zero(exposition, "aa_svc_certificates_total",
                             "verdict=\"fail\"")
            << "\n";
  line_quantiles("req ms    ", "aa_svc_request_latency_quantiles_ms");
  line_quantiles("solve ms  ", "aa_svc_solve_latency_quantiles_ms");
  std::cout << "drops     trace "
            << value_or_zero(exposition, "aa_obs_trace_dropped_total")
            << "  histogram "
            << value_or_zero(exposition, "aa_obs_histogram_dropped_total")
            << "\n";
  render_tenants(exposition, tenant_rates);
  std::cout.flush();
}

/// One metrics round trip; returns the exposition body.
std::string scrape(const std::string& socket_path, int connect_timeout_ms) {
  svc::FdHandle fd = svc::connect_unix(socket_path, connect_timeout_ms);
  svc::LineChannel channel(fd.get(), svc::kDefaultMaxLineBytes);
  if (!channel.write_line("{\"op\": \"metrics\"}")) {
    throw std::runtime_error("write failed");
  }
  const std::optional<std::string> reply = channel.read_line();
  if (!reply.has_value()) {
    throw std::runtime_error("connection closed awaiting metrics reply");
  }
  const support::JsonValue parsed = support::json_parse(*reply);
  if (!parsed.at("ok").as_bool()) {
    throw std::runtime_error("metrics error reply: " + *reply);
  }
  return parsed.at("body").as_string();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Args args(argc, argv,
                             {"socket", "interval-ms", "iterations", "once",
                              "raw", "connect-timeout-ms"});
    const std::string socket_path = args.get("socket", "");
    if (socket_path.empty() || !args.positional().empty()) {
      std::cerr << "usage: aa_top --socket PATH [--interval-ms MS] "
                   "[--iterations N] [--once 1] [--raw 1] "
                   "[--connect-timeout-ms MS]\n";
      return 2;
    }
    const bool once = args.get_int("once", 0) != 0;
    const bool raw = args.get_int("raw", 0) != 0;
    const double interval_ms = args.get_double("interval-ms", 1000.0);
    const long long iterations =
        once ? 1 : args.get_int("iterations", 0);
    const int connect_timeout_ms =
        static_cast<int>(args.get_int("connect-timeout-ms", 5000));

    bool all_valid = true;
    std::optional<double> previous_requests;
    std::map<std::string, double> previous_tenant_requests;
    auto previous_time = std::chrono::steady_clock::now();
    for (long long i = 0; iterations == 0 || i < iterations; ++i) {
      if (i > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(interval_ms));
      }
      const std::string body = scrape(socket_path, connect_timeout_ms);
      std::vector<std::string> errors;
      const Exposition exposition = parse_exposition(body, errors);
      validate(exposition, errors);
      for (const std::string& error : errors) {
        std::cerr << "aa_top: invalid exposition: " << error << "\n";
        all_valid = false;
      }
      const auto now = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now - previous_time).count();
      std::optional<double> rate;
      const std::optional<double> requests =
          find_value(exposition, "aa_svc_requests_total");
      if (previous_requests.has_value() && requests.has_value() &&
          dt > 0.0) {
        rate = (*requests - *previous_requests) / dt;
      }
      const std::map<std::string, double> tenant_requests =
          by_tenant(exposition, "aa_svc_tenant_requests_total");
      std::map<std::string, double> tenant_rates;
      if (!previous_tenant_requests.empty() && dt > 0.0) {
        for (const auto& [tenant, count] : tenant_requests) {
          const auto it = previous_tenant_requests.find(tenant);
          if (it != previous_tenant_requests.end()) {
            tenant_rates[tenant] = (count - it->second) / dt;
          }
        }
      }
      previous_requests = requests;
      previous_tenant_requests = tenant_requests;
      previous_time = now;
      if (raw) {
        std::cout << body;
        std::cout.flush();
      } else {
        if (!once && iterations != 1) {
          std::cout << "\x1b[H\x1b[2J";  // Home + clear, plain ANSI.
        }
        render_dashboard(exposition, socket_path, rate, tenant_rates);
      }
    }
    return all_valid ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "aa_top: " << error.what() << "\n";
    return 1;
  }
}
