// aa_lint: project-invariant static analysis for the aa codebase.
//
// The compiler cannot see the contracts this repository depends on: metric
// names must exist in the src/obs/registry.hpp table *and* in
// docs/OBSERVABILITY.md, svc error codes must stay in sync between
// src/svc/protocol.hpp, docs/SERVICE.md and the svc test suite, and solver
// code must stay deterministic (no hash-ordered iteration, no rand(), no
// float-literal equality). aa_lint scans the source tree textually —
// dependency-free, std + <filesystem> + <regex> only — and exits nonzero
// on any violated invariant, so it can gate CI and run as a ctest.
//
// Checks (select with --check NAME, repeatable; default = all):
//
//   metric-literals  string literals at obs instrumentation sites
//                    (obs::count / obs::time_sample / obs::sample /
//                    obs::instant / obs::span_ending_now /
//                    obs::ScopedPhase) anywhere under src/ or tools/ —
//                    call sites must use the obs::metric registry
//                    constants. Also bans literal error codes at
//                    make_error_reply / ProtocolError sites.
//   metric-registry  src/obs/registry.hpp is internally consistent (no
//                    duplicate names, every constant listed in its kAll*
//                    array), every registered name is documented in
//                    docs/OBSERVABILITY.md, every documented name is
//                    registered, and every constant is referenced from
//                    code (no dead metrics).
//   error-codes      every error_code constant in src/svc/protocol.hpp is
//                    documented in docs/SERVICE.md's code table, every
//                    documented code is declared, and every code is
//                    exercised by tests/svc_*_test.cpp.
//   determinism      in solver code (src/aa, src/alloc,
//                    src/svc/warm_start.*): bans ==/!= against
//                    floating-point literals, rand()/srand(), unordered
//                    containers, and naked new.
//   include-style    project includes are quoted root-relative paths that
//                    resolve under src/ (no "../", no <aa/...>, no
//                    <bits/...>), and every header starts with
//                    #pragma once.
//   doc-links        every docs/*.md page is reachable from README.md by
//                    following markdown links (a page mentioning another
//                    page's path or filename counts as a link, root-level
//                    *.md pages may serve as intermediate hops), so no
//                    documentation page can silently orphan.
//   concurrency      locking discipline around src/support/sync.hpp: bans
//                    naked std::mutex / std::lock_guard / std::unique_lock
//                    / std::condition_variable (and friends) outside the
//                    sync layer itself, requires a "Lock order:" comment
//                    on every Mutex/SharedMutex/PhantomMutex declaration,
//                    requires AA_REQUIRES(...) on every `*_locked`
//                    function declared in a header, and requires a direct
//                    include of support/sync.hpp in any file that uses
//                    the AA_* annotation macros.
//
// A violation on a specific line can be waived by appending the comment
//   // aa-lint: allow(<check>)
// to that line; use sparingly and say why. Diagnostics are printed as
// "file:line: [check] message". Exit status: 0 clean, 1 violations,
// 2 usage or I/O error.
//
// String literals and comments are masked before pattern matching (the
// masked text keeps quotes and offsets, blanks contents), so banned
// constructs quoted in comments, docs, or this tool's own pattern strings
// never trip the checks.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string check;
  std::string message;
};

struct SourceFile {
  std::string rel;     ///< Root-relative path with '/' separators.
  std::string raw;     ///< File contents verbatim.
  std::string masked;  ///< Comments and literal contents blanked (same
                       ///< length as raw, so offsets and lines agree).
  std::vector<std::size_t> line_starts;
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Blanks comments entirely and the contents of string/char literals
/// (keeping the delimiting quotes) without changing the text length or
/// line structure.
std::string mask_source(const std::string& raw) {
  std::string out = raw;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // ")delim" terminator of a raw string literal.
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = raw[i];
    const char next = i + 1 < n ? raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // R"delim( ... )delim" — blank everything up to the terminator.
          if (i > 0 && raw[i - 1] == 'R' &&
              (i < 2 || !is_ident_char(raw[i - 2]))) {
            std::size_t open = raw.find('(', i + 1);
            if (open == std::string::npos) break;  // Malformed; give up.
            raw_delim = ")" + raw.substr(i + 1, open - i - 1) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'' && i > 0 && is_ident_char(raw[i - 1])) {
          // Digit separator (1'000) or suffix context — not a char literal.
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::size_t> index_lines(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const SourceFile& file, std::size_t offset) {
  const auto it = std::upper_bound(file.line_starts.begin(),
                                   file.line_starts.end(), offset);
  return static_cast<std::size_t>(it - file.line_starts.begin());
}

std::string line_text(const SourceFile& file, std::size_t line) {
  if (line == 0 || line > file.line_starts.size()) return "";
  const std::size_t begin = file.line_starts[line - 1];
  const std::size_t end = line < file.line_starts.size()
                              ? file.line_starts[line] - 1
                              : file.raw.size();
  return file.raw.substr(begin, end - begin);
}

/// True when the raw line carries an `aa-lint: allow(<check>)` waiver.
bool waived(const SourceFile& file, std::size_t line, std::string_view check) {
  const std::string text = line_text(file, line);
  const std::string needle = "aa-lint: allow(" + std::string(check) + ")";
  return text.find(needle) != std::string::npos;
}

class Linter {
 public:
  Linter(fs::path root, bool verbose) : root_(std::move(root)),
                                        verbose_(verbose) {}

  bool io_failed() const { return io_failed_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  void report(const SourceFile& file, std::size_t line,
              std::string_view check, std::string message) {
    if (line != 0 && waived(file, line, check)) return;
    diagnostics_.push_back(
        Diagnostic{file.rel, line, std::string(check), std::move(message)});
  }

  void report_global(std::string_view where, std::string_view check,
                     std::string message) {
    diagnostics_.push_back(
        Diagnostic{std::string(where), 0, std::string(check),
                   std::move(message)});
  }

  bool load() {
    for (const char* dir : {"src", "tools", "tests", "docs"}) {
      const fs::path base = root_ / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string rel =
            fs::relative(entry.path(), root_).generic_string();
        // Lint self-test fixtures are deliberately bad code.
        if (rel.find("lint_fixtures") != std::string::npos) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".md") {
          continue;
        }
        std::ifstream in(entry.path(), std::ios::binary);
        if (!in) {
          std::cerr << "aa_lint: cannot read " << rel << "\n";
          io_failed_ = true;
          return false;
        }
        std::ostringstream text;
        text << in.rdbuf();
        SourceFile file;
        file.rel = rel;
        file.raw = text.str();
        file.masked = ext == ".md" ? file.raw : mask_source(file.raw);
        file.line_starts = index_lines(file.raw);
        files_.push_back(std::move(file));
      }
    }
    // Root-level markdown (README.md, CONTRIBUTING.md, ...): the doc-links
    // graph starts at README.md and may hop through these pages.
    for (const auto& entry : fs::directory_iterator(root_)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension().string() != ".md") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::cerr << "aa_lint: cannot read "
                  << entry.path().filename().string() << "\n";
        io_failed_ = true;
        return false;
      }
      std::ostringstream text;
      text << in.rdbuf();
      SourceFile file;
      file.rel = fs::relative(entry.path(), root_).generic_string();
      file.raw = text.str();
      file.masked = file.raw;
      file.line_starts = index_lines(file.raw);
      files_.push_back(std::move(file));
    }
    std::sort(files_.begin(), files_.end(),
              [](const SourceFile& a, const SourceFile& b) {
                return a.rel < b.rel;
              });
    if (verbose_) {
      std::cerr << "aa_lint: loaded " << files_.size() << " files under "
                << root_.string() << "\n";
    }
    return true;
  }

  const SourceFile* find(std::string_view rel) const {
    for (const SourceFile& file : files_) {
      if (file.rel == rel) return &file;
    }
    return nullptr;
  }

  std::vector<const SourceFile*> match(const std::regex& rel_pattern) const {
    std::vector<const SourceFile*> out;
    for (const SourceFile& file : files_) {
      if (std::regex_search(file.rel, rel_pattern)) out.push_back(&file);
    }
    return out;
  }

  // -- metric-literals -----------------------------------------------------

  void check_metric_literals() {
    static const char* const kCheck = "metric-literals";
    const std::regex scope(R"(^(src|tools)/.*\.(cpp|hpp|h)$)");
    const std::regex obs_call(
        R"(obs::(count|time_sample|sample|instant|span_ending_now)\s*\(\s*")");
    const std::regex phase_ctor(
        R"(ScopedPhase\s*(\w+\s*)?[({]\s*")");
    const std::regex member_call(
        R"((->|\.)\s*(count|time|sample)\s*\(\s*")");
    const std::regex error_reply(
        R"((make_error_reply|ProtocolError)\s*\(\s*")");
    for (const SourceFile* file : match(scope)) {
      if (file->rel == "src/obs/registry.hpp") continue;
      scan_literal_calls(*file, obs_call, kCheck,
                         "metric name must come from obs::metric "
                         "(src/obs/registry.hpp), not a string literal");
      scan_literal_calls(*file, phase_ctor, kCheck,
                         "ScopedPhase name must come from obs::metric "
                         "(src/obs/registry.hpp), not a string literal");
      if (file->rel.rfind("src/obs/", 0) == 0) {
        scan_literal_calls(*file, member_call, kCheck,
                           "Session/Metrics count/time in src/obs must use "
                           "obs::metric constants, not string literals");
      }
      scan_literal_calls(*file, error_reply, kCheck,
                         "error code must come from svc::error_code "
                         "(src/svc/protocol.hpp), not a string literal");
    }
  }

  void scan_literal_calls(const SourceFile& file, const std::regex& pattern,
                          std::string_view check, std::string_view what) {
    for (auto it = std::sregex_iterator(file.masked.begin(),
                                        file.masked.end(), pattern);
         it != std::sregex_iterator(); ++it) {
      const std::size_t offset = static_cast<std::size_t>(it->position());
      const std::size_t quote =
          offset + static_cast<std::size_t>(it->length()) - 1;
      report(file, line_of(file, offset), check,
             std::string(what) + " (saw \"" + literal_at(file, quote) +
                 "\")");
    }
  }

  /// The raw string literal starting at `quote` (an opening '"').
  static std::string literal_at(const SourceFile& file, std::size_t quote) {
    std::string value;
    for (std::size_t i = quote + 1; i < file.raw.size(); ++i) {
      if (file.raw[i] == '"') break;
      if (file.raw[i] == '\\') ++i;
      value.push_back(file.raw[i]);
    }
    return value;
  }

  // -- registry parsing ----------------------------------------------------

  struct RegistryEntry {
    std::string constant;
    std::string value;
    std::string section;
    std::size_t line = 0;
  };

  /// Parses `inline constexpr std::string_view kName = "value";` entries
  /// grouped by `aa-lint-section:` markers, plus the kAll* arrays.
  static std::vector<RegistryEntry> parse_registry(
      const SourceFile& file, std::map<std::string,
      std::vector<std::string>>* arrays) {
    std::vector<RegistryEntry> entries;
    const std::regex entry_re(
        R"re(std::string_view\s+(k\w+)\s*=\s*"([^"]*)";)re");
    const std::regex section_re(R"(aa-lint-section:\s*(\w+))");
    // Section markers, in file order.
    std::vector<std::pair<std::size_t, std::string>> sections;
    for (auto it = std::sregex_iterator(file.raw.begin(), file.raw.end(),
                                        section_re);
         it != std::sregex_iterator(); ++it) {
      sections.emplace_back(static_cast<std::size_t>(it->position()),
                            (*it)[1].str());
    }
    for (auto it = std::sregex_iterator(file.raw.begin(), file.raw.end(),
                                        entry_re);
         it != std::sregex_iterator(); ++it) {
      RegistryEntry entry;
      entry.constant = (*it)[1].str();
      entry.value = (*it)[2].str();
      const std::size_t offset = static_cast<std::size_t>(it->position());
      entry.line = line_of(file, offset);
      for (const auto& [pos, name] : sections) {
        if (pos < offset) entry.section = name;
      }
      if (entry.constant.rfind("kAll", 0) == 0) continue;
      entries.push_back(std::move(entry));
    }
    if (arrays != nullptr) {
      const std::regex array_re(R"((kAll\w+)\[\]\s*=\s*\{([^}]*)\})");
      const std::regex ident_re(R"(k\w+)");
      for (auto it = std::sregex_iterator(file.raw.begin(), file.raw.end(),
                                          array_re);
           it != std::sregex_iterator(); ++it) {
        const std::string body = (*it)[2].str();
        std::vector<std::string> members;
        for (auto id = std::sregex_iterator(body.begin(), body.end(),
                                            ident_re);
             id != std::sregex_iterator(); ++id) {
          members.push_back(id->str());
        }
        (*arrays)[(*it)[1].str()] = std::move(members);
      }
    }
    return entries;
  }

  /// Backticked tokens in the first cell of every table row of a markdown
  /// section ("### Title" until the next heading).
  static std::set<std::string> doc_table_names(const SourceFile& doc,
                                               std::string_view heading) {
    std::set<std::string> names;
    std::istringstream in(doc.raw);
    std::string line;
    bool inside = false;
    while (std::getline(in, line)) {
      if (line.rfind("#", 0) == 0) {
        inside = line == heading;
        continue;
      }
      if (!inside || line.empty() || line[0] != '|') continue;
      const std::size_t second = line.find('|', 1);
      if (second == std::string::npos) continue;
      const std::string cell = line.substr(1, second - 1);
      if (cell.find("---") != std::string::npos) continue;
      std::size_t pos = 0;
      while (true) {
        const std::size_t open = cell.find('`', pos);
        if (open == std::string::npos) break;
        const std::size_t close = cell.find('`', open + 1);
        if (close == std::string::npos) break;
        names.insert(cell.substr(open + 1, close - open - 1));
        pos = close + 1;
      }
    }
    return names;
  }

  // -- metric-registry -----------------------------------------------------

  void check_metric_registry() {
    static const char* const kCheck = "metric-registry";
    const SourceFile* registry = find("src/obs/registry.hpp");
    if (registry == nullptr) {
      report_global("src/obs/registry.hpp", kCheck, "registry file missing");
      return;
    }
    const SourceFile* doc = find("docs/OBSERVABILITY.md");
    if (doc == nullptr) {
      report_global("docs/OBSERVABILITY.md", kCheck,
                    "metric documentation missing");
      return;
    }

    std::map<std::string, std::vector<std::string>> arrays;
    const std::vector<RegistryEntry> entries =
        parse_registry(*registry, &arrays);

    // Internal consistency: unique names, every constant in its section's
    // kAll* array and nothing extra.
    static const std::map<std::string, std::string> kSectionArray = {
        {"counters", "kAllCounters"},
        {"timers", "kAllTimers"},
        {"samples", "kAllSamples"},
        {"events", "kAllEvents"},
    };
    std::map<std::string, const RegistryEntry*> by_value;
    for (const RegistryEntry& entry : entries) {
      if (const auto [it, inserted] = by_value.emplace(entry.value, &entry);
          !inserted) {
        report(*registry, entry.line, kCheck,
               "duplicate metric name \"" + entry.value + "\" (also " +
                   it->second->constant + ")");
      }
      const auto section = kSectionArray.find(entry.section);
      if (section == kSectionArray.end()) {
        report(*registry, entry.line, kCheck,
               entry.constant + " is outside any aa-lint-section block");
        continue;
      }
      const std::vector<std::string>& members = arrays[section->second];
      if (std::find(members.begin(), members.end(), entry.constant) ==
          members.end()) {
        report(*registry, entry.line, kCheck,
               entry.constant + " is missing from " + section->second);
      }
    }
    for (const auto& [array_name, members] : arrays) {
      for (const std::string& member : members) {
        const bool known =
            std::any_of(entries.begin(), entries.end(),
                        [&](const RegistryEntry& entry) {
                          return entry.constant == member;
                        });
        if (!known) {
          report(*registry, 0, kCheck,
                 array_name + " lists undeclared constant " + member);
        }
      }
    }

    // Registry <-> docs, both directions, per section.
    static const std::map<std::string, std::string> kSectionHeading = {
        {"counters", "### Counters"},
        {"timers", "### Phase timers"},
        {"samples", "### Samples"},
        {"events", "### Trace events"},
    };
    std::set<std::string> documented_all;
    for (const auto& [section, heading] : kSectionHeading) {
      const std::set<std::string> documented = doc_table_names(*doc, heading);
      documented_all.insert(documented.begin(), documented.end());
      if (documented.empty()) {
        report(*doc, 0, kCheck,
               std::string("docs/OBSERVABILITY.md has no \"") + heading +
                   "\" table (required by the metric registry)");
      }
      for (const RegistryEntry& entry : entries) {
        if (entry.section == section &&
            documented.find(entry.value) == documented.end()) {
          report(*registry, entry.line, kCheck,
                 "\"" + entry.value + "\" (" + entry.constant +
                     ") is registered but not documented under \"" + heading +
                     "\" in docs/OBSERVABILITY.md");
        }
      }
    }
    for (const std::string& name : documented_all) {
      if (by_value.find(name) == by_value.end()) {
        report(*doc, 0, kCheck,
               "\"" + name +
                   "\" is documented in docs/OBSERVABILITY.md but not "
                   "registered in src/obs/registry.hpp");
      }
    }

    // Dead metrics: every constant must be referenced from src/ or tools/.
    const std::regex scope(R"(^(src|tools)/.*\.(cpp|hpp|h)$)");
    const std::vector<const SourceFile*> code = match(scope);
    for (const RegistryEntry& entry : entries) {
      const std::string needle = "metric::" + entry.constant;
      const bool used = std::any_of(
          code.begin(), code.end(), [&](const SourceFile* file) {
            return file->rel != "src/obs/registry.hpp" &&
                   file->masked.find(needle) != std::string::npos;
          });
      if (!used) {
        report(*registry, entry.line, kCheck,
               entry.constant + " (\"" + entry.value +
                   "\") is registered but never used from src/ or tools/");
      }
    }
  }

  // -- error-codes ---------------------------------------------------------

  void check_error_codes() {
    static const char* const kCheck = "error-codes";
    const SourceFile* protocol = find("src/svc/protocol.hpp");
    if (protocol == nullptr) {
      report_global("src/svc/protocol.hpp", kCheck, "protocol header missing");
      return;
    }
    const SourceFile* doc = find("docs/SERVICE.md");
    if (doc == nullptr) {
      report_global("docs/SERVICE.md", kCheck, "service documentation missing");
      return;
    }

    // Declared codes: constants inside `namespace error_code { ... }`.
    const std::size_t begin = protocol->raw.find("namespace error_code {");
    const std::size_t end =
        begin == std::string::npos ? std::string::npos
                                   : protocol->raw.find("}", begin);
    if (begin == std::string::npos || end == std::string::npos) {
      report(*protocol, 0, kCheck, "namespace error_code block not found");
      return;
    }
    const std::string block = protocol->raw.substr(begin, end - begin);
    const std::regex entry_re(
        R"re(std::string_view\s+(k\w+)\s*=\s*"([^"]*)";)re");
    std::map<std::string, std::string> declared;  // value -> constant.
    for (auto it = std::sregex_iterator(block.begin(), block.end(), entry_re);
         it != std::sregex_iterator(); ++it) {
      declared[(*it)[2].str()] = (*it)[1].str();
    }
    if (declared.empty()) {
      report(*protocol, 0, kCheck, "no error_code constants found");
      return;
    }

    // Documented codes: first-cell backticks of the `| code |` table.
    std::set<std::string> documented;
    {
      std::istringstream in(doc->raw);
      std::string line;
      bool inside = false;
      while (std::getline(in, line)) {
        const bool is_row = !line.empty() && line[0] == '|';
        if (!is_row) {
          inside = false;
          continue;
        }
        if (line.find("| code |") != std::string::npos ||
            line.find("| code ") == 0) {
          inside = true;
          continue;
        }
        if (!inside || line.find("---") != std::string::npos) continue;
        const std::size_t open = line.find('`');
        const std::size_t close =
            open == std::string::npos ? open : line.find('`', open + 1);
        if (close != std::string::npos) {
          documented.insert(line.substr(open + 1, close - open - 1));
        }
      }
    }
    if (documented.empty()) {
      report(*doc, 0, kCheck, "no `| code | meaning |` table found");
    }

    // Tests that pin the protocol surface.
    const std::regex test_scope(R"(^tests/svc_\w*test\.cpp$)");
    const std::vector<const SourceFile*> tests = match(test_scope);
    if (tests.empty()) {
      report_global("tests", kCheck, "no svc_*_test.cpp files found");
    }

    for (const auto& [value, constant] : declared) {
      if (documented.find(value) == documented.end()) {
        report(*protocol, 0, kCheck,
               "error code \"" + value + "\" (" + constant +
                   ") is declared but missing from the docs/SERVICE.md "
                   "code table");
      }
      const bool exercised = std::any_of(
          tests.begin(), tests.end(), [&](const SourceFile* file) {
            return file->masked.find("error_code::" + constant) !=
                       std::string::npos ||
                   file->raw.find("\"" + value + "\"") != std::string::npos;
          });
      if (!exercised && !tests.empty()) {
        report(*protocol, 0, kCheck,
               "error code \"" + value + "\" (" + constant +
                   ") is never exercised by tests/svc_*_test.cpp");
      }
    }
    for (const std::string& value : documented) {
      if (declared.find(value) == declared.end()) {
        report(*doc, 0, kCheck,
               "error code \"" + value +
                   "\" is documented in docs/SERVICE.md but not declared "
                   "in src/svc/protocol.hpp");
      }
    }
  }

  // -- determinism ---------------------------------------------------------

  void check_determinism() {
    static const char* const kCheck = "determinism";
    const std::regex scope(
        R"(^(src/aa/|src/alloc/|src/svc/warm_start\.).*)");
    struct Ban {
      std::regex pattern;
      const char* message;
    };
    static const std::vector<Ban> kBans = [] {
      std::vector<Ban> bans;
      bans.push_back(
          {std::regex(R"([=!]=\s*(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?)"),
           "floating-point literal compared with ==/!= (use an explicit "
           "tolerance or integer state)"});
      bans.push_back(
          {std::regex(R"((\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?\s*[=!]=)"),
           "floating-point literal compared with ==/!= (use an explicit "
           "tolerance or integer state)"});
      bans.push_back({std::regex(R"(\b(std::)?s?rand\s*\()"),
                      "rand()/srand() is banned in solver code (use "
                      "support::Prng)"});
      bans.push_back({std::regex(R"(\bstd::unordered_(map|set|multimap|multiset)\b)"),
                      "unordered containers are banned in solver code "
                      "(iteration order is hash-seeded; use std::map / "
                      "std::set / sorted vectors)"});
      bans.push_back({std::regex(R"(\bnew\s+[A-Za-z_(])"),
                      "naked new is banned in solver code (use containers "
                      "or std::make_unique)"});
      return bans;
    }();
    for (const SourceFile* file : match(scope)) {
      for (const Ban& ban : kBans) {
        for (auto it = std::sregex_iterator(file->masked.begin(),
                                            file->masked.end(), ban.pattern);
             it != std::sregex_iterator(); ++it) {
          const std::size_t offset = static_cast<std::size_t>(it->position());
          report(*file, line_of(*file, offset), kCheck, ban.message);
        }
      }
    }
  }

  // -- include-style -------------------------------------------------------

  void check_include_style() {
    static const char* const kCheck = "include-style";
    const std::regex scope(R"(^(src|tools)/.*\.(cpp|hpp|h)$)");
    const std::regex quoted_re(R"(^\s*#\s*include\s*")");
    const std::regex angled_re(R"(^\s*#\s*include\s*<([^>]+)>)");
    for (const SourceFile* file : match(scope)) {
      std::istringstream masked(file->masked);
      std::string masked_line;
      std::size_t line_number = 0;
      bool pragma_checked = false;
      while (std::getline(masked, masked_line)) {
        ++line_number;
        const bool header = file->rel.size() > 4 &&
                            file->rel.substr(file->rel.size() - 4) == ".hpp";
        if (header && !pragma_checked) {
          // First non-blank masked line must be #pragma once (comments
          // mask to blanks, so license/doc headers are fine).
          const bool blank = masked_line.find_first_not_of(" \t\r") ==
                             std::string::npos;
          if (!blank) {
            pragma_checked = true;
            if (masked_line.rfind("#pragma once", 0) != 0) {
              report(*file, line_number, kCheck,
                     "header does not start with #pragma once");
            }
          }
        }
        if (std::regex_search(masked_line, quoted_re)) {
          const std::string raw_line = line_text(*file, line_number);
          const std::size_t open = raw_line.find('"');
          const std::size_t close = open == std::string::npos
                                        ? open
                                        : raw_line.find('"', open + 1);
          if (open == std::string::npos || close == std::string::npos) {
            continue;
          }
          const std::string path =
              raw_line.substr(open + 1, close - open - 1);
          if (path.rfind("./", 0) == 0 ||
              path.find("../") != std::string::npos) {
            report(*file, line_number, kCheck,
                   "relative include \"" + path +
                       "\" (project includes are root-relative under src/)");
          } else if (!fs::is_regular_file(root_ / "src" / path)) {
            report(*file, line_number, kCheck,
                   "quoted include \"" + path +
                       "\" does not resolve under src/ (use <...> for "
                       "system headers)");
          }
        }
        std::smatch angled;
        if (std::regex_search(masked_line, angled, angled_re)) {
          const std::string path = angled[1].str();
          if (path.rfind("bits/", 0) == 0) {
            report(*file, line_number, kCheck,
                   "<bits/...> is not a portable header");
          } else if (fs::is_regular_file(root_ / "src" / path)) {
            report(*file, line_number, kCheck,
                   "project header <" + path + "> must use quotes");
          }
        }
      }
    }
  }

  // -- concurrency ---------------------------------------------------------

  void check_concurrency() {
    static const char* const kCheck = "concurrency";
    const std::regex scope(R"(^(src|tools)/.*\.(cpp|hpp|h)$)");
    // (a) Naked standard synchronization primitives. The annotated
    // wrappers in src/support/sync.hpp are the only sanctioned spelling:
    // they are what Clang's thread-safety analysis can see.
    const std::regex naked_re(
        R"(\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex)"
        R"(|shared_mutex|shared_timed_mutex|lock_guard|unique_lock)"
        R"(|scoped_lock|shared_lock|condition_variable)"
        R"(|condition_variable_any)\b)");
    // (b) Every lockable declaration states its place in the hierarchy.
    const std::regex lockable_decl_re(
        R"(^\s*(mutable\s+)?((aa::)?support::)?)"
        R"((Mutex|SharedMutex|PhantomMutex)\s+[A-Za-z_]\w*)");
    // (c) Functions named `*_locked` in headers carry AA_REQUIRES.
    const std::regex locked_fn_re(R"(\b[A-Za-z_]\w*_locked\s*\()");
    // (d) AA_* macro users include the defining header directly.
    const std::regex macro_re(
        R"(\bAA_(CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY)"
        R"(|REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE)"
        R"(|RELEASE_SHARED|TRY_ACQUIRE|EXCLUDES|ACQUIRED_AFTER)"
        R"(|ACQUIRED_BEFORE|ASSERT_CAPABILITY|RETURN_CAPABILITY)"
        R"(|NO_THREAD_SAFETY_ANALYSIS)\b)");
    for (const SourceFile* file : match(scope)) {
      if (file->rel == "src/support/sync.hpp") continue;
      for (auto it = std::sregex_iterator(file->masked.begin(),
                                          file->masked.end(), naked_re);
           it != std::sregex_iterator(); ++it) {
        const std::size_t offset = static_cast<std::size_t>(it->position());
        report(*file, line_of(*file, offset), kCheck,
               "naked " + it->str() +
                   " — use the annotated wrappers in src/support/sync.hpp "
                   "(Mutex / MutexLock / CondVar)");
      }
      check_lock_order_comments(*file, lockable_decl_re, kCheck);
      if (file->rel.size() > 4 &&
          file->rel.substr(file->rel.size() - 4) == ".hpp") {
        check_locked_requires(*file, locked_fn_re, kCheck);
      }
      // The include path is a string literal (blanked in masked text), so
      // this one lookup goes against the raw bytes.
      std::smatch macro_use;
      if (std::regex_search(file->masked, macro_use, macro_re) &&
          file->raw.find("#include \"support/sync.hpp\"") ==
              std::string::npos) {
        const std::size_t offset =
            static_cast<std::size_t>(macro_use.position());
        report(*file, line_of(*file, offset), kCheck,
               "uses thread-safety annotation macros but does not include "
               "\"support/sync.hpp\" directly");
      }
    }
  }

  /// (b) A Mutex/SharedMutex/PhantomMutex declaration must say where it
  /// sits in the lock hierarchy: a "Lock order:" note on the declaration
  /// line itself or in the contiguous `//` comment block directly above.
  void check_lock_order_comments(const SourceFile& file,
                                 const std::regex& decl_re,
                                 std::string_view check) {
    std::istringstream masked(file.masked);
    std::string masked_line;
    std::size_t line_number = 0;
    while (std::getline(masked, masked_line)) {
      ++line_number;
      if (!std::regex_search(masked_line, decl_re)) continue;
      bool documented =
          line_text(file, line_number).find("Lock order:") !=
          std::string::npos;
      for (std::size_t above = line_number; !documented && above > 1;) {
        --above;
        const std::string text = line_text(file, above);
        const std::size_t first = text.find_first_not_of(" \t");
        if (first == std::string::npos ||
            text.compare(first, 2, "//") != 0) {
          break;  // End of the contiguous comment block.
        }
        documented = text.find("Lock order:") != std::string::npos;
      }
      if (!documented) {
        report(file, line_number, check,
               "lockable member needs a \"Lock order:\" comment (same line "
               "or the // block directly above) stating its place in the "
               "hierarchy — see docs/ARCHITECTURE.md");
      }
    }
  }

  /// (c) A function whose name ends in `_locked` encodes a caller-holds-
  /// the-lock contract; in a header that contract must be machine-checked
  /// with AA_REQUIRES(...), not prose. Calls are told apart from
  /// declarations by the statement prefix: a call site's prefix (text
  /// since the last `;`/`{`/`}`/`#`) is empty or carries `=`, `return`,
  /// `(`, `,`, `.` or `->`, a declaration's carries the return type.
  void check_locked_requires(const SourceFile& file, const std::regex& fn_re,
                             std::string_view check) {
    const std::string& masked = file.masked;
    for (auto it = std::sregex_iterator(masked.begin(), masked.end(), fn_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t offset = static_cast<std::size_t>(it->position());
      const std::size_t stmt =
          masked.find_last_of(";{}#", offset == 0 ? 0 : offset - 1);
      const std::string prefix = masked.substr(
          stmt == std::string::npos ? 0 : stmt + 1,
          offset - (stmt == std::string::npos ? 0 : stmt + 1));
      const bool call_like =
          prefix.find_first_not_of(" \t\r\n") == std::string::npos ||
          prefix.find('=') != std::string::npos ||
          prefix.find('(') != std::string::npos ||
          prefix.find(',') != std::string::npos ||
          prefix.find('.') != std::string::npos ||
          prefix.find("->") != std::string::npos ||
          prefix.find("return") != std::string::npos;
      if (call_like) continue;
      // Span from the parameter list's close paren to the declaration's
      // `;` or `{` is where trailing attributes live.
      std::size_t open = masked.find('(', offset);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      for (; close < masked.size(); ++close) {
        if (masked[close] == '(') ++depth;
        if (masked[close] == ')' && --depth == 0) break;
      }
      const std::size_t terminator = masked.find_first_of(";{", close);
      const std::string trailer = masked.substr(
          close, (terminator == std::string::npos ? masked.size()
                                                  : terminator) -
                     close);
      if (trailer.find("AA_REQUIRES") == std::string::npos) {
        report(file, line_of(file, offset), check,
               "`*_locked` function declared without AA_REQUIRES(...) — "
               "the caller-holds-the-lock contract must be machine-checked "
               "(src/support/sync.hpp)");
      }
    }
  }

  // -- doc-links -----------------------------------------------------------

  void check_doc_links() {
    static const char* const kCheck = "doc-links";
    std::vector<const SourceFile*> pages;
    bool have_docs = false;
    for (const SourceFile& file : files_) {
      if (file.rel.size() < 3 ||
          file.rel.substr(file.rel.size() - 3) != ".md") {
        continue;
      }
      pages.push_back(&file);
      have_docs = have_docs || file.rel.rfind("docs/", 0) == 0;
    }
    if (!have_docs) return;  // Nothing that needs to be reachable.

    const SourceFile* readme = find("README.md");
    if (readme == nullptr) {
      report_global("README.md", kCheck,
                    "docs/*.md pages exist but there is no README.md to "
                    "anchor the link graph");
      return;
    }

    /// A page links another when it mentions its root-relative path or, for
    /// docs/ pages, its bare filename (relative links within docs/).
    const auto links_to = [](const SourceFile& from, const SourceFile& to) {
      if (from.raw.find(to.rel) != std::string::npos) return true;
      const std::size_t slash = to.rel.rfind('/');
      if (slash == std::string::npos) return false;
      return from.raw.find(to.rel.substr(slash + 1)) != std::string::npos;
    };

    std::set<const SourceFile*> reachable{readme};
    std::vector<const SourceFile*> frontier{readme};
    while (!frontier.empty()) {
      const SourceFile* from = frontier.back();
      frontier.pop_back();
      for (const SourceFile* to : pages) {
        if (reachable.count(to) != 0 || !links_to(*from, *to)) continue;
        reachable.insert(to);
        frontier.push_back(to);
      }
    }

    for (const SourceFile* page : pages) {
      if (page->rel.rfind("docs/", 0) != 0) continue;  // Only docs/ must link.
      if (reachable.count(page) != 0) continue;
      report(*page, 0, kCheck,
             "not reachable from README.md via markdown links — link it "
             "from README.md or another reachable page");
    }
  }

 private:
  fs::path root_;
  bool verbose_ = false;
  bool io_failed_ = false;
  std::vector<SourceFile> files_;
  std::vector<Diagnostic> diagnostics_;
};

constexpr std::string_view kKnownChecks[] = {
    "metric-literals", "metric-registry", "error-codes", "determinism",
    "include-style", "doc-links", "concurrency",
};

int usage(int status) {
  std::ostream& out = status == 0 ? std::cout : std::cerr;
  out << "usage: aa_lint --root DIR [--check NAME]... [--verbose]\n"
         "Project-invariant static analysis (docs/STATIC_ANALYSIS.md).\n"
         "Checks:";
  for (const std::string_view check : kKnownChecks) out << " " << check;
  out << "\nExit: 0 clean, 1 violations, 2 usage/I/O error.\n";
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::set<std::string> checks;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      const std::string_view name = argv[++i];
      const bool known =
          std::find(std::begin(kKnownChecks), std::end(kKnownChecks), name) !=
          std::end(kKnownChecks);
      if (!known) {
        std::cerr << "aa_lint: unknown check '" << name << "'\n";
        return usage(2);
      }
      checks.emplace(name);
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "aa_lint: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (root.empty()) {
    std::cerr << "aa_lint: --root is required\n";
    return usage(2);
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::cerr << "aa_lint: not a directory: " << root.string() << "\n";
    return 2;
  }
  if (checks.empty()) {
    for (const std::string_view check : kKnownChecks) checks.emplace(check);
  }

  Linter linter(root, verbose);
  if (!linter.load()) return 2;
  if (checks.count("metric-literals") != 0) linter.check_metric_literals();
  if (checks.count("metric-registry") != 0) linter.check_metric_registry();
  if (checks.count("error-codes") != 0) linter.check_error_codes();
  if (checks.count("determinism") != 0) linter.check_determinism();
  if (checks.count("include-style") != 0) linter.check_include_style();
  if (checks.count("doc-links") != 0) linter.check_doc_links();
  if (checks.count("concurrency") != 0) linter.check_concurrency();

  std::vector<Diagnostic> diagnostics = linter.diagnostics();
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  for (const Diagnostic& diagnostic : diagnostics) {
    std::cout << diagnostic.file << ":" << diagnostic.line << ": ["
              << diagnostic.check << "] " << diagnostic.message << "\n";
  }
  if (!diagnostics.empty()) {
    std::cout << "aa_lint: " << diagnostics.size() << " violation"
              << (diagnostics.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  if (verbose) std::cout << "aa_lint: clean\n";
  return 0;
}
