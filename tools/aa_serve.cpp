// aa_serve — long-running allocation service (docs/SERVICE.md).
//
//   aa_serve [--socket PATH] [--stdio 1]
//            [--servers M] [--capacity C] [--workers W]
//            [--batch-max B] [--batch-linger-ms L] [--deadline-ms D]
//            [--max-queue Q] [--max-line-bytes N]
//            [--hysteresis H] [--resolve-fraction F] [--resolve-min K]
//            [--shards S] [--fairness static_quota|weighted_max_min|karma]
//            [--karma-credits B]
//            [--so-strategy serial|parallel|price] [--so-price-tol T]
//            [--metrics FILE|-] [--trace-out FILE]
//
// Speaks line-delimited JSON (add_thread / remove_thread / update_utility /
// solve / tenant_create / tenant_update / tenant_delete / tenant_list /
// stats / shutdown) over a Unix domain socket at --socket, or over
// stdin/stdout with --stdio 1 (also the default when no socket is given; the
// mode tests and shell pipelines use). The process exits after a `shutdown`
// request — or, in stdio mode, at EOF.
//
// Requests are batched (--batch-max / --batch-linger-ms) so delta bursts
// coalesce into one re-solve; solves take the warm-start incremental path
// with --hysteresis stickiness, falling back to full Algorithm 2 when more
// than max(--resolve-min, --resolve-fraction * n) deltas accumulated. Every
// solve reply carries its 0.828-approximation certificate verdict.
//
// The service is multi-tenant: tenants live on --shards shards (stable hash
// of the tenant id; workers are pinned per shard so tenants on different
// shards never contend), and the global capacity pool (servers * capacity)
// is re-divided across tenants on every tenant_create/update/delete through
// the --fairness policy (docs/SERVICE.md "Cross-tenant fairness").
// --karma-credits sets the opening credit balance minted for tenants
// created without an explicit "credits" field under the karma policy.
//
// --so-strategy routes every solve's super-optimal allocation through the
// chosen implementation (docs/ALGORITHMS.md "Strategy seam"): serial
// reference, bit-identical parallel SoA, or price discovery within
// --so-price-tol of F_hat (default 1e-9; certificates stay valid).
//
// --metrics writes the aa::obs blob (svc/* counters, solve timings, and the
// per-solve certificates) to FILE, or stdout with "-", at exit. --trace-out
// writes the run's merged trace rings as a Chrome trace_event JSON document
// at exit — load it in chrome://tracing or https://ui.perfetto.dev. Either
// flag installs the obs session. Live scraping without waiting for exit
// goes through the `metrics` protocol verb (Prometheus text; see aa_top).

#include <csignal>

#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "alloc/super_optimal.hpp"
#include "io/instance_io.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/session.hpp"
#include "support/args.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace aa;

svc::ServiceConfig config_from_args(const support::Args& args) {
  svc::ServiceConfig config;
  config.num_servers = static_cast<std::size_t>(args.get_int("servers", 2));
  config.capacity =
      static_cast<util::Resource>(args.get_int("capacity", 64));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  config.batch_max = static_cast<std::size_t>(args.get_int("batch-max", 64));
  config.batch_linger_ms = args.get_double("batch-linger-ms", 0.0);
  config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  config.max_queue = static_cast<std::size_t>(args.get_int("max-queue", 4096));
  config.warm.hysteresis = args.get_double("hysteresis", 0.05);
  config.warm.resolve_delta_fraction =
      args.get_double("resolve-fraction", 0.25);
  config.warm.resolve_delta_min =
      static_cast<std::size_t>(args.get_int("resolve-min", 8));
  config.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  const std::string fairness = args.get("fairness", "static_quota");
  const std::optional<svc::FairnessPolicyKind> kind =
      svc::fairness_policy_from_name(fairness);
  if (!kind) {
    throw std::invalid_argument(
        "unknown --fairness policy '" + fairness +
        "' (want static_quota | weighted_max_min | karma)");
  }
  config.fairness = *kind;
  config.karma_opening_credits = args.get_double("karma-credits", 0.0);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const support::Args args(
        argc, argv,
        {"socket", "stdio", "servers", "capacity", "workers", "batch-max",
         "batch-linger-ms", "deadline-ms", "max-queue", "max-line-bytes",
         "hysteresis", "resolve-fraction", "resolve-min", "shards",
         "fairness", "karma-credits", "so-strategy", "so-price-tol",
         "metrics", "trace-out"});
    if (!args.positional().empty()) {
      std::cerr << "usage: aa_serve [--socket PATH] [--stdio 1] "
                   "[--servers M] [--capacity C] [--workers W] "
                   "[--batch-max B] [--batch-linger-ms L] [--deadline-ms D] "
                   "[--max-queue Q] [--max-line-bytes N] [--hysteresis H] "
                   "[--resolve-fraction F] [--resolve-min K] "
                   "[--shards S] "
                   "[--fairness static_quota|weighted_max_min|karma] "
                   "[--karma-credits B] "
                   "[--so-strategy serial|parallel|price] [--so-price-tol T] "
                   "[--metrics FILE|-] [--trace-out FILE]\n";
      return 2;
    }
    // Install the super-optimal strategy before any solver thread starts
    // (the default is read un-synchronized on the hot path).
    alloc::SuperOptimalOptions so_options;
    so_options.strategy = alloc::parse_super_optimal_strategy(
        args.get("so-strategy", "serial"));
    so_options.price_tolerance = args.get_double("so-price-tol", 1e-9);
    alloc::set_default_super_optimal_options(so_options);
    // Belt and braces next to MSG_NOSIGNAL: a client vanishing mid-reply
    // must never kill the server.
    std::signal(SIGPIPE, SIG_IGN);

    const std::string socket_path = args.get("socket", "");
    const bool stdio =
        args.get_int("stdio", 0) != 0 || socket_path.empty();
    const std::size_t max_line_bytes = static_cast<std::size_t>(
        args.get_int("max-line-bytes",
                     static_cast<long long>(svc::kDefaultMaxLineBytes)));

    const std::string metrics_path = args.get("metrics", "");
    const std::string trace_path = args.get("trace-out", "");
    std::unique_ptr<obs::Session> session;
    if (!metrics_path.empty() || !trace_path.empty()) {
      session = std::make_unique<obs::Session>();
    }

    svc::Service service(config_from_args(args));
    service.start();
    if (stdio) {
      svc::serve_stdio(service, std::cin, std::cout, max_line_bytes);
    } else {
      svc::SocketServer server(service, socket_path, max_line_bytes);
      server.run();
    }
    service.stop();

    if (session != nullptr && !metrics_path.empty()) {
      const std::string blob = session->to_json().dump(2) + "\n";
      if (metrics_path == "-") {
        std::cout << blob;
      } else {
        io::write_file(metrics_path, blob);
      }
    }
    if (session != nullptr && !trace_path.empty()) {
      io::write_file(trace_path, obs::chrome_trace_json(*session) + "\n");
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "aa_serve: " << error.what() << "\n";
    return 1;
  }
}
