// End-to-end property test of the paper's headline guarantee
// (Theorems V.16 and VI.1): F >= alpha * F* with alpha = 2(sqrt(2)-1),
// verified against the exhaustive solver on randomized small instances
// across every distribution, server count and capacity in the sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/branch_and_bound.hpp"
#include "aa/exact.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

struct Shape {
  std::size_t num_threads;
  std::size_t num_servers;
  Resource capacity;
};

using Param = std::tuple<support::DistributionKind, Shape, std::uint64_t>;

class ApproxRatioProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] Instance make_instance() const {
    const auto& [kind, shape, seed] = GetParam();
    support::Rng rng(seed * 7919 + 13);
    support::DistributionParams dist;
    dist.kind = kind;
    Instance instance;
    instance.num_servers = shape.num_servers;
    instance.capacity = shape.capacity;
    instance.threads = util::generate_utilities(shape.num_threads,
                                                shape.capacity, dist, rng);
    return instance;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxRatioProperty,
    ::testing::Combine(
        ::testing::Values(support::DistributionKind::kUniform,
                          support::DistributionKind::kNormal,
                          support::DistributionKind::kPowerLaw,
                          support::DistributionKind::kDiscrete),
        ::testing::Values(Shape{5, 2, 20}, Shape{7, 3, 16}, Shape{8, 2, 30},
                          Shape{6, 4, 12}, Shape{3, 2, 25}),
        ::testing::Range<std::uint64_t>(0, 5)));

TEST_P(ApproxRatioProperty, Algorithm2BeatsAlphaTimesOptimal) {
  const Instance instance = make_instance();
  const SolveResult approx = solve_algorithm2(instance);
  const ExactResult exact = solve_exact(instance);
  ASSERT_EQ(check_assignment(instance, approx.assignment), "");
  ASSERT_GE(approx.utility,
            kApproximationRatio * exact.utility - 1e-7 * (1.0 + exact.utility));
  ASSERT_LE(approx.utility, exact.utility + 1e-7 * (1.0 + exact.utility));
}

TEST_P(ApproxRatioProperty, Algorithm1BeatsAlphaTimesOptimal) {
  const Instance instance = make_instance();
  const SolveResult approx = solve_algorithm1(instance);
  const ExactResult exact = solve_exact(instance);
  ASSERT_EQ(check_assignment(instance, approx.assignment), "");
  ASSERT_GE(approx.utility,
            kApproximationRatio * exact.utility - 1e-7 * (1.0 + exact.utility));
  ASSERT_LE(approx.utility, exact.utility + 1e-7 * (1.0 + exact.utility));
}

class ApproxRatioLargerInstances
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRatioLargerInstances,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST_P(ApproxRatioLargerInstances, GuaranteeHoldsAtBranchAndBoundScale) {
  // Extends the Theorem V.16 validation beyond brute-force range using the
  // branch-and-bound solver (aa/branch_and_bound.hpp) as the optimum
  // oracle: n = 13 threads on 3 servers.
  support::Rng rng(31 * GetParam() + 5);
  support::DistributionParams dist;
  dist.kind = static_cast<support::DistributionKind>(GetParam() % 4);
  Instance instance;
  instance.num_servers = 3;
  instance.capacity = 24;
  instance.threads = util::generate_utilities(13, 24, dist, rng);

  const BranchAndBoundResult optimum = solve_branch_and_bound(instance);
  ASSERT_TRUE(optimum.proven_optimal);
  const SolveResult a2 = solve_algorithm2(instance);
  const SolveResult a1 = solve_algorithm1(instance);
  const double tol = 1e-7 * (1.0 + optimum.utility);
  EXPECT_GE(a2.utility, kApproximationRatio * optimum.utility - tol);
  EXPECT_GE(a1.utility, kApproximationRatio * optimum.utility - tol);
  EXPECT_LE(a2.utility, optimum.utility + tol);
}

TEST_P(ApproxRatioProperty, LinearizedBoundHoldsAgainstSuperOptimal) {
  // Lemma V.15: G >= alpha * F_hat (a stronger, certificate-style bound the
  // implementation exposes directly).
  const Instance instance = make_instance();
  const SolveResult approx = solve_algorithm2(instance);
  ASSERT_GE(approx.linearized_utility,
            kApproximationRatio * approx.super_optimal_utility -
                1e-7 * (1.0 + approx.super_optimal_utility));
}

}  // namespace
}  // namespace aa::core
