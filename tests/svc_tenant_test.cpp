// Tests for the multi-tenant service layer (svc/tenant.hpp + the sharded
// Service): tenant CRUD through the protocol verbs, per-tenant isolation of
// thread ids and solves, quota enforcement, the capacity-conservation and
// certificate properties under every fairness policy, and concurrent
// multi-tenant clients across shards (the TSan CI job runs this binary).

#include "svc/tenant.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "svc/service.hpp"

namespace aa::svc {
namespace {

using support::JsonValue;
using support::json_parse;

constexpr const char* kThreadSpec =
    R"("thread": {"type": "power", "scale": 1.0, "beta": 0.5})";

JsonValue ask(Service& service, const std::string& line) {
  return json_parse(service.request(line));
}

JsonValue add_thread(Service& service, const std::string& tenant) {
  return ask(service, std::string(R"({"op": "add_thread", "tenant": ")") +
                          tenant + R"(", )" + kThreadSpec + "}");
}

JsonValue create_tenant(Service& service, const std::string& tenant,
                        const std::string& extra = "") {
  return ask(service, std::string(R"({"op": "tenant_create", "tenant": ")") +
                          tenant + "\"" + extra + "}");
}

TEST(ShardOf, StableAndInRange) {
  // FNV-1a placement is a wire-visible contract (tenant_list reports it);
  // pin a few values so a hash change cannot slip in silently.
  EXPECT_EQ(shard_of("anything", 1), 0u);
  for (const std::size_t shards : {2u, 4u, 7u}) {
    for (const char* id : {"default", "acme", "a", "zz-9"}) {
      const std::size_t shard = shard_of(id, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, shard_of(id, shards)) << "unstable for " << id;
    }
  }
  // Distinct ids spread: with 26 ids over 4 shards every shard is hit.
  std::set<std::size_t> hit;
  for (char c = 'a'; c <= 'z'; ++c) {
    hit.insert(shard_of(std::string(1, c), 4));
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(TenantAdmin, CreateListUpdateDelete) {
  Service service(ServiceConfig{});
  service.start();

  const JsonValue created = create_tenant(
      service, "acme", R"(, "weight": 2.0, "quota": 32, "max_threads": 4)");
  ASSERT_TRUE(created.at("ok").as_bool()) << created.dump();
  EXPECT_EQ(created.at("tenant").as_string(), "acme");
  EXPECT_EQ(created.at("weight").as_number(), 2.0);
  EXPECT_EQ(created.at("quota_units").as_number(), 32.0);
  EXPECT_EQ(created.at("max_threads").as_int(), 4);

  const JsonValue listed = ask(service, R"({"op": "tenant_list"})");
  ASSERT_TRUE(listed.at("ok").as_bool());
  EXPECT_EQ(listed.at("tenant_count").as_int(), 2);
  EXPECT_EQ(listed.at("policy").as_string(), "static_quota");
  const auto& tenants = listed.at("tenants").as_array();
  ASSERT_EQ(tenants.size(), 2u);
  // Ordered map: "acme" < "default".
  EXPECT_EQ(tenants[0].at("tenant").as_string(), "acme");
  EXPECT_EQ(tenants[1].at("tenant").as_string(), "default");
  EXPECT_EQ(tenants[0].at("slice_units").as_number(), 32.0);

  const JsonValue updated = ask(
      service, R"({"op": "tenant_update", "tenant": "acme", "quota": 64})");
  ASSERT_TRUE(updated.at("ok").as_bool());
  EXPECT_EQ(updated.at("quota_units").as_number(), 64.0);

  const JsonValue deleted =
      ask(service, R"({"op": "tenant_delete", "tenant": "acme"})");
  ASSERT_TRUE(deleted.at("ok").as_bool());
  const JsonValue relisted = ask(service, R"({"op": "tenant_list"})");
  EXPECT_EQ(relisted.at("tenant_count").as_int(), 1);

  const JsonValue stats = ask(service, R"({"op": "stats"})");
  EXPECT_EQ(stats.at("tenant_ops").at("creates").as_int(), 1);
  EXPECT_EQ(stats.at("tenant_ops").at("updates").as_int(), 1);
  EXPECT_EQ(stats.at("tenant_ops").at("deletes").as_int(), 1);
  // Startup (default tenant) + one per admin op.
  EXPECT_GE(stats.at("tenant_ops").at("redivides").as_int(), 4);
  service.stop();
}

TEST(TenantAdmin, StableErrorCodes) {
  Service service(ServiceConfig{});
  service.start();

  EXPECT_TRUE(create_tenant(service, "acme").at("ok").as_bool());
  const JsonValue duplicate = create_tenant(service, "acme");
  EXPECT_FALSE(duplicate.at("ok").as_bool());
  EXPECT_EQ(duplicate.at("code").as_string(), error_code::kTenantExists);

  const JsonValue ghost_update =
      ask(service, R"({"op": "tenant_update", "tenant": "ghost", "weight": 2.0})");
  EXPECT_EQ(ghost_update.at("code").as_string(),
            error_code::kTenantNotFound);
  const JsonValue ghost_delete =
      ask(service, R"({"op": "tenant_delete", "tenant": "ghost"})");
  EXPECT_EQ(ghost_delete.at("code").as_string(),
            error_code::kTenantNotFound);
  const JsonValue ghost_solve =
      ask(service, R"({"op": "solve", "tenant": "ghost"})");
  EXPECT_EQ(ghost_solve.at("code").as_string(), error_code::kTenantNotFound);
  const JsonValue ghost_add = add_thread(service, "ghost");
  EXPECT_EQ(ghost_add.at("code").as_string(), error_code::kTenantNotFound);

  // The default tenant is load-bearing (tenant-less clients) — protected.
  const JsonValue no_delete =
      ask(service, R"({"op": "tenant_delete", "tenant": "default"})");
  EXPECT_FALSE(no_delete.at("ok").as_bool());
  EXPECT_EQ(no_delete.at("code").as_string(), error_code::kBadTenant);

  // Malformed ids are rejected at parse time with the same stable code.
  const JsonValue bad_id =
      ask(service, R"({"op": "solve", "tenant": "no spaces"})");
  EXPECT_EQ(bad_id.at("code").as_string(), error_code::kBadTenant);
  service.stop();
}

TEST(TenantAdmin, QuotaExceededOnThreadCap) {
  Service service(ServiceConfig{});
  service.start();
  ASSERT_TRUE(create_tenant(service, "capped", R"(, "max_threads": 2)")
                  .at("ok")
                  .as_bool());
  EXPECT_TRUE(add_thread(service, "capped").at("ok").as_bool());
  EXPECT_TRUE(add_thread(service, "capped").at("ok").as_bool());
  const JsonValue third = add_thread(service, "capped");
  EXPECT_FALSE(third.at("ok").as_bool());
  EXPECT_EQ(third.at("code").as_string(), error_code::kQuotaExceeded);
  // Raising the cap unblocks.
  ASSERT_TRUE(
      ask(service,
          R"({"op": "tenant_update", "tenant": "capped", "max_threads": 3})")
          .at("ok")
          .as_bool());
  EXPECT_TRUE(add_thread(service, "capped").at("ok").as_bool());
  // The default tenant is never capped.
  EXPECT_TRUE(ask(service, std::string(R"({"op": "add_thread", )") +
                               kThreadSpec + "}")
                  .at("ok")
                  .as_bool());
  service.stop();
}

TEST(TenantIsolation, IdsAndSolvesArePerTenant) {
  ServiceConfig config;
  config.shards = 2;
  Service service(config);
  service.start();
  ASSERT_TRUE(create_tenant(service, "a").at("ok").as_bool());
  ASSERT_TRUE(create_tenant(service, "b").at("ok").as_bool());

  // Each tenant's id space starts at 1 — ids are per-InstanceState.
  EXPECT_EQ(add_thread(service, "a").at("id").as_int(), 1);
  EXPECT_EQ(add_thread(service, "a").at("id").as_int(), 2);
  EXPECT_EQ(add_thread(service, "b").at("id").as_int(), 1);

  // Removing b's id 2 fails: a's threads are invisible to b.
  const JsonValue cross =
      ask(service, R"({"op": "remove_thread", "tenant": "b", "id": 2})");
  EXPECT_EQ(cross.at("code").as_string(), error_code::kNotFound);

  // Solves see only the tenant's own threads, and echo the tenant.
  const JsonValue solved_a =
      ask(service, R"({"op": "solve", "tenant": "a"})");
  ASSERT_TRUE(solved_a.at("ok").as_bool());
  EXPECT_EQ(solved_a.at("tenant").as_string(), "a");
  EXPECT_EQ(solved_a.at("threads").as_int(), 2);
  const JsonValue solved_b =
      ask(service, R"({"op": "solve", "tenant": "b"})");
  EXPECT_EQ(solved_b.at("threads").as_int(), 1);
  // Tenant-less requests keep addressing the default tenant.
  const JsonValue solved_default = ask(service, R"({"op": "solve"})");
  EXPECT_EQ(solved_default.at("threads").as_int(), 0);
  EXPECT_EQ(solved_default.find("tenant"), nullptr);
  service.stop();
}

// The acceptance property: under every policy, the sum of per-tenant
// granted slices never exceeds the global pool, and every per-tenant solve
// still certifies >= 0.828 of its (sliced) super-optimal bound.
TEST(TenantFairnessProperty, ConservationAndCertificates) {
  for (const char* policy :
       {"static_quota", "weighted_max_min", "karma"}) {
    ServiceConfig config;
    config.num_servers = 2;
    config.capacity = 64;
    config.shards = 2;
    config.fairness = *fairness_policy_from_name(policy);
    config.karma_opening_credits = 8.0;
    Service service(config);
    service.start();

    const std::string tenants[] = {"hog", "modest", "idle"};
    ASSERT_TRUE(create_tenant(service, "hog", R"(, "weight": 2.0)")
                    .at("ok")
                    .as_bool());
    ASSERT_TRUE(create_tenant(service, "modest").at("ok").as_bool());
    ASSERT_TRUE(create_tenant(service, "idle").at("ok").as_bool());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(add_thread(service, "hog").at("ok").as_bool());
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(add_thread(service, "modest").at("ok").as_bool());
    }
    // Re-divide with the demands now visible (thread adds do not
    // re-divide; churn does).
    ASSERT_TRUE(
        ask(service,
            R"({"op": "tenant_update", "tenant": "idle", "weight": 1.0})")
            .at("ok")
            .as_bool());

    const JsonValue listed = ask(service, R"({"op": "tenant_list"})");
    const double pool = listed.at("pool_units").as_number();
    EXPECT_EQ(pool, 128.0);
    double granted = 0.0;
    for (const JsonValue& tenant : listed.at("tenants").as_array()) {
      granted += tenant.at("slice_units").as_number();
      // The published solve capacity honors the slice.
      EXPECT_LE(tenant.at("solve_capacity").as_number(),
                config.capacity);
      EXPECT_GE(tenant.at("solve_capacity").as_number(), 1.0);
    }
    EXPECT_LE(granted, pool + 1e-9) << "policy " << policy;

    for (const std::string& tenant : tenants) {
      const JsonValue solved =
          ask(service, R"({"op": "solve", "tenant": ")" + tenant + "\"}");
      ASSERT_TRUE(solved.at("ok").as_bool()) << solved.dump();
      EXPECT_TRUE(solved.at("certificate_ok").as_bool())
          << "policy " << policy << " tenant " << tenant << ": "
          << solved.dump();
      EXPECT_GE(solved.at("achieved_ratio").as_number(), 0.828)
          << "policy " << policy << " tenant " << tenant;
    }
    service.stop();
  }
}

TEST(TenantMetrics, PerTenantFamiliesAreExposed) {
  Service service(ServiceConfig{});
  service.start();
  ASSERT_TRUE(create_tenant(service, "acme").at("ok").as_bool());
  ASSERT_TRUE(add_thread(service, "acme").at("ok").as_bool());
  ASSERT_TRUE(
      ask(service, R"({"op": "solve", "tenant": "acme"})").at("ok").as_bool());

  const JsonValue metrics = ask(service, R"({"op": "metrics"})");
  ASSERT_TRUE(metrics.at("ok").as_bool());
  const std::string& body = metrics.at("body").as_string();
  EXPECT_NE(body.find("aa_svc_tenants 2"), std::string::npos) << body;
  EXPECT_NE(body.find("aa_svc_shards 1"), std::string::npos);
  EXPECT_NE(
      body.find("aa_svc_tenant_requests_total{tenant=\"acme\"}"),
      std::string::npos);
  EXPECT_NE(body.find("aa_svc_tenant_requests_total{tenant=\"default\"}"),
            std::string::npos);
  EXPECT_NE(body.find("aa_svc_tenant_threads{tenant=\"acme\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find(
                "aa_svc_tenant_solves_total{tenant=\"acme\",path=\"full\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("aa_svc_tenant_slice_units{tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(body.find("aa_svc_tenant_credits{tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(body.find("aa_svc_tenant_creates_total 1"), std::string::npos);
  service.stop();
}

TEST(TenantDemand, ReadsOffSuperOptimalValue) {
  InstanceState state(2, 64);
  EXPECT_EQ(tenant_demand_units(state), 0.0);
  const auto power = [] {
    return std::make_shared<util::PowerUtility>(1.0, 0.5, 64);
  };
  state.add_thread(power());
  const double one = tenant_demand_units(state);
  EXPECT_GT(one, 0.0);
  EXPECT_LE(one, 128.0);
  for (int i = 0; i < 7; ++i) state.add_thread(power());
  EXPECT_GE(tenant_demand_units(state), one);
}

// Many clients over many tenants on several shards, with tenant churn in
// the background: every reply well-formed, every solve certifies, and the
// books stay consistent. This is the binary the TSan soak runs.
TEST(TenantConcurrency, ShardedClientsWithChurn) {
  ServiceConfig config;
  config.shards = 4;
  config.workers = 4;
  config.batch_max = 16;
  config.batch_linger_ms = 0.1;
  config.fairness = FairnessPolicyKind::kWeightedMaxMin;
  Service service(config);
  service.start();

  constexpr int kTenants = 8;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        create_tenant(service, "t" + std::to_string(t)).at("ok").as_bool());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kTenants; ++c) {
    clients.emplace_back([&service, &failures, c] {
      const std::string tenant = "t" + std::to_string(c);
      for (int i = 0; i < 40; ++i) {
        JsonValue reply;
        if (i % 5 == 4) {
          reply = json_parse(service.request(
              R"({"op": "solve", "tenant": ")" + tenant + "\"}"));
          if (!reply.at("ok").as_bool() ||
              !reply.at("certificate_ok").as_bool()) {
            ++failures;
          }
        } else {
          reply = json_parse(service.request(
              std::string(R"({"op": "add_thread", "tenant": ")") + tenant +
              R"(", )" + kThreadSpec + "}"));
          if (!reply.at("ok").as_bool()) ++failures;
        }
      }
    });
  }
  // Churn: an admin thread creates and deletes disjoint tenants while the
  // clients run, forcing re-divisions under load.
  std::thread churn([&service] {
    for (int round = 0; round < 10; ++round) {
      const std::string name = "churn" + std::to_string(round);
      (void)service.request(R"({"op": "tenant_create", "tenant": ")" + name +
                            "\"}");
      (void)service.request(R"({"op": "tenant_delete", "tenant": ")" + name +
                            "\"}");
    }
  });
  for (std::thread& client : clients) client.join();
  churn.join();
  EXPECT_EQ(failures.load(), 0);

  const JsonValue listed = ask(service, R"({"op": "tenant_list"})");
  EXPECT_EQ(listed.at("tenant_count").as_int(), kTenants + 1);
  double granted = 0.0;
  for (const JsonValue& tenant : listed.at("tenants").as_array()) {
    granted += tenant.at("slice_units").as_number();
  }
  EXPECT_LE(granted, listed.at("pool_units").as_number() + 1e-9);
  service.stop();
}

}  // namespace
}  // namespace aa::svc
