// Tests for PCHIP interpolation and PAV isotonic regression
// (support/interpolate.hpp).

#include "support/interpolate.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace aa::support {
namespace {

TEST(Pchip, PassesThroughKnots) {
  const std::array<double, 4> xs{0.0, 1.0, 3.0, 4.0};
  const std::array<double, 4> ys{0.0, 2.0, 3.0, 3.5};
  const PchipInterpolant f(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(f(xs[i]), ys[i], 1e-12);
  }
}

TEST(Pchip, MonotoneForMonotoneData) {
  const std::array<double, 3> xs{0.0, 500.0, 1000.0};
  const std::array<double, 3> ys{0.0, 0.9, 1.2};
  const PchipInterpolant f(xs, ys);
  double prev = f(0.0);
  for (int k = 1; k <= 1000; ++k) {
    const double cur = f(static_cast<double>(k));
    ASSERT_GE(cur, prev - 1e-12) << "not monotone at " << k;
    prev = cur;
  }
}

TEST(Pchip, ExactOnLinearData) {
  const std::array<double, 3> xs{0.0, 1.0, 2.0};
  const std::array<double, 3> ys{1.0, 3.0, 5.0};
  const PchipInterpolant f(xs, ys);
  for (double x = 0.0; x <= 2.0; x += 0.1) {
    EXPECT_NEAR(f(x), 1.0 + 2.0 * x, 1e-12);
  }
}

TEST(Pchip, ClampsOutsideKnotRange) {
  const std::array<double, 2> xs{0.0, 1.0};
  const std::array<double, 2> ys{2.0, 5.0};
  const PchipInterpolant f(xs, ys);
  EXPECT_DOUBLE_EQ(f(-10.0), 2.0);
  EXPECT_DOUBLE_EQ(f(10.0), 5.0);
}

TEST(Pchip, NoOvershootOnFlatSegment) {
  // PCHIP must not overshoot a plateau (the defining fix over cubic
  // splines).
  const std::array<double, 4> xs{0.0, 1.0, 2.0, 3.0};
  const std::array<double, 4> ys{0.0, 1.0, 1.0, 2.0};
  const PchipInterpolant f(xs, ys);
  for (double x = 1.0; x <= 2.0; x += 0.05) {
    ASSERT_LE(f(x), 1.0 + 1e-12);
    ASSERT_GE(f(x), 1.0 - 1e-12);
  }
}

TEST(Pchip, DerivativeMatchesFiniteDifference) {
  const std::array<double, 3> xs{0.0, 2.0, 5.0};
  const std::array<double, 3> ys{0.0, 3.0, 4.0};
  const PchipInterpolant f(xs, ys);
  const double h = 1e-6;
  for (const double x : {0.5, 1.0, 2.5, 4.0}) {
    const double fd = (f(x + h) - f(x - h)) / (2.0 * h);
    EXPECT_NEAR(f.derivative(x), fd, 1e-5) << "at " << x;
  }
}

TEST(Pchip, TwoKnotCaseIsLinear) {
  const std::array<double, 2> xs{0.0, 4.0};
  const std::array<double, 2> ys{1.0, 9.0};
  const PchipInterpolant f(xs, ys);
  EXPECT_NEAR(f(1.0), 3.0, 1e-12);
  EXPECT_NEAR(f(3.0), 7.0, 1e-12);
}

TEST(Pchip, RejectsMalformedInput) {
  const std::array<double, 2> ys{0.0, 1.0};
  EXPECT_THROW(PchipInterpolant(std::array<double, 1>{0.0},
                                std::array<double, 1>{0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      PchipInterpolant(std::array<double, 2>{1.0, 0.0}, ys),
      std::invalid_argument);
  EXPECT_THROW(
      PchipInterpolant(std::array<double, 2>{0.0, 0.0}, ys),
      std::invalid_argument);
  EXPECT_THROW(
      PchipInterpolant(std::array<double, 3>{0.0, 1.0, 2.0}, ys),
      std::invalid_argument);
}

TEST(Pchip, ConcaveThreePointPaperShape) {
  // The generator's shape: (0,0), (C/2, v), (C, v+w) with w <= v must give a
  // near-concave interpolant; verify the sampled marginals are close to
  // nonincreasing (tiny violations are repaired downstream).
  const std::array<double, 3> xs{0.0, 500.0, 1000.0};
  const std::array<double, 3> ys{0.0, 0.8, 1.1};
  const PchipInterpolant f(xs, ys);
  double prev_marginal = f(1.0) - f(0.0);
  double worst_violation = 0.0;
  for (int k = 2; k <= 1000; ++k) {
    const double m = f(static_cast<double>(k)) - f(static_cast<double>(k - 1));
    worst_violation = std::max(worst_violation, m - prev_marginal);
    prev_marginal = m;
  }
  EXPECT_LE(worst_violation, 1e-6);
}

TEST(Pav, NonincreasingIdentityOnSortedInput) {
  const std::vector<double> in{5.0, 4.0, 3.0, 1.0};
  EXPECT_EQ(pav_nonincreasing(in), in);
}

TEST(Pav, NonincreasingPoolsViolations) {
  const std::vector<double> in{3.0, 1.0, 2.0};
  const auto out = pav_nonincreasing(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 1.5);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
}

TEST(Pav, OutputIsNonincreasing) {
  const std::vector<double> in{1.0, 5.0, 2.0, 8.0, 3.0, 3.0, 0.5};
  const auto out = pav_nonincreasing(in);
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i], out[i - 1] + 1e-12);
  }
}

TEST(Pav, PreservesSum) {
  // PAV is an L2 projection onto the monotone cone; it preserves the mean.
  const std::vector<double> in{1.0, 5.0, 2.0, 8.0, 3.0, 3.0, 0.5};
  const auto out = pav_nonincreasing(in);
  double sum_in = 0.0;
  double sum_out = 0.0;
  for (const double v : in) sum_in += v;
  for (const double v : out) sum_out += v;
  EXPECT_NEAR(sum_in, sum_out, 1e-9);
}

TEST(Pav, NondecreasingMirror) {
  const std::vector<double> in{2.0, 1.0, 3.0};
  const auto out = pav_nondecreasing(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 1.5);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Pav, EmptyAndSingleton) {
  EXPECT_TRUE(pav_nonincreasing(std::vector<double>{}).empty());
  const std::vector<double> one{7.0};
  EXPECT_EQ(pav_nonincreasing(one), one);
}

}  // namespace
}  // namespace aa::support
