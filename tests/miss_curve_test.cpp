// Tests for miss curves and their utility conversion
// (cachesim/miss_curve.hpp).

#include "cachesim/miss_curve.hpp"

#include <gtest/gtest.h>

namespace aa::cachesim {
namespace {

StackDistanceProfile cyclic_profile(std::uint64_t lines, int reps) {
  Trace trace;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::uint64_t line = 0; line < lines; ++line) trace.push_back(line);
  }
  return compute_stack_distances(trace);
}

TEST(MissCurve, GeometryMapsWaysToLines) {
  // Cyclic over 8 lines: with lines_per_way = 4, two ways fit the working
  // set (8 lines) and eliminate all but the cold misses.
  const StackDistanceProfile profile = cyclic_profile(8, 10);
  const CacheGeometry geometry{.total_ways = 4, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  ASSERT_EQ(curve.misses_by_ways.size(), 5u);
  EXPECT_EQ(curve.misses_by_ways[0], 80u);  // No cache: every access misses.
  EXPECT_EQ(curve.misses_by_ways[1], 80u);  // 4 lines < 8: LRU thrash.
  EXPECT_EQ(curve.misses_by_ways[2], 8u);   // 8 lines: only cold misses.
  EXPECT_EQ(curve.misses_by_ways[4], 8u);
}

TEST(MissCurve, MissRatio) {
  const StackDistanceProfile profile = cyclic_profile(8, 10);
  const CacheGeometry geometry{.total_ways = 4, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(0), 1.0);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(2), 0.1);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(100), 0.1);  // Clamped to max ways.
}

TEST(MissCurve, ThroughputIncreasesWithWays) {
  const StackDistanceProfile profile = cyclic_profile(8, 10);
  const CacheGeometry geometry{.total_ways = 4, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  const PerfModel model;
  double prev = curve.throughput(0, model);
  for (std::uint64_t w = 1; w <= 4; ++w) {
    const double cur = curve.throughput(w, model);
    ASSERT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(MissCurve, ThroughputFormula) {
  // 80 accesses, 8 misses at 2 ways, hit_cost 1, penalty 40, ipc 4:
  // cycles = 80 + 320 = 400; throughput = 4 * 80 / 400 = 0.8.
  const StackDistanceProfile profile = cyclic_profile(8, 10);
  const CacheGeometry geometry{.total_ways = 4, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  const PerfModel model;
  EXPECT_NEAR(curve.throughput(2, model), 0.8, 1e-12);
}

TEST(MissCurve, EmptyTraceYieldsZeroThroughput) {
  const StackDistanceProfile profile = compute_stack_distances({});
  const CacheGeometry geometry{.total_ways = 2, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  EXPECT_DOUBLE_EQ(curve.throughput(1, PerfModel{}), 0.0);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(1), 0.0);
}

TEST(MissCurve, RejectsDegenerateGeometry) {
  const StackDistanceProfile profile = cyclic_profile(4, 2);
  EXPECT_THROW(
      (void)build_miss_curve(profile, {.total_ways = 0, .lines_per_way = 4}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)build_miss_curve(profile, {.total_ways = 4, .lines_per_way = 0}),
      std::invalid_argument);
}

TEST(UtilityFromCurve, ProducesValidConcaveUtility) {
  support::Rng rng(10);
  const Trace trace =
      generate_trace(TraceConfig::mixed(32, 256, 2048, 30000), rng);
  const MissCurve curve = build_miss_curve(
      compute_stack_distances(trace),
      {.total_ways = 16, .lines_per_way = 64});
  const util::UtilityPtr utility =
      utility_from_miss_curve(curve, PerfModel{});
  ASSERT_EQ(utility->capacity(), 16);
  EXPECT_TRUE(util::is_valid_on_grid(*utility, 1e-9));
}

TEST(UtilityFromCurve, TracksRawThroughputWithinProjectionGap) {
  // The concave projection may flatten cliffs, but endpoints and monotone
  // envelope must stay close to raw throughput (here the raw curve is
  // already concave-ish, so the gap is small).
  const StackDistanceProfile profile = cyclic_profile(8, 10);
  const CacheGeometry geometry{.total_ways = 4, .lines_per_way = 4};
  const MissCurve curve = build_miss_curve(profile, geometry);
  const PerfModel model;
  const util::UtilityPtr utility = utility_from_miss_curve(curve, model);
  EXPECT_NEAR(utility->value(4.0), curve.throughput(4, model), 1e-9);
  // The projection preserves the total increase (PAV preserves sums).
  EXPECT_NEAR(utility->value(4.0) - utility->value(0.0),
              curve.throughput(4, model) - curve.throughput(0, model), 1e-9);
}

}  // namespace
}  // namespace aa::cachesim
