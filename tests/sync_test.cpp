// Tests for src/support/sync.hpp: the annotated Mutex/MutexLock/CondVar
// wrappers must behave exactly like the standard primitives they wrap
// (the annotations are compile-time only), and the AA_* macros must
// expand to nothing when thread-safety annotations are disabled — the
// wrappers are used on every compiler, the attributes only under Clang.

#include "support/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace {

using aa::support::CondVar;
using aa::support::Mutex;
using aa::support::MutexLock;
using aa::support::PhantomMutex;
using aa::support::ReaderMutexLock;
using aa::support::SharedMutex;

TEST(Mutex, LockExcludesOtherThreads) {
  Mutex mutex;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Held: a second claim from another thread must fail (try_lock on a
  // mutex already held by the same thread is undefined behavior).
  bool second = true;
  std::thread prober([&] { second = mutex.try_lock(); });
  prober.join();
  EXPECT_FALSE(second);
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLock, EarlyUnlockReleasesBeforeScopeEnd) {
  Mutex mutex;
  MutexLock lock(mutex);
  lock.unlock();
  // Released early: the same thread can re-acquire without deadlock, and
  // the destructor must not unlock a mutex it no longer holds.
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CondVar, WakesWaiterOnPredicateChange) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    const MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    observed = ready;
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVar, WaitUntilTimesOut) {
  Mutex mutex;
  CondVar cv;
  const MutexLock lock(mutex);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nothing ever notifies: the wait must come back with cv_status::timeout
  // and the mutex still held.
  EXPECT_EQ(cv.wait_until(mutex, deadline), std::cv_status::timeout);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  constexpr int kWaiters = 4;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      const MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mutex;
  {
    const ReaderMutexLock first(mutex);
    // A second reader may enter while the first holds the shared lock.
    bool second_reader = false;
    std::thread reader([&] {
      const ReaderMutexLock second(mutex);
      second_reader = true;
    });
    reader.join();
    EXPECT_TRUE(second_reader);
  }
  mutex.lock();  // Exclusive after all readers left.
  mutex.unlock();
}

TEST(PhantomMutexTest, AcquireReleaseAreNoOps) {
  // PhantomMutex only exists for the analysis: acquire/release must be
  // callable any number of times with no runtime state.
  PhantomMutex phantom;
  phantom.acquire();
  phantom.release();
  phantom.acquire();
  phantom.release();
}

TEST(Annotations, MacrosExpandToNothingWhenDisabled) {
#if AA_THREAD_SAFETY_ANNOTATIONS_ENABLED
  GTEST_SKIP() << "annotations active (Clang): expansion is the attribute";
#else
  // On non-Clang compilers every AA_* macro must vanish: a variable
  // declared with one is a plain variable.
  int plain AA_GUARDED_BY(dummy) = 7;
  EXPECT_EQ(plain, 7);
#endif
}

}  // namespace
