// Tests for utility-curve fitting from noisy measurements
// (utility/fitting.hpp).

#include "utility/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "aa/refine.hpp"
#include "utility/generator.hpp"

namespace aa::util {
namespace {

TEST(Fit, ExactRecoveryFromNoiselessDenseSamples) {
  const PowerUtility truth(2.0, 0.5, 100);
  std::vector<Sample> samples;
  for (Resource x = 0; x <= 100; x += 5) {
    samples.push_back({static_cast<double>(x),
                       truth.value(static_cast<double>(x))});
  }
  const UtilityPtr fitted = fit_concave_utility(samples, 100);
  for (Resource x = 0; x <= 100; x += 5) {
    EXPECT_NEAR(fitted->value(static_cast<double>(x)),
                truth.value(static_cast<double>(x)), 1e-9);
  }
  EXPECT_TRUE(is_valid_on_grid(*fitted, 1e-9));
}

TEST(Fit, ResultIsAlwaysValidConcaveUtility) {
  support::Rng rng(1);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  for (int trial = 0; trial < 10; ++trial) {
    const UtilityPtr truth = generate_utility(80, dist, rng);
    const auto levels = even_levels(80, 6);
    const auto samples = measure_utility(*truth, levels, 3, 0.1, rng);
    const UtilityPtr fitted = fit_concave_utility(samples, 80);
    ASSERT_TRUE(is_valid_on_grid(*fitted, 1e-7)) << "trial " << trial;
    ASSERT_EQ(fitted->capacity(), 80);
  }
}

TEST(Fit, RecoveryErrorShrinksWithRepeats) {
  // Averaging repeated noisy measurements must reduce sup-norm error.
  const PowerUtility truth(5.0, 0.6, 100);
  const auto levels = even_levels(100, 10);
  auto sup_error = [&](std::size_t repeats, std::uint64_t seed) {
    support::Rng rng(seed);
    const auto samples = measure_utility(truth, levels, repeats, 0.15, rng);
    const UtilityPtr fitted = fit_concave_utility(samples, 100);
    double worst = 0.0;
    for (Resource x = 0; x <= 100; ++x) {
      worst = std::max(worst,
                       std::abs(fitted->value(static_cast<double>(x)) -
                                truth.value(static_cast<double>(x))));
    }
    return worst;
  };
  // Average over a few seeds to avoid a fluke comparison.
  double few = 0.0;
  double many = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    few += sup_error(1, 100 + seed);
    many += sup_error(32, 200 + seed);
  }
  EXPECT_LT(many, few);
}

TEST(Fit, AnchorZeroPinsOrigin) {
  const std::vector<Sample> samples{{50.0, 5.0}, {100.0, 7.0}};
  const UtilityPtr anchored = fit_concave_utility(samples, 100);
  EXPECT_DOUBLE_EQ(anchored->value(0.0), 0.0);

  FitOptions options;
  options.anchor_zero = false;
  const UtilityPtr floating = fit_concave_utility(samples, 100, options);
  EXPECT_DOUBLE_EQ(floating->value(0.0), 5.0);  // Constant extrapolation.
}

TEST(Fit, AveragesDuplicateLevels) {
  const std::vector<Sample> samples{{0.0, 0.0}, {10.0, 4.0}, {10.0, 6.0}};
  const UtilityPtr fitted = fit_concave_utility(samples, 10);
  EXPECT_NEAR(fitted->value(10.0), 5.0, 1e-9);
}

TEST(Fit, Rejections) {
  EXPECT_THROW((void)fit_concave_utility({}, 10), std::invalid_argument);
  const std::vector<Sample> outside{{20.0, 1.0}};
  EXPECT_THROW((void)fit_concave_utility(outside, 10),
               std::invalid_argument);
  const std::vector<Sample> ok{{1.0, 1.0}};
  EXPECT_THROW((void)fit_concave_utility(ok, -1), std::invalid_argument);
}

TEST(MeasureUtility, SampleCountAndNonnegativity) {
  const PowerUtility truth(1.0, 0.5, 50);
  support::Rng rng(3);
  const auto levels = even_levels(50, 5);
  const auto samples = measure_utility(truth, levels, 4, 0.5, rng);
  EXPECT_EQ(samples.size(), levels.size() * 4);
  for (const Sample& s : samples) ASSERT_GE(s.y, 0.0);
}

TEST(MeasureUtility, ZeroNoiseIsExact) {
  const PowerUtility truth(1.0, 0.5, 50);
  support::Rng rng(4);
  const auto samples =
      measure_utility(truth, even_levels(50, 5), 1, 0.0, rng);
  for (const Sample& s : samples) {
    ASSERT_DOUBLE_EQ(s.y, truth.value(s.x));
  }
}

TEST(EvenLevels, CoverageAndUniqueness) {
  const auto levels = even_levels(100, 4);
  EXPECT_EQ(levels, (std::vector<Resource>{25, 50, 75, 100}));
  const auto tiny = even_levels(2, 5);  // Duplicates collapse.
  EXPECT_EQ(tiny, (std::vector<Resource>{1, 2}));
  EXPECT_THROW((void)even_levels(0, 3), std::invalid_argument);
  EXPECT_THROW((void)even_levels(10, 0), std::invalid_argument);
}

TEST(EndToEnd, PlanningOnFittedCurvesStaysNearTrueOptimum) {
  // The Section-VIII story: fit every thread from noisy samples, run AA on
  // the fitted instance, evaluate the resulting assignment on the TRUE
  // utilities, compare against planning with perfect knowledge.
  support::Rng rng(9);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  core::Instance truth;
  truth.num_servers = 3;
  truth.capacity = 60;
  truth.threads = generate_utilities(12, 60, dist, rng);

  core::Instance fitted = truth;
  const auto levels = even_levels(60, 8);
  for (std::size_t i = 0; i < truth.threads.size(); ++i) {
    const auto samples =
        measure_utility(*truth.threads[i], levels, 5, 0.05, rng);
    fitted.threads[i] = fit_concave_utility(samples, 60);
  }

  const core::SolveResult planned_true =
      core::solve_algorithm2_refined(truth);
  const core::SolveResult planned_fitted =
      core::solve_algorithm2_refined(fitted);
  // Evaluate the fitted plan against reality.
  const double realized =
      core::total_utility(truth, planned_fitted.assignment);
  EXPECT_GE(realized, 0.9 * planned_true.utility);
}

}  // namespace
}  // namespace aa::util
