// Benchmark report schema + comparator tests (src/benchkit), plus a smoke
// test of the real aa_bench binary (path baked in via AA_BENCH_BIN): the
// emitted BENCH_*.json must validate against the schema, round-trip through
// support::json, and the --compare gate must fail regressions and honor
// --warn-only.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "benchkit/compare.hpp"
#include "benchkit/report.hpp"
#include "benchkit/runner.hpp"
#include "support/json.hpp"

namespace aa {
namespace {

using benchkit::CaseDelta;
using benchkit::CaseResult;
using benchkit::CaseStatus;
using benchkit::CompareOptions;
using benchkit::CompareResult;
using benchkit::Report;
using support::JsonValue;

CaseResult make_case(const std::string& name, double median_ms,
                     double check = 1.0) {
  CaseResult result;
  result.name = name;
  result.group = name.substr(0, name.find('/'));
  result.repetitions = 10;
  result.median_ms = median_ms;
  result.mean_ms = median_ms;
  result.stddev_ms = 0.01;
  result.min_ms = median_ms * 0.9;
  result.max_ms = median_ms * 1.1;
  result.rel_stderr = 0.01;
  result.check = check;
  JsonValue counters{JsonValue::Object{}};
  counters.set("alg1/solves", 1);
  result.counters = std::move(counters);
  return result;
}

Report make_report(std::vector<CaseResult> cases) {
  Report report;
  report.host = "testhost";
  report.date_utc = "2026-08-07";
  report.git_sha = "abc123def456";
  report.compiler = "testc++ 1.0";
  report.build_type = "Release";
  report.suite = "quick";
  report.seed = 42;
  report.cases = std::move(cases);
  return report;
}

const CaseDelta& delta_named(const CompareResult& result,
                             const std::string& name) {
  for (const CaseDelta& delta : result.deltas) {
    if (delta.name == name) return delta;
  }
  ADD_FAILURE() << "no delta named " << name;
  static const CaseDelta kEmpty;
  return kEmpty;
}

TEST(BenchReport, RoundTripsThroughJson) {
  const Report report =
      make_report({make_case("alg1/solve/n64", 0.5, 123.25),
                   make_case("alg2/solve/n64", 0.25, 123.25)});
  const std::string text = benchkit::report_to_json(report).dump(2);
  const Report back = benchkit::report_from_json(support::json_parse(text));

  EXPECT_EQ(back.schema_version, benchkit::kSchemaVersion);
  EXPECT_EQ(back.host, report.host);
  EXPECT_EQ(back.date_utc, report.date_utc);
  EXPECT_EQ(back.git_sha, report.git_sha);
  EXPECT_EQ(back.compiler, report.compiler);
  EXPECT_EQ(back.build_type, report.build_type);
  EXPECT_EQ(back.suite, report.suite);
  EXPECT_EQ(back.seed, report.seed);
  ASSERT_EQ(back.cases.size(), 2u);
  EXPECT_EQ(back.cases[0].name, "alg1/solve/n64");
  EXPECT_EQ(back.cases[0].group, "alg1");
  EXPECT_EQ(back.cases[0].repetitions, 10u);
  EXPECT_DOUBLE_EQ(back.cases[0].median_ms, 0.5);
  EXPECT_DOUBLE_EQ(back.cases[0].check, 123.25);
  EXPECT_EQ(back.cases[0].counters.at("alg1/solves").as_int(), 1);
}

TEST(BenchReport, ValidateCatchesStructuralProblems) {
  const Report report = make_report({make_case("alg1/solve/n64", 0.5)});
  JsonValue good = benchkit::report_to_json(report);
  EXPECT_EQ(benchkit::validate_report_json(good), "");

  EXPECT_EQ(benchkit::validate_report_json(JsonValue("nope")),
            "report: not an object");

  {
    JsonValue json = good;
    json.set("schema_version", benchkit::kSchemaVersion + 1);
    EXPECT_NE(benchkit::validate_report_json(json).find(
                  "unsupported schema_version"),
              std::string::npos);
  }
  {
    JsonValue::Object object;
    for (const auto& [key, value] : good.as_object()) {
      if (key != "host") object.emplace_back(key, value);
    }
    EXPECT_EQ(benchkit::validate_report_json(JsonValue(std::move(object))),
              "report: missing field 'host'");
  }
  {
    JsonValue json = good;
    json.set("seed", "not-a-number");
    EXPECT_EQ(benchkit::validate_report_json(json),
              "report: field 'seed' is not a number");
  }
  {
    Report broken = make_report({make_case("alg1/solve/n64", 0.5),
                                 make_case("alg1/solve/n64", 0.7)});
    EXPECT_NE(benchkit::validate_report_json(benchkit::report_to_json(broken))
                  .find("duplicate case name"),
              std::string::npos);
  }
  {
    Report broken = make_report({make_case("alg1/solve/n64", 0.5)});
    broken.cases[0].repetitions = 0;
    EXPECT_EQ(benchkit::validate_report_json(benchkit::report_to_json(broken)),
              "cases[0]: field 'repetitions' must be >= 1");
  }

  EXPECT_THROW(static_cast<void>(
                   benchkit::report_from_json(JsonValue(JsonValue::Object{}))),
               std::runtime_error);
}

TEST(BenchCompare, ClassifiesWithinAndBeyondThreshold) {
  const Report baseline = make_report({make_case("a/x", 1.0),
                                       make_case("b/x", 1.0),
                                       make_case("c/x", 1.0)});
  const Report current = make_report({make_case("a/x", 1.05),
                                      make_case("b/x", 1.2),
                                      make_case("c/x", 0.5)});
  const CompareResult result = benchkit::compare_reports(baseline, current);

  EXPECT_EQ(delta_named(result, "a/x").status, CaseStatus::kOk);
  EXPECT_EQ(delta_named(result, "b/x").status, CaseStatus::kRegressed);
  EXPECT_EQ(delta_named(result, "c/x").status, CaseStatus::kImproved);
  EXPECT_EQ(result.regressions, 1u);
  EXPECT_EQ(result.improvements, 1u);
  EXPECT_FALSE(result.ok());

  const std::string table = benchkit::format_compare(result);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
}

TEST(BenchCompare, ExactlyAtThresholdPasses) {
  // The gate is strictly greater than 1 + threshold: a case sitting exactly
  // on the boundary must NOT count as a regression.
  const Report baseline = make_report({make_case("a/x", 1.0)});
  const Report current = make_report({make_case("a/x", 1.0 + 0.1)});
  const CompareResult result = benchkit::compare_reports(baseline, current);
  EXPECT_EQ(delta_named(result, "a/x").status, CaseStatus::kOk);
  EXPECT_TRUE(result.ok());
}

TEST(BenchCompare, MissingAndRenamedCases) {
  const Report baseline = make_report({make_case("a/x", 1.0),
                                       make_case("old/name", 1.0)});
  const Report current = make_report({make_case("a/x", 1.0),
                                      make_case("new/name", 1.0)});
  {
    const CompareResult result = benchkit::compare_reports(baseline, current);
    EXPECT_EQ(delta_named(result, "old/name").status,
              CaseStatus::kMissingInCurrent);
    EXPECT_EQ(delta_named(result, "new/name").status,
              CaseStatus::kNewInCurrent);
    EXPECT_TRUE(result.ok());  // Informational by default.
  }
  {
    CompareOptions options;
    options.require_all = true;
    const CompareResult result =
        benchkit::compare_reports(baseline, current, options);
    EXPECT_EQ(result.regressions, 1u);  // The renamed-away baseline case.
    EXPECT_FALSE(result.ok());
  }
}

TEST(BenchCompare, ZeroBaselineWarnsWithoutFailing) {
  const Report baseline = make_report({make_case("a/x", 0.0)});
  const Report current = make_report({make_case("a/x", 5.0)});
  const CompareResult result = benchkit::compare_reports(baseline, current);
  EXPECT_EQ(delta_named(result, "a/x").status, CaseStatus::kZeroBaseline);
  EXPECT_DOUBLE_EQ(delta_named(result, "a/x").ratio, 0.0);
  EXPECT_TRUE(result.ok());
}

TEST(BenchCompare, CheckMismatchFailsEvenWhenFast) {
  const Report baseline = make_report({make_case("a/x", 1.0, 10.0)});
  const Report current = make_report({make_case("a/x", 0.5, 11.0)});
  const CompareResult result = benchkit::compare_reports(baseline, current);
  EXPECT_FALSE(delta_named(result, "a/x").check_matches);
  EXPECT_EQ(result.check_mismatches, 1u);
  EXPECT_FALSE(result.ok());
}

TEST(BenchRunner, ConvergesAndSnapshotsCounters) {
  benchkit::RunnerOptions options;
  options.min_reps = 3;
  options.max_reps = 8;
  options.warmup_reps = 1;
  int calls = 0;
  const CaseResult result = benchkit::run_case(
      "unit/body", "unit",
      [&calls] {
        ++calls;
        return 7.5;
      },
      options);
  EXPECT_EQ(result.name, "unit/body");
  EXPECT_GE(result.repetitions, options.min_reps);
  EXPECT_LE(result.repetitions, options.max_reps);
  // warmup + timed reps + one profiled pass.
  EXPECT_EQ(static_cast<std::size_t>(calls), result.repetitions + 2);
  EXPECT_DOUBLE_EQ(result.check, 7.5);
  EXPECT_GE(result.median_ms, 0.0);
  EXPECT_TRUE(result.counters.is_object());
}

// -- aa_bench binary ---------------------------------------------------------

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, read);
  }
  const int status = ::pclose(pipe);
  result.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

constexpr const char* kBench = AA_BENCH_BIN;

TEST(AaBenchBinary, ListsSuiteCases) {
  const CommandResult result =
      run_command(std::string(kBench) + " --list 1 2>/dev/null");
  ASSERT_EQ(result.status, 0);
  std::size_t lines = 0;
  for (const char ch : result.output) lines += ch == '\n' ? 1 : 0;
  EXPECT_GE(lines, 8u);
  EXPECT_NE(result.output.find("alg1/solve/"), std::string::npos);
  EXPECT_NE(result.output.find("alg1_reference/solve/"), std::string::npos);
}

TEST(AaBenchBinary, EmitsValidReportAndComparesIt) {
  const std::string out = ::testing::TempDir() + "aa_bench_smoke.json";
  const CommandResult run = run_command(
      std::string(kBench) +
      " --suite quick --filter alg2/solve/n64 --min-reps 2 --max-reps 3"
      " --out " + out + " 2>/dev/null");
  ASSERT_EQ(run.status, 0) << run.output;

  std::ifstream in(out);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  const JsonValue json = support::json_parse(text);
  EXPECT_EQ(benchkit::validate_report_json(json), "");
  const Report report = benchkit::report_from_json(json);
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_EQ(report.cases[0].name, "alg2/solve/n64_m8_c1000");
  EXPECT_GT(report.cases[0].check, 0.0);
  // The profiled pass ran exactly one alg2 solve under the session.
  EXPECT_EQ(report.cases[0].counters.at("alg2/solves").as_int(), 1);

  // Self-compare: identical medians are never a regression.
  const CommandResult same = run_command(
      std::string(kBench) + " --compare " + out + " " + out + " 2>/dev/null");
  EXPECT_EQ(same.status, 0) << same.output;

  // Doctored baseline with halved medians: current regresses, --warn-only
  // downgrades the failure to exit 0.
  Report doctored = report;
  doctored.cases[0].median_ms = report.cases[0].median_ms / 4.0;
  const std::string doctored_path =
      ::testing::TempDir() + "aa_bench_doctored.json";
  {
    std::ofstream file(doctored_path);
    file << benchkit::report_to_json(doctored).dump(2) << "\n";
  }
  const CommandResult regressed = run_command(
      std::string(kBench) + " --compare " + doctored_path + " " + out +
      " 2>/dev/null");
  EXPECT_EQ(regressed.status, 1) << regressed.output;
  EXPECT_NE(regressed.output.find("REGRESSED"), std::string::npos);
  const CommandResult warned = run_command(
      std::string(kBench) + " --compare " + doctored_path + " " + out +
      " --warn-only 1 2>/dev/null");
  EXPECT_EQ(warned.status, 0) << warned.output;

  // Unreadable baseline path is a usage/input error, not a regression.
  const CommandResult missing = run_command(
      std::string(kBench) + " --compare /nonexistent/base.json " + out +
      " 2>/dev/null");
  EXPECT_EQ(missing.status, 2);
}

}  // namespace
}  // namespace aa
