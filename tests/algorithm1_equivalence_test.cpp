// Differential tests pinning the incremental Algorithm 1
// (aa/algorithm1.cpp) to the literal-pseudocode reference implementation:
// bit-identical server and allocation vectors — not merely equal utility —
// across all four utility distributions, edge shapes (n < m, n = m,
// n >> m), ties in the linearized peaks and marginal gains, and
// capacity-starved instances that exercise the unfull and zero-value
// branches. This is what licenses shipping the O(n log n + (n + m) m)
// implementation as a drop-in replacement for the O(m n^2) scan
// (docs/ALGORITHMS.md, docs/BENCHMARKS.md).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "aa/algorithm1.hpp"
#include "aa/problem.hpp"
#include "alloc/super_optimal.hpp"
#include "sim/workload.hpp"
#include "support/distributions.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/linearized.hpp"

namespace aa {
namespace {

/// Runs both implementations on one instance and asserts bit-identical
/// output (vector<double> equality is exact element-wise comparison).
void expect_equivalent(const core::Instance& instance) {
  const alloc::SuperOptimalResult so = alloc::super_optimal(
      instance.threads, instance.num_servers, instance.capacity);
  const std::vector<util::Linearized> linearized =
      util::linearize(instance.threads, so.c_hat);

  const core::Assignment fast = core::assign_algorithm1(instance, linearized);
  const core::Assignment reference =
      core::assign_algorithm1_reference(instance, linearized);

  ASSERT_EQ(fast.server.size(), reference.server.size());
  EXPECT_EQ(fast.server, reference.server);
  EXPECT_EQ(fast.alloc, reference.alloc);
  EXPECT_EQ(core::total_utility(instance, fast),
            core::total_utility(instance, reference));
}

const support::DistributionKind kKinds[] = {
    support::DistributionKind::kUniform,
    support::DistributionKind::kNormal,
    support::DistributionKind::kPowerLaw,
    support::DistributionKind::kDiscrete,
};

const char* kind_name(support::DistributionKind kind) {
  switch (kind) {
    case support::DistributionKind::kUniform: return "uniform";
    case support::DistributionKind::kNormal: return "normal";
    case support::DistributionKind::kPowerLaw: return "powerlaw";
    case support::DistributionKind::kDiscrete: return "discrete";
  }
  return "?";
}

TEST(Algorithm1Equivalence, AllDistributionsAndShapes) {
  // beta = n / m spans n < m (0.25), n = m (1.0), and n >> m (3.0).
  const double betas[] = {0.25, 1.0, 3.0};
  const std::size_t server_counts[] = {1, 2, 8};
  for (const support::DistributionKind kind : kKinds) {
    for (const std::size_t m : server_counts) {
      for (const double beta : betas) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          SCOPED_TRACE(std::string(kind_name(kind)) + " m=" +
                       std::to_string(m) + " beta=" + std::to_string(beta) +
                       " seed=" + std::to_string(seed));
          sim::WorkloadConfig config;
          config.dist.kind = kind;
          config.num_servers = m;
          config.capacity = 200;
          config.beta = beta;
          support::Rng rng = support::Rng::child(seed, 77);
          const core::Instance instance = sim::generate_instance(config, rng);
          if (instance.num_threads() == 0) continue;
          expect_equivalent(instance);
        }
      }
    }
  }
}

TEST(Algorithm1Equivalence, TiedPeaksAndMarginalGains) {
  // Every thread shares one utility function: all peaks, caps, and marginal
  // gains tie exactly, so both implementations must replay the same
  // first-in-scan-order tie-breaks to agree.
  support::DistributionParams dist;
  support::Rng rng(99);
  const util::UtilityPtr shared = util::generate_utility(100, dist, rng);
  for (const std::size_t n : {3UL, 8UL, 17UL}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    core::Instance instance;
    instance.num_servers = 4;
    instance.capacity = 100;
    instance.threads.assign(n, shared);
    expect_equivalent(instance);
  }
}

TEST(Algorithm1Equivalence, CapacityStarvedUnfullRounds) {
  // Tiny servers and many threads: the super-optimal allocation zeroes most
  // threads, the greedy runs out of full-eligible candidates, and the run
  // ends in unfull rounds with zero marginal value — the reference's
  // degenerate first-pair behavior that the incremental version models with
  // its zero_mode shortcut.
  support::DistributionParams dist;
  support::Rng rng(7);
  core::Instance instance;
  instance.num_servers = 2;
  instance.capacity = 4;
  instance.threads = util::generate_utilities(40, 4, dist, rng);
  expect_equivalent(instance);
}

TEST(Algorithm1Equivalence, SingleServerAndSingleThread) {
  support::DistributionParams dist;
  support::Rng rng(13);
  {
    core::Instance instance;
    instance.num_servers = 1;
    instance.capacity = 50;
    instance.threads = util::generate_utilities(1, 50, dist, rng);
    expect_equivalent(instance);
  }
  {
    core::Instance instance;
    instance.num_servers = 6;
    instance.capacity = 50;
    instance.threads = util::generate_utilities(1, 50, dist, rng);
    expect_equivalent(instance);
  }
}

}  // namespace
}  // namespace aa
