// Tests for per-thread trace rings (src/obs/trace_ring.hpp), the session's
// ring registry and merged-trace snapshot, the Chrome trace_event exporter
// (src/obs/chrome_trace.hpp), and the Prometheus text-exposition helpers
// (src/obs/prometheus.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/prometheus.hpp"
#include "obs/session.hpp"
#include "obs/trace_ring.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace aa::obs {
namespace {

TEST(TraceRing, StampsTidAndCountsDropsWhenFull) {
  TraceRing ring(7, 3);
  for (int i = 0; i < 5; ++i) {
    ring.push({TraceEvent::Kind::kInstant, "e", 0, static_cast<double>(i)});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const TraceEvent& event : events) EXPECT_EQ(event.tid, 7);
  // Drop-newest: the front of the trace is preserved.
  EXPECT_DOUBLE_EQ(events.front().at_ms, 0.0);
  EXPECT_DOUBLE_EQ(events.back().at_ms, 2.0);
}

TEST(Session, EachRecordingThreadGetsItsOwnRing) {
  Session session;
  support::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  support::parallel_for(pool, 0, kTasks, [&](std::size_t) {
    const ScopedPhase phase("work");
  });
  const std::vector<TraceRingInfo> rings = session.trace_rings();
  // The pool has 4 workers; each recording thread registered exactly one
  // ring (the main thread recorded nothing, so at most 4 appear).
  ASSERT_GE(rings.size(), 1u);
  ASSERT_LE(rings.size(), 4u);
  std::set<int> tids;
  std::size_t recorded = 0;
  for (const TraceRingInfo& info : rings) {
    tids.insert(info.tid);
    recorded += info.recorded;
    EXPECT_EQ(info.dropped, 0);
  }
  EXPECT_EQ(tids.size(), rings.size());  // Ring ordinals are distinct.
  EXPECT_EQ(recorded, 2 * kTasks);       // One enter + one exit per task.

  // The merged trace interleaves all rings in timestamp order.
  const std::vector<TraceEvent> trace = session.trace();
  ASSERT_EQ(trace.size(), 2 * kTasks);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].at_ms, trace[i].at_ms) << "unsorted at " << i;
  }
}

TEST(Session, RingDropsAggregateIntoTraceDroppedCounter) {
  Session session;
  const std::size_t overflow = Session::kMaxTraceEvents + 25;
  for (std::size_t i = 0; i < overflow; ++i) {
    session.add_trace({TraceEvent::Kind::kInstant, "e", 0, 0.0});
  }
  const std::vector<TraceRingInfo> rings = session.trace_rings();
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].recorded, Session::kMaxTraceEvents);
  EXPECT_EQ(rings[0].dropped, 25);
  EXPECT_EQ(session.metrics().counter("obs/trace_dropped"), 25);
}

TEST(Session, CleanRunsDoNotMaterializeTheDropCounter) {
  // determinism_golden_test pins the counters blob for clean runs; a zero
  // obs/trace_dropped entry must therefore never appear.
  Session session;
  session.add_trace({TraceEvent::Kind::kInstant, "e", 0, 0.0});
  const Metrics metrics = session.metrics();
  EXPECT_EQ(metrics.counters_json().find("obs/trace_dropped"), nullptr);
}

TEST(Session, InstantAndSpanEndingNowRecord) {
  // Note the merged trace is sorted by *start* time, so a span whose
  // backdated start clamps to the session epoch can sort ahead of events
  // recorded before it; assert contents, not positions.
  Session session;
  instant("svc/path_warm");
  span_ending_now("svc/queue_wait", 1.5);
  span_ending_now("svc/queue_wait", -3.0);  // Clamped to zero duration.
  const std::vector<TraceEvent> trace = session.trace();
  ASSERT_EQ(trace.size(), 3u);
  std::size_t instants = 0;
  std::vector<double> spans;
  for (const TraceEvent& event : trace) {
    EXPECT_GE(event.at_ms, 0.0);  // Starts never precede the session.
    if (event.kind == TraceEvent::Kind::kInstant) {
      ++instants;
      EXPECT_EQ(event.name, "svc/path_warm");
    } else {
      EXPECT_EQ(event.kind, TraceEvent::Kind::kComplete);
      EXPECT_EQ(event.name, "svc/queue_wait");
      spans.push_back(event.wall_ms);
    }
  }
  EXPECT_EQ(instants, 1u);
  std::sort(spans.begin(), spans.end());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0], 0.0);  // The negative duration clamped.
  EXPECT_DOUBLE_EQ(spans[1], 1.5);
}

TEST(ChromeTrace, ExportsLoadableTraceEventDocument) {
  Session session;
  {
    const ScopedPhase outer("solve");
    instant("svc/path_full");
    span_ending_now("svc/queue_wait", 0.25);
  }
  const support::JsonValue doc = support::json_parse(
      chrome_trace_json(session));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  // thread_name metadata + B/E for the phase + i + X.
  ASSERT_EQ(events.size(), 5u);

  std::size_t metadata = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t instants = 0;
  std::size_t completes = 0;
  double last_ts = -1.0;
  for (const auto& event : events) {
    const std::string ph = event.at("ph").as_string();
    EXPECT_EQ(event.at("pid").as_int(), 1);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.at("name").as_string(), "thread_name");
      EXPECT_EQ(event.at("args").at("name").as_string(), "ring-0");
      continue;
    }
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, last_ts);  // Non-metadata events stay in timestamp order.
    last_ts = ts;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") {
      ++instants;
      EXPECT_EQ(event.at("s").as_string(), "t");
    }
    if (ph == "X") {
      ++completes;
      // ts/dur are microseconds: 0.25 ms span -> 250 us.
      EXPECT_NEAR(event.at("dur").as_number(), 250.0, 1e-6);
    }
  }
  EXPECT_EQ(metadata, 1u);
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(completes, 1u);
}

TEST(Prometheus, NameSanitizesToLegalCharset) {
  EXPECT_EQ(prometheus_name("svc/queue_depth"), "svc_queue_depth");
  EXPECT_EQ(prometheus_name("alg2/solve.refined"), "alg2_solve_refined");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("already_fine:ok"), "already_fine:ok");
}

TEST(Prometheus, ValueRendersRoundTripDecimalAndInf) {
  EXPECT_EQ(prometheus_value(1.0), "1");
  EXPECT_EQ(prometheus_value(0.25), "0.25");
  EXPECT_EQ(prometheus_value(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(prometheus_value(-std::numeric_limits<double>::infinity()),
            "-Inf");
}

TEST(Prometheus, HistogramFamilyIsCumulativeWithInfBucket) {
  Histogram h;
  h.sample(1.0);
  h.sample(1.0);
  h.sample(100.0);
  std::string out;
  prometheus_histogram(out, "aa_lat_ms", h);
  EXPECT_NE(out.find("# TYPE aa_lat_ms histogram\n"), std::string::npos);
  EXPECT_NE(out.find("aa_lat_ms_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("aa_lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("aa_lat_ms_sum 102\n"), std::string::npos);
  EXPECT_NE(out.find("aa_lat_ms_count 3\n"), std::string::npos);

  // Bucket counts must be non-decreasing in boundary order and the +Inf
  // bucket must equal _count (what aa_top's validator enforces too).
  std::int64_t previous = -1;
  std::size_t pos = 0;
  while ((pos = out.find("_bucket{le=", pos)) != std::string::npos) {
    const std::size_t space = out.find("} ", pos);
    const std::size_t eol = out.find('\n', space);
    const std::int64_t cumulative =
        std::stoll(out.substr(space + 2, eol - space - 2));
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    pos = eol;
  }
  EXPECT_EQ(previous, 3);
}

TEST(Prometheus, SummaryFamilyEmitsQuantileLabels) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.sample(2.0);
  std::string out;
  prometheus_summary(out, "aa_lat_quantiles_ms", h);
  EXPECT_NE(out.find("# TYPE aa_lat_quantiles_ms summary\n"),
            std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    const std::string line =
        std::string("aa_lat_quantiles_ms{quantile=\"") + q + "\"} 2\n";
    EXPECT_NE(out.find(line), std::string::npos) << line;
  }
  EXPECT_NE(out.find("aa_lat_quantiles_ms_count 100\n"), std::string::npos);
}

}  // namespace
}  // namespace aa::obs
