// Tests for the multi-resource extension (aa/multi_resource.hpp).

#include "aa/multi_resource.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

MultiInstance generated_instance(std::size_t n, std::size_t m,
                                 std::vector<Resource> capacities,
                                 std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  MultiInstance instance;
  instance.num_servers = m;
  instance.capacities = std::move(capacities);
  for (std::size_t i = 0; i < n; ++i) {
    MultiUtility bundle;
    for (const Resource capacity : instance.capacities) {
      bundle.parts.push_back(util::generate_utility(capacity, dist, rng));
    }
    instance.threads.push_back(std::move(bundle));
  }
  return instance;
}

TEST(MultiInstance, ValidationCatchesShapeErrors) {
  MultiInstance empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  MultiInstance no_types;
  no_types.num_servers = 1;
  EXPECT_THROW(no_types.validate(), std::invalid_argument);

  MultiInstance wrong_arity = generated_instance(2, 2, {10, 20}, 1);
  wrong_arity.threads[0].parts.pop_back();
  EXPECT_THROW(wrong_arity.validate(), std::invalid_argument);

  MultiInstance undersized = generated_instance(1, 1, {10, 20}, 2);
  undersized.threads[0].parts[1] =
      std::make_shared<PowerUtility>(1.0, 0.5, 5);
  EXPECT_THROW(undersized.validate(), std::invalid_argument);
}

TEST(MultiUtilityEval, SumsAcrossTypes) {
  MultiInstance instance;
  instance.num_servers = 1;
  instance.capacities = {10, 10};
  MultiUtility bundle;
  bundle.parts = {std::make_shared<CappedLinearUtility>(2.0, 10.0, 10),
                  std::make_shared<CappedLinearUtility>(3.0, 10.0, 10)};
  instance.threads.push_back(bundle);

  MultiAssignment a;
  a.server = {0};
  a.alloc = {{4.0, 2.0}};
  EXPECT_DOUBLE_EQ(total_utility(instance, a), 8.0 + 6.0);
}

TEST(MultiCheck, DetectsPerTypeOverload) {
  const MultiInstance instance = generated_instance(2, 1, {10, 20}, 3);
  MultiAssignment a;
  a.server = {0, 0};
  a.alloc = {{6.0, 10.0}, {6.0, 10.0}};  // Type 0 overloaded (12 > 10).
  EXPECT_NE(check_assignment(instance, a).find("overloaded"),
            std::string::npos);
  a.alloc = {{5.0, 10.0}, {5.0, 10.0}};
  EXPECT_TRUE(check_assignment(instance, a).empty());
}

TEST(MultiAlgorithm2, ValidAndBoundedOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const MultiInstance instance =
        generated_instance(14, 3, {40, 25}, 100 + seed);
    const MultiSolveResult result = solve_algorithm2_multi(instance);
    ASSERT_EQ(check_assignment(instance, result.assignment), "");
    ASSERT_GT(result.utility, 0.0);
    ASSERT_LE(result.utility, result.super_optimal_utility + 1e-9);
  }
}

TEST(MultiAlgorithm2, SingleTypeReducesToNearSingleResourceQuality) {
  // With one resource type the pipeline mirrors the single-resource
  // algorithm: quality against the pooled bound should be high.
  const MultiInstance instance = generated_instance(16, 4, {50}, 9);
  const MultiSolveResult result = solve_algorithm2_multi(instance);
  EXPECT_GE(result.utility, 0.9 * result.super_optimal_utility);
}

TEST(MultiAlgorithm2, NearOptimalOnSmallInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const MultiInstance instance =
        generated_instance(6, 2, {12, 18}, 200 + seed);
    const MultiSolveResult result = solve_algorithm2_multi(instance);
    const double exact = solve_exact_multi(instance);
    ASSERT_LE(result.utility, exact + 1e-7 * (1.0 + exact));
    ASSERT_GE(result.utility, 0.85 * exact) << "seed " << seed;
  }
}

TEST(MultiAlgorithm2, BeatsRoundRobinOnAverage) {
  double algorithm_sum = 0.0;
  double round_robin_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const MultiInstance instance =
        generated_instance(18, 3, {30, 30}, 300 + seed);
    algorithm_sum += solve_algorithm2_multi(instance).utility;
    round_robin_sum += solve_round_robin_multi(instance).utility;
  }
  EXPECT_GE(algorithm_sum, round_robin_sum);
}

TEST(MultiRoundRobin, PlacementIsRoundRobinWithExactAllocations) {
  const MultiInstance instance = generated_instance(5, 2, {20, 10}, 11);
  const MultiSolveResult result = solve_round_robin_multi(instance);
  ASSERT_EQ(check_assignment(instance, result.assignment), "");
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.assignment.server[i], i % 2);
  }
}

TEST(MultiExact, RefusesOversizedSearch) {
  const MultiInstance instance = generated_instance(11, 2, {10}, 12);
  EXPECT_THROW((void)solve_exact_multi(instance), std::invalid_argument);
}

TEST(MultiExact, EmptyInstanceIsZero) {
  MultiInstance instance;
  instance.num_servers = 2;
  instance.capacities = {10};
  EXPECT_DOUBLE_EQ(solve_exact_multi(instance), 0.0);
}

TEST(MultiAlgorithm2, SkewedTypeDemandsSpreadAcrossServers) {
  // Two thread archetypes: type-0-hungry and type-1-hungry; the algorithm
  // should mix archetypes per server rather than pile one archetype
  // together. Validate via utility versus exact.
  MultiInstance instance;
  instance.num_servers = 2;
  instance.capacities = {10, 10};
  for (int k = 0; k < 2; ++k) {
    MultiUtility cpu_hungry;
    cpu_hungry.parts = {std::make_shared<CappedLinearUtility>(1.0, 10.0, 10),
                        std::make_shared<CappedLinearUtility>(0.1, 2.0, 10)};
    MultiUtility mem_hungry;
    mem_hungry.parts = {std::make_shared<CappedLinearUtility>(0.1, 2.0, 10),
                        std::make_shared<CappedLinearUtility>(1.0, 10.0, 10)};
    instance.threads.push_back(std::move(cpu_hungry));
    instance.threads.push_back(std::move(mem_hungry));
  }
  const MultiSolveResult result = solve_algorithm2_multi(instance);
  const double exact = solve_exact_multi(instance);
  EXPECT_GE(result.utility, 0.9 * exact);
}

}  // namespace
}  // namespace aa::core
