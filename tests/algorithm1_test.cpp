// Tests for Algorithm 1 (aa/algorithm1.hpp): same guarantees as Algorithm 2
// via a different greedy, plus the Theorem V.17 tightness behaviour.

#include "aa/algorithm1.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/algorithm2.hpp"
#include "aa/exact.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            support::DistributionKind kind,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = kind;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(Algorithm1, AssignmentIsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(
        17, 3, 90, support::DistributionKind::kUniform, seed);
    const SolveResult result = solve_algorithm1(instance);
    ASSERT_EQ(check_assignment(instance, result.assignment), "");
  }
}

TEST(Algorithm1, LemmaV15GuaranteeOnLinearizedObjective) {
  for (const auto kind :
       {support::DistributionKind::kUniform,
        support::DistributionKind::kPowerLaw,
        support::DistributionKind::kDiscrete}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Instance instance =
          generated_instance(6 + seed * 4, 3, 50, kind, 300 + seed);
      const SolveResult result = solve_algorithm1(instance);
      ASSERT_GE(result.linearized_utility,
                kApproximationRatio * result.super_optimal_utility - 1e-7)
          << "kind " << static_cast<int>(kind) << " seed " << seed;
    }
  }
}

TEST(Algorithm1, SandwichFGAndSuperOptimal) {
  const Instance instance = generated_instance(
      20, 4, 70, support::DistributionKind::kNormal, 5);
  const SolveResult result = solve_algorithm1(instance);
  EXPECT_GE(result.utility, result.linearized_utility - 1e-9);
  EXPECT_LE(result.utility, result.super_optimal_utility + 1e-9);
}

TEST(Algorithm1, TheoremV17TightnessInstance) {
  constexpr Resource kC = 1000;
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = kC;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(0.002, 500.0, kC),
      std::make_shared<CappedLinearUtility>(0.002, 500.0, kC),
      std::make_shared<CappedLinearUtility>(0.001, 1000.0, kC)};
  const SolveResult result = solve_algorithm1(instance);
  EXPECT_NEAR(result.utility, 2.5, 1e-9);
  EXPECT_NEAR(result.utility / solve_exact(instance).utility, 5.0 / 6.0,
              1e-9);
}

TEST(Algorithm1, FirstMThreadsAreFull) {
  // Lemma V.8: the first m assigned threads receive their super-optimal
  // allocation. Equivalent check: at least min(n, m) threads are full.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = generated_instance(
        21, 4, 60, support::DistributionKind::kPowerLaw, 400 + seed);
    const SolveResult result = solve_algorithm1(instance);
    std::size_t full = 0;
    for (std::size_t i = 0; i < instance.num_threads(); ++i) {
      if (result.assignment.alloc[i] >=
          static_cast<double>(result.c_hat[i]) - 0.5) {
        ++full;
      }
    }
    ASSERT_GE(full, std::min<std::size_t>(21, 4));
  }
}

TEST(Algorithm1, AgreesWithAlgorithm2WhenThreadsFitExactly) {
  // n <= m: both algorithms give every thread its super-optimal allocation.
  const Instance instance = generated_instance(
      4, 6, 100, support::DistributionKind::kDiscrete, 9);
  const SolveResult a1 = solve_algorithm1(instance);
  const SolveResult a2 = solve_algorithm2(instance);
  EXPECT_NEAR(a1.utility, a2.utility, 1e-9);
  EXPECT_NEAR(a1.utility, a1.super_optimal_utility,
              1e-9 * (1.0 + a1.super_optimal_utility));
}

TEST(Algorithm1, ComparableQualityToAlgorithm2OnRandomInstances) {
  // The two algorithms share the approximation proof; on random instances
  // their utilities should be within a few percent of each other.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = generated_instance(
        30, 4, 80, support::DistributionKind::kUniform, 500 + seed);
    const double u1 = solve_algorithm1(instance).utility;
    const double u2 = solve_algorithm2(instance).utility;
    ASSERT_GT(u1, 0.0);
    ASSERT_GT(u2, 0.0);
    ASSERT_NEAR(u1 / u2, 1.0, 0.15) << "seed " << seed;
  }
}

TEST(Algorithm1, HandlesEmptyInstance) {
  Instance instance;
  instance.num_servers = 3;
  instance.capacity = 10;
  const SolveResult result = solve_algorithm1(instance);
  EXPECT_TRUE(result.assignment.server.empty());
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
}

TEST(Algorithm1, RejectsMismatchedLinearization) {
  const Instance instance = generated_instance(
      5, 2, 30, support::DistributionKind::kUniform, 1);
  const std::vector<util::Linearized> wrong(3);
  EXPECT_THROW((void)assign_algorithm1(instance, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace aa::core
