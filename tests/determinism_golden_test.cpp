// Golden-value determinism tests: these lock the exact outputs of the
// deterministic stack (PRNG -> distributions -> generator -> solver) so an
// accidental change to any stream (reordering draws, swapping algorithms,
// "harmless" refactors) is caught immediately. If a change here is
// INTENTIONAL, update the constants and call it out in the changelog —
// results published from older seeds stop being reproducible.

#include <gtest/gtest.h>

#include "aa/refine.hpp"
#include "obs/session.hpp"
#include "sim/experiment.hpp"
#include "sim/workload.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa {
namespace {

TEST(Golden, XoshiroSeed42FirstDraws) {
  support::Xoshiro256StarStar gen(42);
  EXPECT_EQ(gen(), 1546998764402558742ULL);
  EXPECT_EQ(gen(), 6990951692964543102ULL);
  EXPECT_EQ(gen(), 12544586762248559009ULL);
}

TEST(Golden, RngChildStream) {
  support::Rng rng = support::Rng::child(2016, 7);
  EXPECT_EQ(rng.next_u64(), 8310888732045790662ULL);
}

TEST(Golden, Uniform01Seed1) {
  support::Rng rng(1);
  EXPECT_NEAR(rng.uniform01(), 0.7029218332, 1e-9);
  EXPECT_NEAR(rng.uniform01(), 0.5204366199, 1e-9);
}

TEST(Golden, GeneratedUtilityKnots) {
  support::Rng rng(123);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  const util::UtilityPtr f = util::generate_utility(100, dist, rng);
  EXPECT_NEAR(f->value(50.0), 0.9695722925, 1e-9);
  EXPECT_NEAR(f->value(100.0), 1.1662666447, 1e-9);
}

TEST(Golden, TrialUtilitiesSeed2016Trial0) {
  sim::WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 50;
  config.beta = 3.0;
  config.dist.kind = support::DistributionKind::kUniform;
  const sim::TrialUtilities t = sim::run_trial(config, 2016, 0);
  EXPECT_NEAR(t.algorithm2, 6.2823222105, 1e-8);
  EXPECT_NEAR(t.super_optimal, 6.2884762702, 1e-8);
  EXPECT_NEAR(t.uu, 5.6479076586, 1e-8);
}

TEST(Golden, InstrumentationNeverPerturbsSolverResults) {
  // The same fixed instance solved bare and under an obs::Session must give
  // bit-identical utilities: observability reads the solver, never steers it.
  support::Rng rng(123);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  sim::WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 50;
  config.beta = 3.0;
  config.dist = dist;
  const core::Instance instance = sim::generate_instance(config, rng);

  const core::SolveResult bare = core::solve_algorithm2_refined(instance);
  obs::Session session;
  const core::SolveResult observed = core::solve_algorithm2_refined(instance);
  EXPECT_EQ(observed.utility, bare.utility);
  EXPECT_EQ(observed.linearized_utility, bare.linearized_utility);
  EXPECT_EQ(observed.super_optimal_utility, bare.super_optimal_utility);
  EXPECT_EQ(observed.assignment.server, bare.assignment.server);
  EXPECT_EQ(observed.assignment.alloc, bare.assignment.alloc);
}

TEST(Golden, MetricsCountersSeed2016Trial0) {
  // Pins the full counters blob (values are deterministic; timings are
  // deliberately excluded) for one run_trial at the seed the trial golden
  // above uses: 12 threads on 4 servers, solved by Algorithm 2 + refinement
  // plus the four heuristics. If an instrumentation change is INTENTIONAL,
  // update the string alongside the changelog entry.
  obs::Session session;
  sim::WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 50;
  config.beta = 3.0;
  config.dist.kind = support::DistributionKind::kUniform;
  (void)sim::run_trial(config, 2016, 0);

  EXPECT_EQ(
      session.metrics().counters_json().dump(),
      "{\"alg2/solves\":1,\"alg2/threads_assigned\":12,"
      "\"certificate/checks\":2,\"experiment/trials\":1,"
      "\"heuristics/rr_solves\":1,\"heuristics/ru_solves\":1,"
      "\"heuristics/ur_solves\":1,\"heuristics/uu_solves\":1,"
      "\"refine/servers_reoptimized\":4,\"refine/solves\":1,"
      "\"super_optimal/calls\":1,\"super_optimal/threads\":12}");
  EXPECT_EQ(session.metrics().counter("certificate/failures"), 0);
  ASSERT_EQ(session.certificates().size(), 2u);
  EXPECT_TRUE(session.certificates().back().ok());
}

}  // namespace
}  // namespace aa
