// Golden-value determinism tests: these lock the exact outputs of the
// deterministic stack (PRNG -> distributions -> generator -> solver) so an
// accidental change to any stream (reordering draws, swapping algorithms,
// "harmless" refactors) is caught immediately. If a change here is
// INTENTIONAL, update the constants and call it out in the changelog —
// results published from older seeds stop being reproducible.

#include <gtest/gtest.h>

#include "aa/refine.hpp"
#include "sim/experiment.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa {
namespace {

TEST(Golden, XoshiroSeed42FirstDraws) {
  support::Xoshiro256StarStar gen(42);
  EXPECT_EQ(gen(), 1546998764402558742ULL);
  EXPECT_EQ(gen(), 6990951692964543102ULL);
  EXPECT_EQ(gen(), 12544586762248559009ULL);
}

TEST(Golden, RngChildStream) {
  support::Rng rng = support::Rng::child(2016, 7);
  EXPECT_EQ(rng.next_u64(), 8310888732045790662ULL);
}

TEST(Golden, Uniform01Seed1) {
  support::Rng rng(1);
  EXPECT_NEAR(rng.uniform01(), 0.7029218332, 1e-9);
  EXPECT_NEAR(rng.uniform01(), 0.5204366199, 1e-9);
}

TEST(Golden, GeneratedUtilityKnots) {
  support::Rng rng(123);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  const util::UtilityPtr f = util::generate_utility(100, dist, rng);
  EXPECT_NEAR(f->value(50.0), 0.9695722925, 1e-9);
  EXPECT_NEAR(f->value(100.0), 1.1662666447, 1e-9);
}

TEST(Golden, TrialUtilitiesSeed2016Trial0) {
  sim::WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 50;
  config.beta = 3.0;
  config.dist.kind = support::DistributionKind::kUniform;
  const sim::TrialUtilities t = sim::run_trial(config, 2016, 0);
  EXPECT_NEAR(t.algorithm2, 6.2823222105, 1e-8);
  EXPECT_NEAR(t.super_optimal, 6.2884762702, 1e-8);
  EXPECT_NEAR(t.uu, 5.6479076586, 1e-8);
}

}  // namespace
}  // namespace aa
