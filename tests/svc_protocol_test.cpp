// Tests for the service wire protocol parser (svc/protocol.hpp): valid
// requests round-trip, and every class of malformed input is rejected with
// a stable error code instead of crashing (the json_fuzz_test counterpart
// for the service surface).

#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "support/json.hpp"
#include "support/prng.hpp"

namespace aa::svc {
namespace {

constexpr util::Resource kCapacity = 64;

Request parse(const std::string& line) {
  return parse_request(line, kCapacity);
}

std::string code_of(const std::string& line) {
  try {
    (void)parse(line);
  } catch (const ProtocolError& error) {
    return error.code();
  }
  return "";
}

TEST(ProtocolParse, AddThread) {
  const Request request = parse(
      R"({"op": "add_thread", "thread": {"type": "power", "scale": 2.0, "beta": 0.5}, "tag": "t1"})");
  EXPECT_EQ(request.op, Op::kAddThread);
  EXPECT_EQ(request.tag, "t1");
  ASSERT_NE(request.utility, nullptr);
  EXPECT_NEAR(request.utility->value(4.0), 4.0, 1e-12);
  EXPECT_FALSE(request.id.has_value());
  EXPECT_FALSE(request.deadline_ms.has_value());
}

TEST(ProtocolParse, RemoveAndUpdate) {
  const Request remove = parse(R"({"op": "remove_thread", "id": 7})");
  EXPECT_EQ(remove.op, Op::kRemoveThread);
  EXPECT_EQ(remove.id, 7u);

  const Request scale =
      parse(R"({"op": "update_utility", "id": 3, "factor": 1.25})");
  EXPECT_EQ(scale.op, Op::kUpdateUtility);
  EXPECT_EQ(scale.id, 3u);
  EXPECT_EQ(scale.factor, 1.25);
  EXPECT_EQ(scale.utility, nullptr);

  const Request replace = parse(
      R"({"op": "update_utility", "id": 3, "thread": {"type": "log", "scale": 1.0, "rate": 0.1}})");
  EXPECT_NE(replace.utility, nullptr);
  EXPECT_FALSE(replace.factor.has_value());
}

TEST(ProtocolParse, SolveModesAndDeadline) {
  EXPECT_FALSE(parse(R"({"op": "solve"})").full_solve);
  EXPECT_FALSE(parse(R"({"op": "solve", "mode": "auto"})").full_solve);
  EXPECT_TRUE(parse(R"({"op": "solve", "mode": "full"})").full_solve);
  const Request timed = parse(R"({"op": "stats", "deadline_ms": 12.5})");
  EXPECT_EQ(timed.deadline_ms, 12.5);
}

TEST(ProtocolParse, MetricsRoundTripsThroughNames) {
  const Request request = parse(R"({"op": "metrics", "tag": "scrape"})");
  EXPECT_EQ(request.op, Op::kMetrics);
  EXPECT_EQ(request.tag, "scrape");
  EXPECT_EQ(op_name(Op::kMetrics), "metrics");
}

TEST(ProtocolParse, MalformedJsonIsParseError) {
  EXPECT_EQ(code_of(""), error_code::kParseError);
  EXPECT_EQ(code_of("not json"), error_code::kParseError);
  EXPECT_EQ(code_of("{"), error_code::kParseError);
  EXPECT_EQ(code_of(R"({"op": "solve")"), error_code::kParseError);
  EXPECT_EQ(code_of("{\"op\": \"solve\"} trailing"),
            error_code::kParseError);
  EXPECT_EQ(code_of("\xff\xfe"), error_code::kParseError);
}

TEST(ProtocolParse, NonObjectOrMissingOpIsBadRequest) {
  EXPECT_EQ(code_of("42"), error_code::kBadRequest);
  EXPECT_EQ(code_of("[1, 2]"), error_code::kBadRequest);
  EXPECT_EQ(code_of("null"), error_code::kBadRequest);
  EXPECT_EQ(code_of("{}"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": 3})"), error_code::kBadRequest);
}

TEST(ProtocolParse, UnknownOp) {
  EXPECT_EQ(code_of(R"({"op": "frobnicate"})"), error_code::kUnknownOp);
  EXPECT_EQ(code_of(R"({"op": ""})"), error_code::kUnknownOp);
  EXPECT_EQ(code_of(R"({"op": "SOLVE"})"), error_code::kUnknownOp);
}

TEST(ProtocolParse, FieldValidation) {
  // Missing requireds.
  EXPECT_EQ(code_of(R"({"op": "add_thread"})"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "remove_thread"})"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "update_utility", "id": 1})"),
            error_code::kBadRequest);
  // update_utility takes exactly one of thread/factor.
  EXPECT_EQ(
      code_of(
          R"({"op": "update_utility", "id": 1, "factor": 1.0, "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})"),
      error_code::kBadRequest);
  // Ill-typed fields.
  EXPECT_EQ(code_of(R"({"op": "remove_thread", "id": "seven"})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "remove_thread", "id": -3})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "remove_thread", "id": 1.5})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "add_thread", "thread": "power"})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "solve", "mode": "sideways"})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "solve", "tag": 9})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "stats", "deadline_ms": "soon"})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "update_utility", "id": 1, "factor": -2.0})"),
            error_code::kBadRequest);
  // Unknown fields fail loudly rather than being silently dropped.
  EXPECT_EQ(code_of(R"({"op": "solve", "bogus": 1})"),
            error_code::kBadRequest);
  // Ops that take no payload reject one.
  EXPECT_EQ(code_of(R"({"op": "shutdown", "id": 1})"),
            error_code::kBadRequest);
}

TEST(ProtocolParse, BadThreadSpecs) {
  // Unknown utility type / malformed parameters surface as bad_request.
  EXPECT_EQ(code_of(R"({"op": "add_thread", "thread": {"type": "warp"}})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "add_thread", "thread": {}})"),
            error_code::kBadRequest);
  // Tabulated spec narrower than the capacity cannot serve this instance.
  EXPECT_EQ(
      code_of(
          R"({"op": "add_thread", "thread": {"type": "tabulated", "values": [0, 1, 2]}})"),
      error_code::kBadRequest);
}

TEST(ProtocolParse, TenantScopedRequests) {
  const Request scoped = parse(
      R"({"op": "add_thread", "tenant": "acme", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})");
  EXPECT_EQ(scoped.op, Op::kAddThread);
  EXPECT_EQ(scoped.tenant, "acme");
  EXPECT_TRUE(parse(R"({"op": "solve"})").tenant.empty());
  EXPECT_EQ(parse(R"({"op": "solve", "tenant": "a-b.c_9"})").tenant,
            "a-b.c_9");
}

TEST(ProtocolParse, TenantAdminVerbs) {
  const Request create = parse(
      R"({"op": "tenant_create", "tenant": "acme", "weight": 2.0, "quota": 32, "max_threads": 8, "credits": 16, "tag": "c"})");
  EXPECT_EQ(create.op, Op::kTenantCreate);
  EXPECT_EQ(create.tenant, "acme");
  EXPECT_EQ(create.weight, 2.0);
  EXPECT_EQ(create.quota, 32.0);
  EXPECT_EQ(create.max_threads, 8);
  EXPECT_EQ(create.credits, 16.0);

  const Request update =
      parse(R"({"op": "tenant_update", "tenant": "acme", "weight": 3.0})");
  EXPECT_EQ(update.op, Op::kTenantUpdate);
  EXPECT_FALSE(update.quota.has_value());

  EXPECT_EQ(parse(R"({"op": "tenant_delete", "tenant": "acme"})").op,
            Op::kTenantDelete);
  EXPECT_EQ(parse(R"({"op": "tenant_list"})").op, Op::kTenantList);
}

TEST(ProtocolParse, MalformedTenantIdsAreBadTenant) {
  // The id grammar (1..64 chars of [A-Za-z0-9_.-]) is a wire contract:
  // ids flow unescaped into Prometheus label values and shard hashing.
  EXPECT_TRUE(valid_tenant_id("acme"));
  EXPECT_TRUE(valid_tenant_id("a-b.c_9"));
  EXPECT_TRUE(valid_tenant_id(std::string(64, 'x')));
  EXPECT_FALSE(valid_tenant_id(""));
  EXPECT_FALSE(valid_tenant_id(std::string(65, 'x')));
  EXPECT_FALSE(valid_tenant_id("has space"));
  EXPECT_FALSE(valid_tenant_id("quote\"breaks\"labels"));
  EXPECT_FALSE(valid_tenant_id("newline\n"));
  EXPECT_FALSE(valid_tenant_id("utf8\xc3\xa9"));

  EXPECT_EQ(code_of(R"({"op": "solve", "tenant": ""})"),
            error_code::kBadTenant);
  EXPECT_EQ(code_of(R"({"op": "solve", "tenant": "has space"})"),
            error_code::kBadTenant);
  EXPECT_EQ(code_of(R"({"op": "solve", "tenant": 7})"),
            error_code::kBadTenant);
  EXPECT_EQ(code_of(R"({"op": "tenant_create", "tenant": "a\"b"})"),
            error_code::kBadTenant);
}

TEST(ProtocolParse, TenantAdminFieldValidation) {
  // Admin verbs require a tenant...
  EXPECT_EQ(code_of(R"({"op": "tenant_create"})"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "tenant_update", "weight": 2.0})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "tenant_delete"})"), error_code::kBadRequest);
  // ...and reject thread-level payloads.
  EXPECT_EQ(code_of(R"({"op": "tenant_create", "tenant": "t", "id": 1})"),
            error_code::kBadRequest);
  // tenant_delete takes only the tenant.
  EXPECT_EQ(
      code_of(R"({"op": "tenant_delete", "tenant": "t", "weight": 2.0})"),
      error_code::kBadRequest);
  // tenant_update: no credits, and at least one knob.
  EXPECT_EQ(
      code_of(R"({"op": "tenant_update", "tenant": "t", "credits": 5.0})"),
      error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "tenant_update", "tenant": "t"})"),
            error_code::kBadRequest);
  // tenant_list is argument-free, like stats/shutdown.
  EXPECT_EQ(code_of(R"({"op": "tenant_list", "tenant": "t"})"),
            error_code::kBadRequest);
  // Admin fields never ride on data-plane ops.
  EXPECT_EQ(code_of(R"({"op": "solve", "weight": 2.0})"),
            error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"op": "add_thread", "quota": 3.0})"),
            error_code::kBadRequest);
  // Knob typing.
  EXPECT_EQ(
      code_of(R"({"op": "tenant_create", "tenant": "t", "weight": 0.0})"),
      error_code::kBadRequest);
  EXPECT_EQ(
      code_of(R"({"op": "tenant_create", "tenant": "t", "quota": -1.0})"),
      error_code::kBadRequest);
  EXPECT_EQ(
      code_of(
          R"({"op": "tenant_create", "tenant": "t", "max_threads": 1.5})"),
      error_code::kBadRequest);
  EXPECT_EQ(
      code_of(R"({"op": "tenant_create", "tenant": "t", "credits": -2.0})"),
      error_code::kBadRequest);
}

TEST(ProtocolParse, FuzzedMutationsNeverCrash) {
  // Random structural mutations of a valid request: parse either succeeds
  // or throws ProtocolError; nothing else may escape.
  const std::string seed_lines[] = {
      R"({"op": "add_thread", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}, "tag": "x"})",
      R"({"op": "add_thread", "tenant": "acme", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})",
      R"({"op": "tenant_create", "tenant": "acme", "weight": 2.0, "quota": 32, "max_threads": 8, "credits": 4})",
      R"({"op": "tenant_update", "tenant": "a-b.c_9", "weight": 1.5})",
      R"({"op": "tenant_delete", "tenant": "acme"})",
  };
  support::Rng rng(2024);
  for (int round = 0; round < 2000; ++round) {
    std::string line =
        seed_lines[rng.uniform_below(std::size(seed_lines))];
    const std::size_t edits = 1 + rng.uniform_below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform_below(line.size());
      switch (rng.uniform_below(3)) {
        case 0:
          line[pos] = static_cast<char>(rng.uniform_below(256));
          break;
        case 1:
          line.erase(pos, 1);
          break;
        default:
          line.insert(pos, 1, static_cast<char>(rng.uniform_below(256)));
          break;
      }
      if (line.empty()) line.push_back('x');
    }
    try {
      (void)parse(line);
    } catch (const ProtocolError&) {
      // Expected for most mutations.
    }
  }
}

TEST(ProtocolReplies, ErrorAndOkShapes) {
  const support::JsonValue error =
      make_error_reply(error_code::kTimeout, "too slow", "solve", "t9");
  EXPECT_FALSE(error.at("ok").as_bool());
  EXPECT_EQ(error.at("code").as_string(), "timeout");
  EXPECT_EQ(error.at("error").as_string(), "too slow");
  EXPECT_EQ(error.at("op").as_string(), "solve");
  EXPECT_EQ(error.at("tag").as_string(), "t9");

  const support::JsonValue minimal =
      make_error_reply(error_code::kParseError, "bad line");
  EXPECT_EQ(minimal.find("op"), nullptr);
  EXPECT_EQ(minimal.find("tag"), nullptr);

  const support::JsonValue ok = make_ok_reply(Op::kStats, "s");
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_EQ(ok.at("op").as_string(), "stats");
  EXPECT_EQ(ok.at("tag").as_string(), "s");
}

TEST(ProtocolReplies, StableErrorCodeStrings) {
  // The wire strings are a contract (docs/SERVICE.md); renaming one is a
  // protocol break. aa_lint cross-checks this table against the header and
  // the docs, and this test pins the strings themselves.
  EXPECT_EQ(error_code::kParseError, "parse_error");
  EXPECT_EQ(error_code::kBadRequest, "bad_request");
  EXPECT_EQ(error_code::kUnknownOp, "unknown_op");
  EXPECT_EQ(error_code::kNotFound, "not_found");
  EXPECT_EQ(error_code::kTimeout, "timeout");
  EXPECT_EQ(error_code::kTooLarge, "too_large");
  EXPECT_EQ(error_code::kOverflow, "overflow");
  EXPECT_EQ(error_code::kShuttingDown, "shutting_down");
  EXPECT_EQ(error_code::kInternal, "internal");
  EXPECT_EQ(error_code::kBadTenant, "bad_tenant");
  EXPECT_EQ(error_code::kTenantNotFound, "tenant_not_found");
  EXPECT_EQ(error_code::kTenantExists, "tenant_exists");
  EXPECT_EQ(error_code::kQuotaExceeded, "quota_exceeded");
}

}  // namespace
}  // namespace aa::svc
