// Differential wall for the super-optimal strategy seam
// (alloc/bisection_soa.cpp): the SoA + bracket-narrowing rewrite behind
// super_optimal_parallel must be BIT-IDENTICAL to the serial
// allocate_bisection reference — same c_hat vector, same F_hat double — for
// every tested input and every thread-pool size. That exactness is what
// licenses routing alg1/alg2/alg2h/warm-start through the seam without
// re-running any golden or certificate test: downstream consumers cannot
// observe which implementation ran. Mirrors algorithm1_equivalence_test's
// reference-pinning style (docs/ALGORITHMS.md "Strategy seam").
//
// Coverage deliberately includes: all four generated distributions,
// n from 1 to 4096 (spanning the inline/fan-out threshold of the chunked
// reduction), worker pools of size 1/2/4/8 sharing one process, exact ties
// (every thread the same utility object), zero capacity, capacity
// starvation, single-thread shapes, and non-tabulated utilities that miss
// the raw-grid fast path (scaled/analytic families).

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/super_optimal.hpp"
#include "support/distributions.hpp"
#include "support/prng.hpp"
#include "support/thread_pool.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa {
namespace {

using util::Resource;
using util::UtilityPtr;

/// The worker pools every case runs against. Shared across the whole test
/// binary: reusing pools across hundreds of submissions is itself part of
/// what the wall exercises.
std::vector<std::unique_ptr<support::ThreadPool>>& pools() {
  static std::vector<std::unique_ptr<support::ThreadPool>> shared = [] {
    std::vector<std::unique_ptr<support::ThreadPool>> built;
    for (const std::size_t workers : {1UL, 2UL, 4UL, 8UL}) {
      built.push_back(std::make_unique<support::ThreadPool>(workers));
    }
    return built;
  }();
  return shared;
}

/// Asserts the parallel path reproduces the serial reference bit-for-bit at
/// every pool size, and that the price path obeys its contract sanity
/// bounds (never above F_hat; full property coverage lives in
/// certificate_property_test).
void expect_bit_identical(const std::vector<UtilityPtr>& threads,
                          std::size_t num_servers, Resource capacity) {
  const alloc::SuperOptimalResult serial =
      alloc::super_optimal(threads, num_servers, capacity);
  for (const auto& pool : pools()) {
    SCOPED_TRACE("workers=" + std::to_string(pool->worker_count()));
    const alloc::SuperOptimalResult parallel =
        alloc::super_optimal_parallel(threads, num_servers, capacity,
                                      pool.get());
    ASSERT_EQ(parallel.c_hat.size(), serial.c_hat.size());
    EXPECT_EQ(parallel.c_hat, serial.c_hat);
    EXPECT_EQ(parallel.utility, serial.utility);
  }
  const alloc::SuperOptimalResult price = alloc::super_optimal_price(
      threads, num_servers, capacity, 1e-9, pools().front().get());
  EXPECT_LE(price.utility, serial.utility);
}

const support::DistributionKind kKinds[] = {
    support::DistributionKind::kUniform,
    support::DistributionKind::kNormal,
    support::DistributionKind::kPowerLaw,
    support::DistributionKind::kDiscrete,
};

const char* kind_name(support::DistributionKind kind) {
  switch (kind) {
    case support::DistributionKind::kUniform: return "uniform";
    case support::DistributionKind::kNormal: return "normal";
    case support::DistributionKind::kPowerLaw: return "powerlaw";
    case support::DistributionKind::kDiscrete: return "discrete";
  }
  return "?";
}

TEST(SuperOptimalEquivalence, AllDistributionsAcrossSizes) {
  // n sweeps through the inline regime; m=1 vs m=8 moves the pooled budget
  // from starved to saturating.
  const std::size_t sizes[] = {1, 2, 3, 5, 9, 17, 33, 64, 129, 256, 1024};
  for (const support::DistributionKind kind : kKinds) {
    for (const std::size_t n : sizes) {
      for (const std::size_t m : {1UL, 8UL}) {
        for (std::uint64_t seed = 1; seed <= 2; ++seed) {
          SCOPED_TRACE(std::string(kind_name(kind)) + " n=" +
                       std::to_string(n) + " m=" + std::to_string(m) +
                       " seed=" + std::to_string(seed));
          support::DistributionParams dist;
          dist.kind = kind;
          support::Rng rng = support::Rng::child(seed, n);
          const std::vector<UtilityPtr> threads =
              util::generate_utilities(n, 48, dist, rng);
          expect_bit_identical(threads, m, 48);
        }
      }
    }
  }
}

TEST(SuperOptimalEquivalence, FanOutRegimeAcrossPoolSizes) {
  // n >= 2048 crosses the chunked-reduction threshold, so these instances
  // genuinely run the probes on the worker pools; determinism across pool
  // sizes here is the chunk-boundary invariance claim, not a vacuous pass.
  for (const support::DistributionKind kind :
       {support::DistributionKind::kUniform,
        support::DistributionKind::kPowerLaw}) {
    for (const std::size_t n : {2048UL, 4096UL}) {
      SCOPED_TRACE(std::string(kind_name(kind)) + " n=" + std::to_string(n));
      support::DistributionParams dist;
      dist.kind = kind;
      support::Rng rng = support::Rng::child(31, n);
      const std::vector<UtilityPtr> threads =
          util::generate_utilities(n, 32, dist, rng);
      expect_bit_identical(threads, 8, 32);
    }
  }
}

TEST(SuperOptimalEquivalence, ExactTiesFromSharedUtility) {
  // Every thread is the same object: all marginals tie exactly, the lambda
  // plateau spans the whole instance, and the residual distribution plus
  // greedy tie-breaks must replay identically. 2500 crosses into fan-out.
  support::DistributionParams dist;
  support::Rng rng(99);
  const UtilityPtr shared = util::generate_utility(100, dist, rng);
  for (const std::size_t n : {5UL, 40UL, 2500UL}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<UtilityPtr> threads(n, shared);
    expect_bit_identical(threads, 4, 100);
  }
}

TEST(SuperOptimalEquivalence, ZeroCapacityAndStarvation) {
  support::DistributionParams dist;
  support::Rng rng(7);
  const std::vector<UtilityPtr> threads =
      util::generate_utilities(40, 50, dist, rng);
  // capacity = 0: pooled budget and every per-thread cap collapse to zero.
  expect_bit_identical(threads, 4, 0);
  // Starved: pool = m * C = 8 units across 40 threads of capacity 50.
  expect_bit_identical(threads, 2, 4);
  // Zero servers: empty pooled budget with live utilities.
  expect_bit_identical(threads, 0, 50);
}

TEST(SuperOptimalEquivalence, SingleThreadShapes) {
  support::DistributionParams dist;
  support::Rng rng(13);
  const std::vector<UtilityPtr> threads =
      util::generate_utilities(1, 50, dist, rng);
  expect_bit_identical(threads, 1, 50);
  expect_bit_identical(threads, 6, 50);
  expect_bit_identical(threads, 1, 1);
}

TEST(SuperOptimalEquivalence, NonTabulatedUtilitiesMissTheGridFastPath) {
  // Scaled and analytic families are not TabulatedUtility, so the SoA core
  // falls back to virtual marginal() calls; the values must still match the
  // serial reference exactly. Mixed in with tabulated threads to cover both
  // code paths inside one probe sweep.
  support::DistributionParams dist;
  support::Rng rng(55);
  std::vector<UtilityPtr> threads;
  for (std::size_t i = 0; i < 24; ++i) {
    const UtilityPtr tabulated = util::generate_utility(60, dist, rng);
    switch (i % 4) {
      case 0:
        threads.push_back(tabulated);
        break;
      case 1:
        threads.push_back(
            std::make_shared<const util::ScaledUtility>(tabulated, 1.7));
        break;
      case 2:
        threads.push_back(std::make_shared<const util::LogUtility>(
            3.0, 0.2 + 0.05 * static_cast<double>(i), 60));
        break;
      default:
        threads.push_back(std::make_shared<const util::PowerUtility>(
            2.0, 0.6, 60));
        break;
    }
  }
  expect_bit_identical(threads, 3, 60);
}

TEST(SuperOptimalEquivalence, EmptyInstance) {
  const std::vector<UtilityPtr> threads;
  expect_bit_identical(threads, 4, 16);
}

TEST(SuperOptimalEquivalence, NegativeCapacityThrowsOnEveryPath) {
  support::DistributionParams dist;
  support::Rng rng(3);
  const std::vector<UtilityPtr> threads =
      util::generate_utilities(2, 8, dist, rng);
  EXPECT_THROW((void)alloc::super_optimal_parallel(threads, 2, -1),
               std::invalid_argument);
  EXPECT_THROW((void)alloc::super_optimal_price(threads, 2, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace aa
