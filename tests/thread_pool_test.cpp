// Tests for the worker pool and parallel_for (support/thread_pool.hpp).

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace aa::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL() << "must not run"; });
  parallel_for(pool, 7, 3, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, NonzeroBegin) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + ... + 19
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("index 37");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelFor, PoolStaysUsableAfterBodyException) {
  // A propagated exception must leave the pool fully drained and healthy:
  // no worker may still be touching the dead frame, and later waves must
  // run normally on the same pool.
  ThreadPool pool(4);
  for (int wave = 0; wave < 3; ++wave) {
    EXPECT_THROW(
        parallel_for(pool, 0, 200,
                     [](std::size_t i) {
                       if (i % 50 == 13) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
    std::atomic<int> counter{0};
    parallel_for(pool, 0, 100, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, ReuseAcrossManySubmissionWaves) {
  // Interleaves bare submits and parallel_for sweeps on one pool; every
  // wave must fully complete before the next is issued.
  ThreadPool pool(3);
  long long expected = 0;
  std::atomic<long long> total{0};
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 10; ++i) {
      futures.push_back(pool.submit([&total, wave] { total += wave; }));
      expected += wave;
    }
    for (auto& f : futures) f.get();
    std::atomic<int> hits{0};
    parallel_for(pool, 0, 64, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 64);
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ChunkedReduce, SumsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  const long long total = parallel_chunked_reduce(
      pool, std::size_t{0}, std::size_t{1000}, std::size_t{37}, 0LL,
      [](std::size_t lo, std::size_t hi) {
        long long part = 0;
        for (std::size_t i = lo; i < hi; ++i) part += static_cast<long long>(i);
        return part;
      },
      [](long long acc, long long part) { return acc + part; });
  EXPECT_EQ(total, 999LL * 1000 / 2);
}

TEST(ChunkedReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int value = parallel_chunked_reduce(
      pool, std::size_t{9}, std::size_t{9}, std::size_t{8}, 42,
      [](std::size_t, std::size_t) -> int {
        ADD_FAILURE() << "must not run";
        return 0;
      },
      [](int acc, int) { return acc; });
  EXPECT_EQ(value, 42);
}

TEST(ChunkedReduce, DeterministicAcrossWorkerCountsForFloatSums) {
  // The order-independence claim the allocation fast paths lean on: chunk
  // boundaries and fold order depend only on (range, chunk_size), so even a
  // non-associative floating-point sum is bit-identical for every pool
  // size. Values spanning 14 orders of magnitude make any reordering of the
  // fold visible in the low bits.
  std::vector<double> values(10000);
  double scale = 1e-7;
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = scale * static_cast<double>(i % 997 + 1);
    scale = scale > 1e7 ? 1e-7 : scale * 1.01;
  }
  const auto reduce_with = [&](std::size_t workers) {
    ThreadPool pool(workers);
    return parallel_chunked_reduce(
        pool, std::size_t{0}, values.size(), std::size_t{256}, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double part = 0.0;
          for (std::size_t i = lo; i < hi; ++i) part += values[i];
          return part;
        },
        [](double acc, double part) { return acc + part; });
  };
  const double reference = reduce_with(1);
  for (const std::size_t workers : {2UL, 3UL, 4UL, 8UL}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(reduce_with(workers), reference);
  }
}

TEST(ChunkedReduce, PropagatesFirstExceptionInChunkOrderAndStaysUsable) {
  ThreadPool pool(4);
  const auto failing = [&] {
    return parallel_chunked_reduce(
        pool, std::size_t{0}, std::size_t{400}, std::size_t{50}, 0,
        [](std::size_t lo, std::size_t) -> int {
          if (lo == 100) throw std::runtime_error("chunk at 100");
          if (lo == 300) throw std::logic_error("chunk at 300");
          return 1;
        },
        [](int acc, int part) { return acc + part; });
  };
  // Chunk order, not completion order: the runtime_error from the earlier
  // chunk wins even if the later chunk fails first on some schedule.
  try {
    (void)failing();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk at 100");
  }
  // And the pool is still healthy afterwards.
  const int chunks = parallel_chunked_reduce(
      pool, std::size_t{0}, std::size_t{400}, std::size_t{50}, 0,
      [](std::size_t, std::size_t) { return 1; },
      [](int acc, int part) { return acc + part; });
  EXPECT_EQ(chunks, 8);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  parallel_for(a, 0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace aa::support
