// Tests for the worker pool and parallel_for (support/thread_pool.hpp).

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aa::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WorkerCountDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL() << "must not run"; });
  parallel_for(pool, 7, 3, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, NonzeroBegin) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + ... + 19
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("index 37");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(GlobalPool, IsSingletonAndUsable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  parallel_for(a, 0, 10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace aa::support
