// Tests for workload generation (sim/workload.hpp).

#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace aa::sim {
namespace {

TEST(WorkloadConfig, ThreadCountFromBeta) {
  WorkloadConfig config;
  config.num_servers = 8;
  config.beta = 5.0;
  EXPECT_EQ(config.num_threads(), 40u);
  config.beta = 1.0;
  EXPECT_EQ(config.num_threads(), 8u);
  config.beta = 2.5;
  EXPECT_EQ(config.num_threads(), 20u);
}

TEST(WorkloadConfig, RejectsNonpositiveBeta) {
  WorkloadConfig config;
  config.beta = 0.0;
  EXPECT_THROW((void)config.num_threads(), std::invalid_argument);
}

TEST(GenerateInstance, ShapeMatchesConfig) {
  WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 64;
  config.beta = 3.0;
  config.dist.kind = support::DistributionKind::kNormal;
  support::Rng rng(1);
  const core::Instance instance = generate_instance(config, rng);
  EXPECT_EQ(instance.num_servers, 4u);
  EXPECT_EQ(instance.capacity, 64);
  EXPECT_EQ(instance.num_threads(), 12u);
  EXPECT_NO_THROW(instance.validate());
}

TEST(GenerateInstance, UtilitiesAreValidConcave) {
  WorkloadConfig config;
  config.num_servers = 2;
  config.capacity = 50;
  config.beta = 4.0;
  config.dist.kind = support::DistributionKind::kPowerLaw;
  support::Rng rng(2);
  const core::Instance instance = generate_instance(config, rng);
  for (const auto& thread : instance.threads) {
    EXPECT_TRUE(util::is_valid_on_grid(*thread, 1e-7));
  }
}

TEST(GenerateInstance, DeterministicPerSeed) {
  WorkloadConfig config;
  config.num_servers = 2;
  config.capacity = 40;
  config.beta = 2.0;
  support::Rng rng1(3);
  support::Rng rng2(3);
  const core::Instance a = generate_instance(config, rng1);
  const core::Instance b = generate_instance(config, rng2);
  for (std::size_t i = 0; i < a.num_threads(); ++i) {
    EXPECT_DOUBLE_EQ(a.threads[i]->value(20.0), b.threads[i]->value(20.0));
  }
}

}  // namespace
}  // namespace aa::sim
