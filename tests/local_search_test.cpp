// Tests for the local-search post-processor (aa/local_search.hpp).

#include "aa/local_search.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/algorithm2.hpp"
#include "aa/exact.hpp"
#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(LocalSearch, NeverWorsensAndStaysValid) {
  support::Rng heur_rng(1);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = generated_instance(15, 3, 40, seed);
    const Assignment start = heuristic_ru(instance, heur_rng);
    const double start_utility =
        total_utility(instance, reoptimize_allocations(instance, start));
    const LocalSearchResult result = improve_local_search(instance, start);
    ASSERT_EQ(check_assignment(instance, result.assignment), "");
    ASSERT_GE(result.utility, start_utility - 1e-9);
  }
}

TEST(LocalSearch, FixesTheTightnessInstance) {
  // Theorem V.17's bad case for Algorithm 2: one swap/move repairs it.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 1000;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<CappedLinearUtility>(0.001, 1000.0, 1000)};
  const SolveResult bad = solve_algorithm2(instance);
  ASSERT_NEAR(bad.utility, 2.5, 1e-9);
  const LocalSearchResult fixed =
      improve_local_search(instance, bad.assignment);
  EXPECT_NEAR(fixed.utility, 3.0, 1e-9);
  EXPECT_GE(fixed.moves_applied + fixed.swaps_applied, 1u);
}

TEST(LocalSearch, ReachesExactOptimumOnSmallInstances) {
  // From a deliberately bad start, move+swap hill climbing should land on
  // (or extremely near) the optimum for small instances.
  int optimal_hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(7, 3, 18, 100 + seed);
    Assignment start;
    start.server.assign(7, 0);  // Everyone piled on server 0.
    start.alloc.assign(7, 0.0);
    const LocalSearchResult result = improve_local_search(instance, start);
    const ExactResult exact = solve_exact(instance);
    ASSERT_LE(result.utility, exact.utility + 1e-7 * (1.0 + exact.utility));
    if (result.utility >= exact.utility - 1e-6 * (1.0 + exact.utility)) {
      ++optimal_hits;
    }
  }
  EXPECT_GE(optimal_hits, 8);  // Hill climbing can stall, but rarely here.
}

TEST(LocalSearch, RespectsDisabledNeighborhoods) {
  const Instance instance = generated_instance(10, 3, 30, 5);
  Assignment start;
  start.server.assign(10, 0);
  start.alloc.assign(10, 0.0);

  LocalSearchOptions no_moves;
  no_moves.enable_moves = false;
  const LocalSearchResult swaps_only =
      improve_local_search(instance, start, no_moves);
  // Swapping two threads on the same server set is a no-op from an
  // all-on-one-server start (swaps need distinct servers), so nothing
  // improves.
  EXPECT_EQ(swaps_only.moves_applied, 0u);
  EXPECT_EQ(swaps_only.swaps_applied, 0u);

  LocalSearchOptions no_swaps;
  no_swaps.enable_swaps = false;
  const LocalSearchResult moves_only =
      improve_local_search(instance, start, no_swaps);
  EXPECT_EQ(moves_only.swaps_applied, 0u);
  EXPECT_GT(moves_only.moves_applied, 0u);
}

TEST(LocalSearch, MaxRoundsBoundsWork) {
  const Instance instance = generated_instance(12, 3, 30, 6);
  Assignment start;
  start.server.assign(12, 0);
  start.alloc.assign(12, 0.0);
  LocalSearchOptions one_round;
  one_round.max_rounds = 1;
  const LocalSearchResult result =
      improve_local_search(instance, start, one_round);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(LocalSearch, FixedPointOnOptimalStart) {
  const Instance instance = generated_instance(6, 3, 20, 7);
  const ExactResult exact = solve_exact(instance);
  const LocalSearchResult result =
      improve_local_search(instance, exact.assignment);
  EXPECT_NEAR(result.utility, exact.utility, 1e-9);
  EXPECT_EQ(result.moves_applied, 0u);
  EXPECT_EQ(result.swaps_applied, 0u);
}

TEST(LocalSearch, ClosesGapAboveRefinedAlgorithm2) {
  double refined_sum = 0.0;
  double searched_sum = 0.0;
  double so_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = generated_instance(24, 4, 60, 200 + seed);
    const SolveResult refined = solve_algorithm2_refined(instance);
    const LocalSearchResult searched =
        improve_local_search(instance, refined.assignment);
    refined_sum += refined.utility;
    searched_sum += searched.utility;
    so_sum += refined.super_optimal_utility;
  }
  EXPECT_GE(searched_sum, refined_sum - 1e-9);
  EXPECT_GE(searched_sum / so_sum, refined_sum / so_sum);
}

TEST(LocalSearch, RejectsMismatchedStart) {
  const Instance instance = generated_instance(4, 2, 10, 8);
  Assignment wrong;
  EXPECT_THROW((void)improve_local_search(instance, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace aa::core
