// Tests for Algorithm 2 (aa/algorithm2.hpp): structure, the Lemma V.15
// guarantee on the linearized objective, and the Theorem V.17 tightness
// instance.

#include "aa/algorithm2.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/exact.hpp"
#include "aa/solve_result.hpp"
#include "alloc/super_optimal.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            support::DistributionKind kind,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = kind;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(Algorithm2, AssignmentIsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(
        23, 4, 100, support::DistributionKind::kPowerLaw, seed);
    const SolveResult result = solve_algorithm2(instance);
    ASSERT_EQ(check_assignment(instance, result.assignment), "");
  }
}

TEST(Algorithm2, UtilityFieldsAreConsistent) {
  const Instance instance = generated_instance(
      16, 3, 80, support::DistributionKind::kUniform, 7);
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_NEAR(result.utility, total_utility(instance, result.assignment),
              1e-9);
  // Lemma V.4: F >= G.
  EXPECT_GE(result.utility, result.linearized_utility - 1e-9);
  // Lemma V.2 direction: achieved utility can never exceed the bound.
  EXPECT_LE(result.utility, result.super_optimal_utility + 1e-9);
}

TEST(Algorithm2, FewThreadsThanServersGetSuperOptimalAllocations) {
  // With n <= m every thread lands alone on a server and receives exactly
  // c_hat, so F == F_hat.
  const Instance instance = generated_instance(
      3, 8, 100, support::DistributionKind::kNormal, 11);
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_NEAR(result.utility, result.super_optimal_utility,
              1e-9 * (1.0 + result.super_optimal_utility));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(result.assignment.alloc[i],
                     static_cast<double>(result.c_hat[i]));
  }
}

TEST(Algorithm2, LemmaV15GuaranteeOnLinearizedObjective) {
  // G >= alpha * F_hat across distributions and shapes.
  for (const auto kind :
       {support::DistributionKind::kUniform, support::DistributionKind::kNormal,
        support::DistributionKind::kPowerLaw,
        support::DistributionKind::kDiscrete}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const Instance instance =
          generated_instance(4 + seed * 5, 3, 60, kind, 100 + seed);
      const SolveResult result = solve_algorithm2(instance);
      ASSERT_GE(result.linearized_utility,
                kApproximationRatio * result.super_optimal_utility - 1e-7)
          << "kind " << static_cast<int>(kind) << " seed " << seed;
    }
  }
}

TEST(Algorithm2, TheoremV17TightnessInstance) {
  // 3 threads, 2 servers, C = 1000 units (the paper's 1 divisible unit
  // scaled by 1000): f1 = f2 = min(2x/C, 1), f3 = x/C. Algorithm 2 spreads
  // threads 1 and 2 and achieves 2.5 versus the optimal 3 -> ratio 5/6.
  constexpr Resource kC = 1000;
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = kC;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(0.002, 500.0, kC),
      std::make_shared<CappedLinearUtility>(0.002, 500.0, kC),
      std::make_shared<CappedLinearUtility>(0.001, 1000.0, kC)};

  const SolveResult result = solve_algorithm2(instance);
  EXPECT_NEAR(result.super_optimal_utility, 3.0, 1e-9);
  EXPECT_NEAR(result.utility, 2.5, 1e-9);

  const ExactResult exact = solve_exact(instance);
  EXPECT_NEAR(exact.utility, 3.0, 1e-9);
  // 5/6 > alpha: the example shows the analysis is nearly tight.
  EXPECT_NEAR(result.utility / exact.utility, 5.0 / 6.0, 1e-9);
  EXPECT_GE(result.utility / exact.utility, kApproximationRatio);
}

TEST(Algorithm2, HandlesEmptyInstance) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_TRUE(result.assignment.server.empty());
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
}

TEST(Algorithm2, SingleServerMatchesSingleServerOptimal) {
  // With m = 1 the super-optimal allocation IS the optimal allocation, and
  // Algorithm 2 hands every thread min(c_hat, remaining); since
  // sum c_hat <= C it reproduces it exactly.
  const Instance instance = generated_instance(
      6, 1, 120, support::DistributionKind::kUniform, 3);
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_NEAR(result.utility, result.super_optimal_utility,
              1e-9 * (1.0 + result.super_optimal_utility));
}

TEST(Algorithm2, AtMostOneUnfullThreadPerServer) {
  // Lemma V.5: threads receiving less than c_hat are alone-per-server.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(
        19, 4, 50, support::DistributionKind::kDiscrete, 200 + seed);
    const SolveResult result = solve_algorithm2(instance);
    std::vector<int> unfull_per_server(instance.num_servers, 0);
    for (std::size_t i = 0; i < instance.num_threads(); ++i) {
      if (result.assignment.alloc[i] <
          static_cast<double>(result.c_hat[i]) - 0.5) {
        ++unfull_per_server[result.assignment.server[i]];
      }
    }
    for (const int count : unfull_per_server) ASSERT_LE(count, 1);
  }
}

TEST(Algorithm2Options, DisablingSortsDegradesOrMatches) {
  const Instance instance = generated_instance(
      40, 4, 100, support::DistributionKind::kPowerLaw, 42);
  const SolveResult full = solve_algorithm2(instance);

  alloc::SuperOptimalResult so = alloc::super_optimal(
      instance.threads, instance.num_servers, instance.capacity);
  const auto linearized = util::linearize(instance.threads, so.c_hat);

  Algorithm2Options no_sort;
  no_sort.sort_by_peak = false;
  no_sort.resort_tail_by_density = false;
  const Assignment degraded =
      assign_algorithm2_with_options(instance, linearized, no_sort);
  EXPECT_EQ(check_assignment(instance, degraded), "");
  // Unsorted assignment can never beat the full algorithm by more than
  // noise on this heavy-tailed workload (and typically loses).
  EXPECT_LE(total_utility(instance, degraded), full.utility + 1e-9);
}

TEST(Algorithm2, DeterministicAcrossRuns) {
  const Instance instance = generated_instance(
      25, 5, 64, support::DistributionKind::kNormal, 77);
  const SolveResult a = solve_algorithm2(instance);
  const SolveResult b = solve_algorithm2(instance);
  EXPECT_EQ(a.assignment.server, b.assignment.server);
  EXPECT_EQ(a.assignment.alloc, b.assignment.alloc);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
}

}  // namespace
}  // namespace aa::core
