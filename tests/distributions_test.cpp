// Tests for the paper's H distributions and the simplex sampler
// (support/distributions.hpp).

#include "support/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/stats.hpp"

namespace aa::support {
namespace {

TEST(UniformDist, SupportAndMoments) {
  Rng rng(1);
  DistributionParams params;
  params.kind = DistributionKind::kUniform;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = draw(params, rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(NormalDist, TruncationKeepsValuesNonnegative) {
  Rng rng(2);
  DistributionParams params;
  params.kind = DistributionKind::kNormal;
  params.mean = 1.0;
  params.stddev = 1.0;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double x = draw(params, rng);
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  // Truncating N(1,1) at 0 shifts the mean up to ~1.288 (mills-ratio).
  EXPECT_NEAR(stats.mean(), 1.288, 0.02);
}

TEST(PowerLawDist, SupportStartsAtXmin) {
  Rng rng(3);
  DistributionParams params;
  params.kind = DistributionKind::kPowerLaw;
  params.alpha = 2.0;
  params.x_min = 1.0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(draw(params, rng), 1.0);
  }
}

TEST(PowerLawDist, TailExponentMatchesViaMedian) {
  // For Pareto with density ~ x^-alpha on [1, inf) the median is
  // 2^(1/(alpha-1)). Check alpha = 3 -> median sqrt(2).
  Rng rng(4);
  DistributionParams params;
  params.kind = DistributionKind::kPowerLaw;
  params.alpha = 3.0;
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(draw(params, rng));
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], std::sqrt(2.0), 0.02);
}

TEST(PowerLawDist, HeavierTailForSmallerAlpha) {
  Rng rng(5);
  DistributionParams heavy;
  heavy.kind = DistributionKind::kPowerLaw;
  heavy.alpha = 1.5;
  DistributionParams light = heavy;
  light.alpha = 4.0;
  int heavy_big = 0;
  int light_big = 0;
  for (int i = 0; i < 20000; ++i) {
    if (draw(heavy, rng) > 10.0) ++heavy_big;
    if (draw(light, rng) > 10.0) ++light_big;
  }
  EXPECT_GT(heavy_big, 10 * std::max(1, light_big));
}

TEST(PowerLawDist, RejectsAlphaAtOrBelowOne) {
  Rng rng(6);
  DistributionParams params;
  params.kind = DistributionKind::kPowerLaw;
  params.alpha = 1.0;
  EXPECT_THROW((void)draw(params, rng), std::invalid_argument);
}

TEST(DiscreteDist, OnlyTwoValuesWithCorrectFrequencies) {
  Rng rng(7);
  DistributionParams params;
  params.kind = DistributionKind::kDiscrete;
  params.gamma = 0.85;
  params.theta = 5.0;
  params.low = 1.0;
  int lows = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double x = draw(params, rng);
    ASSERT_TRUE(x == 1.0 || x == 5.0) << x;
    if (x == 1.0) ++lows;
  }
  EXPECT_NEAR(static_cast<double>(lows) / draws, 0.85, 0.01);
}

TEST(OrderedPair, FirstIsAlwaysAtLeastSecond) {
  Rng rng(8);
  DistributionParams params;
  params.kind = DistributionKind::kUniform;
  for (int i = 0; i < 10000; ++i) {
    const auto [v, w] = draw_ordered_pair(params, rng);
    ASSERT_GE(v, w);
    ASSERT_GE(w, 0.0);
  }
}

TEST(OrderedPair, MatchesMaxMinOfIidPair) {
  // E[max(U1,U2)] = 2/3, E[min(U1,U2)] = 1/3 for uniform.
  Rng rng(9);
  DistributionParams params;
  params.kind = DistributionKind::kUniform;
  RunningStats v_stats;
  RunningStats w_stats;
  for (int i = 0; i < 100000; ++i) {
    const auto [v, w] = draw_ordered_pair(params, rng);
    v_stats.add(v);
    w_stats.add(w);
  }
  EXPECT_NEAR(v_stats.mean(), 2.0 / 3.0, 0.01);
  EXPECT_NEAR(w_stats.mean(), 1.0 / 3.0, 0.01);
}

TEST(Simplex, PartsSumToTotalAndAreNonnegative) {
  Rng rng(10);
  for (const std::size_t k : {1u, 2u, 3u, 10u, 100u}) {
    const auto parts = simplex_spacings(k, 1000.0, rng);
    ASSERT_EQ(parts.size(), k);
    double sum = 0.0;
    for (const double p : parts) {
      ASSERT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1000.0, 1e-6);
  }
}

TEST(Simplex, ZeroPartsIsEmpty) {
  Rng rng(11);
  EXPECT_TRUE(simplex_spacings(0, 10.0, rng).empty());
}

TEST(Simplex, SinglePartGetsEverything) {
  Rng rng(12);
  const auto parts = simplex_spacings(1, 42.0, rng);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_DOUBLE_EQ(parts[0], 42.0);
}

TEST(Simplex, MarginalMeanIsTotalOverK) {
  Rng rng(13);
  RunningStats first;
  for (int i = 0; i < 20000; ++i) {
    first.add(simplex_spacings(5, 100.0, rng)[0]);
  }
  EXPECT_NEAR(first.mean(), 20.0, 0.5);
}

TEST(Simplex, RejectsNegativeTotal) {
  Rng rng(14);
  EXPECT_THROW((void)simplex_spacings(3, -1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace aa::support
