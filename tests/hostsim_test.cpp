// Tests for the hosting-center discrete-event simulator
// (hostsim/simulator.hpp), including validation against M/M/1 closed
// forms — the strongest correctness oracle available for a DES.

#include "hostsim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/heuristics.hpp"
#include "aa/refine.hpp"
#include "utility/utility_function.hpp"

namespace aa::hostsim {
namespace {

using core::Assignment;
using core::Instance;

/// One thread whose utility IS its service rate: f(x) = x (requests/sec per
/// resource unit), so alloc = mu directly.
Instance linear_instance(std::size_t n, core::Resource capacity) {
  Instance instance;
  instance.num_servers = 1;
  instance.capacity = capacity;
  for (std::size_t i = 0; i < n; ++i) {
    instance.threads.push_back(std::make_shared<util::CappedLinearUtility>(
        1.0, static_cast<double>(capacity), capacity));
  }
  return instance;
}

Assignment direct_assignment(const std::vector<double>& rates) {
  Assignment a;
  a.server.assign(rates.size(), 0);
  a.alloc = rates;
  return a;
}

TEST(HostSim, MM1MeanSojournMatchesTheory) {
  // M/M/1 with lambda = 6, mu = 10: E[sojourn] = 1/(mu - lambda) = 0.25,
  // utilization = 0.6, goodput = lambda.
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {6.0};
  config.horizon = 20000.0;
  config.warmup = 1000.0;
  config.seed = 42;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({10.0}), config);
  EXPECT_NEAR(r.per_thread[0].sojourn.mean(), 0.25, 0.02);
  EXPECT_NEAR(r.per_thread[0].utilization(r.measured_span), 0.6, 0.02);
  EXPECT_NEAR(r.goodput(), 6.0, 0.15);
}

TEST(HostSim, MM1HeavierLoadHasLongerSojourn) {
  const Instance instance = linear_instance(2, 100);
  ServiceConfig config;
  config.arrival_rates = {5.0, 9.0};
  config.horizon = 20000.0;
  config.warmup = 1000.0;
  config.seed = 7;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({10.0, 10.0}), config);
  // rho = 0.5 -> 1/(10-5) = 0.2; rho = 0.9 -> 1/(10-9) = 1.0.
  EXPECT_NEAR(r.per_thread[0].sojourn.mean(), 0.2, 0.03);
  EXPECT_NEAR(r.per_thread[1].sojourn.mean(), 1.0, 0.25);
  EXPECT_GT(r.per_thread[1].sojourn.mean(), r.per_thread[0].sojourn.mean());
}

TEST(HostSim, OverloadedQueueCompletesAtServiceRate) {
  // lambda = 20 > mu = 5: completions accrue at mu, not lambda.
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {20.0};
  config.horizon = 5000.0;
  config.warmup = 500.0;
  config.seed = 3;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({5.0}), config);
  EXPECT_NEAR(r.goodput(), 5.0, 0.2);
  EXPECT_NEAR(r.per_thread[0].utilization(r.measured_span), 1.0, 0.01);
}

TEST(HostSim, ZeroServiceRateNeverCompletes) {
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {5.0};
  config.horizon = 100.0;
  config.warmup = 10.0;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({0.0}), config);
  EXPECT_EQ(r.total_completions, 0u);
  EXPECT_GT(r.per_thread[0].arrivals, 0u);
}

TEST(HostSim, ZeroArrivalRateIsIdle) {
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {0.0};
  config.horizon = 100.0;
  config.warmup = 10.0;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({10.0}), config);
  EXPECT_EQ(r.total_completions, 0u);
  EXPECT_DOUBLE_EQ(r.per_thread[0].utilization(r.measured_span), 0.0);
}

TEST(HostSim, DeterministicPerSeed) {
  const Instance instance = linear_instance(3, 100);
  ServiceConfig config;
  config.arrival_rates = {3.0, 5.0, 7.0};
  config.horizon = 500.0;
  config.warmup = 50.0;
  config.seed = 11;
  const SimulationResult a =
      simulate_hosting(instance, direct_assignment({8.0, 8.0, 8.0}), config);
  const SimulationResult b =
      simulate_hosting(instance, direct_assignment({8.0, 8.0, 8.0}), config);
  EXPECT_EQ(a.total_completions, b.total_completions);
  EXPECT_DOUBLE_EQ(a.sojourn_all.mean(), b.sojourn_all.mean());
}

TEST(HostSim, RejectsMalformedConfigs) {
  const Instance instance = linear_instance(1, 100);
  const Assignment a = direct_assignment({5.0});
  ServiceConfig config;
  config.arrival_rates = {1.0, 2.0};  // Wrong arity.
  EXPECT_THROW((void)simulate_hosting(instance, a, config),
               std::invalid_argument);
  config.arrival_rates = {-1.0};
  EXPECT_THROW((void)simulate_hosting(instance, a, config),
               std::invalid_argument);
  config.arrival_rates = {1.0};
  config.warmup = 2000.0;  // warmup >= horizon.
  EXPECT_THROW((void)simulate_hosting(instance, a, config),
               std::invalid_argument);
  Assignment wrong;
  config.warmup = 10.0;
  EXPECT_THROW((void)simulate_hosting(instance, wrong, config),
               std::invalid_argument);
}

TEST(HostSim, AaOnSaturatedUtilitiesBeatsRandomOnGoodput) {
  // End-to-end modeling point: goodput is min(arrival rate, service rate),
  // so the right AA utility is the SATURATED curve min(f_i(x), lambda_i).
  // Maximizing the raw rate can starve queues that would otherwise
  // contribute their full arrival stream; the saturated model fixes this
  // and the resulting placement beats random placement on simulated
  // goodput.
  ServiceConfig config;
  config.arrival_rates.assign(6, 8.0);
  config.horizon = 3000.0;
  config.warmup = 300.0;
  config.seed = 5;

  Instance raw;
  raw.num_servers = 2;
  raw.capacity = 100;
  for (int i = 0; i < 6; ++i) {
    raw.threads.push_back(std::make_shared<util::PowerUtility>(
        1.0 + static_cast<double>(i), 0.5, 100));
  }
  Instance saturated = raw;
  for (std::size_t i = 0; i < raw.threads.size(); ++i) {
    saturated.threads[i] = std::make_shared<util::SaturatedUtility>(
        raw.threads[i], config.arrival_rates[i]);
  }

  // Solve on the saturated model; simulate with the true service curves.
  const core::SolveResult solved =
      core::solve_algorithm2_refined(saturated);
  const SimulationResult aa_run =
      simulate_hosting(raw, solved.assignment, config);

  support::Rng rng(9);
  const SimulationResult rr_run =
      simulate_hosting(raw, core::heuristic_rr(raw, rng), config);

  EXPECT_GE(aa_run.goodput(), rr_run.goodput());
}

TEST(HostSim, SaturatedModelPredictsGoodput) {
  // The saturated-instance utility of the chosen assignment should track
  // simulated goodput closely (queueing noise only) when queues are stable.
  ServiceConfig config;
  config.arrival_rates = {4.0, 6.0, 8.0, 10.0};
  config.horizon = 10000.0;
  config.warmup = 1000.0;
  config.seed = 21;

  Instance raw;
  raw.num_servers = 2;
  raw.capacity = 100;
  for (int i = 0; i < 4; ++i) {
    raw.threads.push_back(std::make_shared<util::PowerUtility>(
        3.0 + static_cast<double>(i), 0.5, 100));
  }
  Instance saturated = raw;
  for (std::size_t i = 0; i < raw.threads.size(); ++i) {
    // Model slightly below the arrival rate: an M/M/1 queue at rho = 1 only
    // completes ~mu, so the utility cap is the achievable goodput.
    saturated.threads[i] = std::make_shared<util::SaturatedUtility>(
        raw.threads[i], config.arrival_rates[i]);
  }
  const core::SolveResult solved =
      core::solve_algorithm2_refined(saturated);
  const SimulationResult run =
      simulate_hosting(raw, solved.assignment, config);
  EXPECT_NEAR(run.goodput(), solved.utility, 0.1 * solved.utility);
}

TEST(HostSim, SojournQuantilesMatchMM1Theory) {
  // M/M/1 sojourn is Exp(mu - lambda): the p-quantile is -ln(1-p)/(mu-l).
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {6.0};
  config.horizon = 40000.0;
  config.warmup = 1000.0;
  config.seed = 99;
  config.collect_samples = true;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({10.0}), config);
  ASSERT_FALSE(r.sojourn_samples.empty());
  EXPECT_NEAR(r.sojourn_quantile(0.5), std::log(2.0) / 4.0, 0.02);
  EXPECT_NEAR(r.sojourn_quantile(0.95), -std::log(0.05) / 4.0, 0.08);
}

TEST(HostSim, SamplesOnlyKeptWhenRequested) {
  const Instance instance = linear_instance(1, 100);
  ServiceConfig config;
  config.arrival_rates = {6.0};
  config.horizon = 200.0;
  config.warmup = 20.0;
  const SimulationResult r =
      simulate_hosting(instance, direct_assignment({10.0}), config);
  EXPECT_TRUE(r.sojourn_samples.empty());
  EXPECT_GT(r.total_completions, 0u);
}

TEST(HostSim, WarmupExcludesEarlyTransient) {
  const Instance instance = linear_instance(1, 100);
  ServiceConfig with_warmup;
  with_warmup.arrival_rates = {6.0};
  with_warmup.horizon = 1000.0;
  with_warmup.warmup = 100.0;
  with_warmup.seed = 13;
  const SimulationResult r = simulate_hosting(
      instance, direct_assignment({10.0}), with_warmup);
  // Completions counted only in the measured window: goodput near lambda,
  // and total count well below lambda * horizon.
  EXPECT_LT(static_cast<double>(r.total_completions),
            6.0 * with_warmup.horizon);
  EXPECT_NEAR(r.goodput(), 6.0, 0.4);
}

}  // namespace
}  // namespace aa::hostsim
