// Tests for the super-optimal allocation (alloc/super_optimal.hpp):
// Definition V.1, Lemmas V.2 and V.3.

#include "alloc/super_optimal.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "aa/exact.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::alloc {
namespace {

using util::PowerUtility;
using util::Resource;
using util::UtilityPtr;

TEST(SuperOptimal, SingleServerEqualsPlainAllocation) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.5, 50),
      std::make_shared<PowerUtility>(2.0, 0.5, 50)};
  const SuperOptimalResult so = super_optimal(threads, 1, 50);
  const AllocationResult direct = allocate_bisection(threads, 50, 50);
  EXPECT_NEAR(so.utility, direct.total_utility, 1e-12);
}

TEST(SuperOptimal, PerThreadAllocationNeverExceedsSingleServer) {
  // Definition V.1 allocates from a pool of mC, but f_i lives on [0, C]:
  // no thread may get more than C.
  std::vector<UtilityPtr> threads{std::make_shared<PowerUtility>(1.0, 0.9, 60)};
  const SuperOptimalResult so = super_optimal(threads, 4, 60);
  ASSERT_EQ(so.c_hat.size(), 1u);
  EXPECT_EQ(so.c_hat[0], 60);  // Capped at C, not 4C.
}

TEST(SuperOptimal, GreedyAndBisectionPathsAgree) {
  support::Rng rng(2024);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kNormal;
  std::vector<UtilityPtr> threads;
  for (int i = 0; i < 12; ++i) {
    threads.push_back(util::generate_utility(100, dist, rng));
  }
  const SuperOptimalResult a = super_optimal(threads, 3, 100);
  const SuperOptimalResult b = super_optimal_greedy(threads, 3, 100);
  EXPECT_NEAR(a.utility, b.utility, 1e-7 * (1.0 + b.utility));
}

TEST(SuperOptimal, UsesFullPoolWhenProfitable) {
  // Lemma V.3: with strictly increasing utilities and enough demand, the
  // super-optimal allocation uses the entire pool mC.
  std::vector<UtilityPtr> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(std::make_shared<PowerUtility>(1.0, 0.7, 40));
  }
  const SuperOptimalResult so = super_optimal(threads, 2, 40);
  const Resource used =
      std::accumulate(so.c_hat.begin(), so.c_hat.end(), Resource{0});
  EXPECT_EQ(used, 80);
}

TEST(SuperOptimal, LemmaV2UpperBoundsExactOptimum) {
  // F* <= F_hat on random small instances, checked against brute force.
  support::Rng rng(31337);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  for (int trial = 0; trial < 10; ++trial) {
    core::Instance instance;
    instance.num_servers = 2;
    instance.capacity = 20;
    for (int i = 0; i < 5; ++i) {
      instance.threads.push_back(util::generate_utility(20, dist, rng));
    }
    const SuperOptimalResult so =
        super_optimal(instance.threads, instance.num_servers,
                      instance.capacity);
    const core::ExactResult exact = core::solve_exact(instance);
    ASSERT_LE(exact.utility, so.utility + 1e-7 * (1.0 + so.utility))
        << "trial " << trial;
  }
}

TEST(SuperOptimal, ZeroCapacityGivesZero) {
  std::vector<UtilityPtr> threads{std::make_shared<PowerUtility>(1.0, 0.5, 10)};
  const SuperOptimalResult so = super_optimal(threads, 3, 0);
  EXPECT_EQ(so.c_hat[0], 0);
  EXPECT_DOUBLE_EQ(so.utility, 0.0);
}

TEST(SuperOptimal, RejectsNegativeCapacity) {
  std::vector<UtilityPtr> threads{std::make_shared<PowerUtility>(1.0, 0.5, 10)};
  EXPECT_THROW((void)super_optimal(threads, 2, -5), std::invalid_argument);
}

}  // namespace
}  // namespace aa::alloc
