// Direct checks of the paper's intermediate lemmas on randomized instances
// — beyond the end-to-end approximation property, these pin the *internal*
// structure the proofs rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "aa/algorithm2.hpp"
#include "alloc/super_optimal.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

struct RunArtifacts {
  Instance instance;
  std::vector<Resource> c_hat;
  std::vector<util::Linearized> linearized;
  Assignment assignment;
};

RunArtifacts run_algorithm2(std::size_t n, std::size_t m, Resource capacity,
                            support::DistributionKind kind,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = kind;
  RunArtifacts artifacts;
  artifacts.instance.num_servers = m;
  artifacts.instance.capacity = capacity;
  artifacts.instance.threads =
      util::generate_utilities(n, capacity, dist, rng);
  alloc::SuperOptimalResult so = alloc::super_optimal(
      artifacts.instance.threads, m, capacity);
  artifacts.c_hat = std::move(so.c_hat);
  artifacts.linearized =
      util::linearize(artifacts.instance.threads, artifacts.c_hat);
  artifacts.assignment =
      assign_algorithm2(artifacts.instance, artifacts.linearized);
  return artifacts;
}

class PaperLemmas : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PaperLemmas,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST_P(PaperLemmas, LemmaV5AtMostOneUnfullThreadPerServer) {
  const RunArtifacts a = run_algorithm2(
      21, 4, 60, support::DistributionKind::kPowerLaw, 10 + GetParam());
  std::vector<int> unfull(a.instance.num_servers, 0);
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    if (a.assignment.alloc[i] < static_cast<double>(a.c_hat[i]) - 0.5) {
      ++unfull[a.assignment.server[i]];
    }
  }
  for (const int count : unfull) ASSERT_LE(count, 1);
}

TEST_P(PaperLemmas, LemmaV7UnfullThreadsKeepTheirShareFraction) {
  // sum_{i in E} c_i >= (|E| / m) * sum_{i in E} c_hat_i.
  const RunArtifacts a = run_algorithm2(
      26, 4, 50, support::DistributionKind::kUniform, 40 + GetParam());
  double unfull_allocated = 0.0;
  double unfull_demand = 0.0;
  std::size_t unfull_count = 0;
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    if (a.assignment.alloc[i] < static_cast<double>(a.c_hat[i]) - 0.5) {
      unfull_allocated += a.assignment.alloc[i];
      unfull_demand += static_cast<double>(a.c_hat[i]);
      ++unfull_count;
    }
  }
  if (unfull_count == 0) return;  // Vacuous for this seed.
  const double m = static_cast<double>(a.instance.num_servers);
  ASSERT_GE(unfull_allocated,
            (static_cast<double>(unfull_count) / m) * unfull_demand - 1e-6);
}

TEST_P(PaperLemmas, LemmaV8FirstMThreadsHaveMaximalPeaks) {
  // All unfull threads' peaks are bounded by the smallest full thread's
  // peak among the top-m (the gamma bound used by Corollary V.9).
  const RunArtifacts a = run_algorithm2(
      18, 3, 40, support::DistributionKind::kNormal, 70 + GetParam());
  std::size_t full_count = 0;
  double max_unfull_peak = 0.0;
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    const bool full =
        a.assignment.alloc[i] >= static_cast<double>(a.c_hat[i]) - 0.5;
    if (full) {
      ++full_count;
    } else {
      max_unfull_peak = std::max(max_unfull_peak, a.linearized[i].peak);
    }
  }
  ASSERT_GE(full_count, std::min<std::size_t>(18, 3));
  // gamma = max unfull peak; at least m full threads have peak >= gamma.
  std::size_t full_above_gamma = 0;
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    const bool full =
        a.assignment.alloc[i] >= static_cast<double>(a.c_hat[i]) - 0.5;
    if (full && a.linearized[i].peak >= max_unfull_peak - 1e-9) {
      ++full_above_gamma;
    }
  }
  ASSERT_GE(full_above_gamma, std::min<std::size_t>(18, 3));
}

TEST_P(PaperLemmas, LemmaV10HigherDensityUnfullThreadsGetMore) {
  // For any two unfull threads, higher ramp density implies >= allocation.
  const RunArtifacts a = run_algorithm2(
      30, 4, 40, support::DistributionKind::kDiscrete, 100 + GetParam());
  std::vector<std::size_t> unfull;
  for (std::size_t i = 0; i < a.assignment.size(); ++i) {
    if (a.assignment.alloc[i] < static_cast<double>(a.c_hat[i]) - 0.5 &&
        a.c_hat[i] > 0) {
      unfull.push_back(i);
    }
  }
  for (const std::size_t i : unfull) {
    for (const std::size_t j : unfull) {
      if (a.linearized[i].density() > a.linearized[j].density() + 1e-9) {
        ASSERT_GE(a.assignment.alloc[i], a.assignment.alloc[j] - 1e-9)
            << "thread " << i << " vs " << j;
      }
    }
  }
}

TEST_P(PaperLemmas, SuperOptimalPoolFullyUsedForStrictlyIncreasingUtilities) {
  // Lemma V.3 analogue for generated utilities (strictly increasing with
  // probability 1 when demand exceeds supply): sum c_hat == m*C.
  const RunArtifacts a = run_algorithm2(
      40, 4, 30, support::DistributionKind::kUniform, 130 + GetParam());
  const Resource used = std::accumulate(a.c_hat.begin(), a.c_hat.end(),
                                        Resource{0});
  ASSERT_EQ(used, 4 * 30);
}

}  // namespace
}  // namespace aa::core
