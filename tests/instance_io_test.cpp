// Tests for instance/assignment serialization (io/instance_io.hpp).

#include "io/instance_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "aa/heterogeneous.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::io {
namespace {

using core::Instance;
using support::json_parse;

Instance analytic_instance() {
  Instance instance;
  instance.num_servers = 3;
  instance.capacity = 50;
  instance.threads = {
      std::make_shared<util::PowerUtility>(2.0, 0.5, 50),
      std::make_shared<util::CappedLinearUtility>(1.5, 20.0, 50),
      std::make_shared<util::LogUtility>(4.0, 0.2, 50),
  };
  return instance;
}

TEST(InstanceIo, AnalyticRoundTripPreservesParameters) {
  const Instance original = analytic_instance();
  const support::JsonValue document = instance_to_json(original);
  const Instance loaded = instance_from_json(document);
  ASSERT_EQ(loaded.num_servers, 3u);
  ASSERT_EQ(loaded.capacity, 50);
  ASSERT_EQ(loaded.num_threads(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (const double x : {0.0, 7.5, 20.0, 50.0}) {
      ASSERT_DOUBLE_EQ(loaded.threads[i]->value(x),
                       original.threads[i]->value(x))
          << "thread " << i << " at " << x;
    }
  }
  // Analytic types survive as their compact forms, not tabulations.
  EXPECT_EQ(document.at("threads").as_array()[0].at("type").as_string(),
            "power");
  EXPECT_EQ(document.at("threads").as_array()[1].at("type").as_string(),
            "capped_linear");
  EXPECT_EQ(document.at("threads").as_array()[2].at("type").as_string(),
            "log");
}

TEST(InstanceIo, GeneratedUtilitiesRoundTripViaTabulation) {
  support::Rng rng(5);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance original;
  original.num_servers = 2;
  original.capacity = 40;
  original.threads = util::generate_utilities(5, 40, dist, rng);

  const Instance loaded = instance_from_json(instance_to_json(original));
  for (std::size_t i = 0; i < original.num_threads(); ++i) {
    for (util::Resource k = 0; k <= 40; ++k) {
      ASSERT_NEAR(loaded.threads[i]->value(static_cast<double>(k)),
                  original.threads[i]->value(static_cast<double>(k)), 1e-12);
    }
  }
}

TEST(InstanceIo, SolvingLoadedInstanceMatchesOriginal) {
  const Instance original = analytic_instance();
  const Instance loaded = instance_from_json(instance_to_json(original));
  const double original_utility =
      core::solve_algorithm2_refined(original).utility;
  const double loaded_utility =
      core::solve_algorithm2_refined(loaded).utility;
  EXPECT_NEAR(original_utility, loaded_utility, 1e-9);
}

TEST(InstanceIo, ParsesPiecewiseDocuments) {
  const Instance loaded = instance_from_json(json_parse(R"({
    "num_servers": 1,
    "capacity": 20,
    "threads": [
      {"type": "piecewise", "xs": [0, 10, 20], "ys": [0, 8, 12]}
    ]
  })"));
  EXPECT_DOUBLE_EQ(loaded.threads[0]->value(5.0), 4.0);
  EXPECT_DOUBLE_EQ(loaded.threads[0]->value(15.0), 10.0);
}

TEST(InstanceIo, RejectsMalformedDocuments) {
  EXPECT_THROW((void)instance_from_json(json_parse("{}")),
               std::runtime_error);
  EXPECT_THROW((void)instance_from_json(json_parse(
                   R"({"num_servers": 0, "capacity": 5, "threads": []})")),
               std::runtime_error);
  EXPECT_THROW(
      (void)instance_from_json(json_parse(
          R"({"num_servers": 1, "capacity": 5,
              "threads": [{"type": "warp_drive"}]})")),
      std::runtime_error);
  // Utility domain smaller than capacity -> Instance::validate fires.
  EXPECT_THROW(
      (void)instance_from_json(json_parse(
          R"({"num_servers": 1, "capacity": 5,
              "threads": [{"type": "tabulated", "values": [0, 1]}]})")),
      std::invalid_argument);
}

TEST(AssignmentIo, RoundTrip) {
  const Instance instance = analytic_instance();
  const core::SolveResult solved = core::solve_algorithm2_refined(instance);
  const support::JsonValue document =
      assignment_to_json(instance, solved.assignment);
  const core::Assignment loaded = assignment_from_json(document);
  EXPECT_EQ(loaded.server, solved.assignment.server);
  EXPECT_EQ(loaded.alloc, solved.assignment.alloc);
  EXPECT_NEAR(document.at("utility").as_number(), solved.utility, 1e-9);
}

TEST(AssignmentIo, RejectsArityMismatchAndNegatives) {
  EXPECT_THROW((void)assignment_from_json(
                   json_parse(R"({"server": [0, 1], "alloc": [1.0]})")),
               std::runtime_error);
  EXPECT_THROW((void)assignment_from_json(
                   json_parse(R"({"server": [-1], "alloc": [1.0]})")),
               std::runtime_error);
}

TEST(HeteroIo, RoundTripPreservesCapacitiesAndCurves) {
  core::HeteroInstance original;
  original.capacities = {40, 20, 10};
  original.threads = {
      std::make_shared<util::PowerUtility>(2.0, 0.5, 40),
      std::make_shared<util::CappedLinearUtility>(1.0, 30.0, 40),
  };
  const support::JsonValue document = hetero_instance_to_json(original);
  EXPECT_TRUE(is_hetero_document(document));
  const core::HeteroInstance loaded = hetero_instance_from_json(document);
  EXPECT_EQ(loaded.capacities, original.capacities);
  for (std::size_t i = 0; i < original.num_threads(); ++i) {
    for (const double x : {0.0, 15.0, 40.0}) {
      ASSERT_DOUBLE_EQ(loaded.threads[i]->value(x),
                       original.threads[i]->value(x));
    }
  }
  // Solving the loaded instance matches the original.
  EXPECT_NEAR(core::solve_algorithm2_hetero(loaded).utility,
              core::solve_algorithm2_hetero(original).utility, 1e-9);
}

TEST(HeteroIo, HomogeneousDocumentIsNotHetero) {
  EXPECT_FALSE(is_hetero_document(instance_to_json(analytic_instance())));
  EXPECT_FALSE(is_hetero_document(json_parse("[1]")));
}

TEST(HeteroIo, RejectsMalformedCapacities) {
  EXPECT_THROW((void)hetero_instance_from_json(
                   json_parse(R"({"capacities": [], "threads": []})")),
               std::invalid_argument);
  EXPECT_THROW((void)hetero_instance_from_json(json_parse(
                   R"({"capacities": [10, -5], "threads": []})")),
               std::invalid_argument);
}

TEST(FileIo, SaveAndLoadInstance) {
  const std::string path = "/tmp/aa_io_test_instance.json";
  const Instance original = analytic_instance();
  save_instance(original, path);
  const Instance loaded = load_instance(path);
  EXPECT_EQ(loaded.num_threads(), original.num_threads());
  EXPECT_EQ(loaded.capacity, original.capacity);
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)load_instance("/nonexistent/missing.json"),
               std::runtime_error);
  EXPECT_THROW(write_file("/nonexistent/dir/file.txt", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace aa::io
