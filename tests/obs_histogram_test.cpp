// Tests for obs::Histogram (src/obs/histogram.hpp): exact merge parity with
// a sequentially fed reference under the per-worker-then-merge discipline,
// quantile agreement with the exact support::quantiles of the raw stream to
// within one bucket width, bucket-boundary placement (inclusive power-of-two
// upper bounds), saturation, and rejection of negative/non-finite samples.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace aa::obs {
namespace {

TEST(Histogram, EmptyReadsAsZeros) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, BucketBoundariesAreInclusivePowersOfTwo) {
  // upper(b) = kMinUpper * 2^b and the bound is inclusive: a value exactly
  // on a boundary lands in the *lower* bucket, matching the Prometheus `le`
  // (less-or-equal) convention the exposition uses.
  for (std::size_t b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(b),
                     Histogram::kMinUpper * std::ldexp(1.0, static_cast<int>(b)))
        << "bucket " << b;
    const double upper = Histogram::bucket_upper(b);
    EXPECT_EQ(Histogram::bucket_index(upper), b) << "on-boundary " << upper;
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(
                  upper, std::numeric_limits<double>::infinity())),
              b + 1)
        << "just above " << upper;
  }
}

TEST(Histogram, TinyValuesLandInBucketZero) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinUpper), 0u);
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinUpper / 1024.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::denorm_min()),
            0u);
}

TEST(Histogram, HugeValuesSaturateIntoTheLastBucket) {
  const std::size_t last = Histogram::kNumBuckets - 1;
  const double top = Histogram::bucket_upper(last);
  EXPECT_EQ(Histogram::bucket_index(top), last);
  EXPECT_EQ(Histogram::bucket_index(2.0 * top), last);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::max()), last);

  Histogram h;
  EXPECT_TRUE(h.sample(2.0 * top));
  EXPECT_EQ(h.bucket_count(last), 1u);
  EXPECT_EQ(h.count(), 1u);  // Saturated, not dropped.
  EXPECT_DOUBLE_EQ(h.max(), 2.0 * top);
}

TEST(Histogram, NegativeAndNonFiniteSamplesAreRejected) {
  Histogram h;
  EXPECT_FALSE(h.sample(-1.0));
  EXPECT_FALSE(h.sample(-0.5 * Histogram::kMinUpper));
  EXPECT_FALSE(h.sample(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(h.sample(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(h.sample(-std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.sample(0.0));  // Zero is a legal latency.
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeMatchesSequentiallyFedReference) {
  // The worker-merge discipline (one histogram per worker, bucket-wise
  // merge at the join point) must reproduce the sequential result exactly:
  // identical bucket counts, count, sum, min, and max.
  support::ThreadPool pool(4);
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kSamplesPerWorker = 1000;
  std::vector<std::vector<double>> streams(kWorkers);
  std::mt19937 rng(20160523);
  std::lognormal_distribution<double> latency(0.0, 2.0);
  for (auto& stream : streams) {
    stream.reserve(kSamplesPerWorker);
    for (std::size_t s = 0; s < kSamplesPerWorker; ++s) {
      stream.push_back(latency(rng));
    }
  }

  std::vector<Histogram> shards(kWorkers);
  support::parallel_for(pool, 0, kWorkers, [&](std::size_t w) {
    for (const double value : streams[w]) shards[w].sample(value);
  });
  Histogram merged;
  for (const Histogram& shard : shards) merged.merge(shard);

  Histogram reference;
  std::vector<double> all;
  all.reserve(kWorkers * kSamplesPerWorker);
  for (const auto& stream : streams) {
    for (const double value : stream) {
      reference.sample(value);
      all.push_back(value);
    }
  }

  EXPECT_EQ(merged.count(), reference.count());
  // Bucket counts merge exactly; the sum is a float reduction whose
  // addition order differs between the sharded and sequential runs.
  EXPECT_NEAR(merged.sum(), reference.sum(), 1e-9 * reference.sum());
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(merged.bucket_count(b), reference.bucket_count(b))
        << "bucket " << b;
  }

  // Quantile estimates carry at most one bucket width (factor of 2) of
  // error against the exact order statistics of the raw stream.
  constexpr std::array<double, 4> kQs{0.5, 0.9, 0.99, 0.999};
  const std::vector<double> exact = support::quantiles(all, kQs);
  const std::vector<double> approx = merged.quantiles(kQs);
  ASSERT_EQ(approx.size(), exact.size());
  for (std::size_t i = 0; i < kQs.size(); ++i) {
    EXPECT_GE(approx[i], 0.5 * exact[i]) << "q=" << kQs[i];
    EXPECT_LE(approx[i], 2.0 * exact[i]) << "q=" << kQs[i];
  }
}

TEST(Histogram, QuantilesAreExactForSingleValueStreams) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.sample(3.25);
  // All mass in one bucket and min == max: interpolation clamps to the
  // observed range, so every quantile is the value itself.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.25);
}

TEST(Histogram, QuantilesAreMonotoneAndWithinRange) {
  Histogram h;
  std::mt19937 rng(7);
  std::exponential_distribution<double> latency(0.5);
  for (int i = 0; i < 5000; ++i) h.sample(latency(rng));
  double previous = h.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, previous) << "q=" << q;
    EXPECT_GE(estimate, h.min());
    EXPECT_LE(estimate, h.max());
    previous = estimate;
  }
}

TEST(Histogram, JsonListsOnlyOccupiedBuckets) {
  Histogram h;
  h.sample(1.0);
  h.sample(1.5);
  h.sample(100.0);
  const support::JsonValue blob =
      support::json_parse(h.to_json().dump());
  EXPECT_EQ(blob.at("count").as_int(), 3);
  const auto& buckets = blob.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 3u);  // 1.0 and 1.5 split across two buckets.
  std::uint64_t total = 0;
  for (const auto& bucket : buckets) {
    total += static_cast<std::uint64_t>(bucket.at("count").as_int());
    EXPECT_GT(bucket.at("le").as_number(), 0.0);
  }
  EXPECT_EQ(total, 3u);
}

TEST(MetricsHistograms, SampleCreatesAndMergesNamedHistograms) {
  Metrics a;
  EXPECT_TRUE(a.sample("svc/request_ms", 1.0));
  EXPECT_TRUE(a.sample("svc/request_ms", 2.0));
  EXPECT_FALSE(a.sample("svc/request_ms", -1.0));  // Rejection propagates.
  Metrics b;
  EXPECT_TRUE(b.sample("svc/request_ms", 4.0));
  EXPECT_TRUE(b.sample("svc/queue_depth", 3.0));
  a.merge(b);
  const Histogram* request = a.histogram("svc/request_ms");
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->count(), 3u);
  EXPECT_DOUBLE_EQ(request->sum(), 7.0);
  ASSERT_NE(a.histogram("svc/queue_depth"), nullptr);
  EXPECT_EQ(a.histogram("svc/queue_depth")->count(), 1u);
  EXPECT_EQ(a.histogram("never_sampled"), nullptr);
}

}  // namespace
}  // namespace aa::obs
