// Tests for the utility-function families (utility/utility_function.hpp).

#include "utility/utility_function.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace aa::util {
namespace {

TEST(CappedLinear, ValuesAndSaturation) {
  const CappedLinearUtility f(2.0, 5.0, 10);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 6.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(9.0), 10.0);
}

TEST(CappedLinear, ClampsToDomain) {
  const CappedLinearUtility f(1.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(f.value(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(50.0), 10.0);  // Clamped to capacity 10.
}

TEST(CappedLinear, MarginalsAreSlopeThenZero) {
  const CappedLinearUtility f(3.0, 4.0, 10);
  EXPECT_DOUBLE_EQ(f.marginal(1), 3.0);
  EXPECT_DOUBLE_EQ(f.marginal(4), 3.0);
  EXPECT_DOUBLE_EQ(f.marginal(5), 0.0);
}

TEST(CappedLinear, IsValidOnGrid) {
  EXPECT_TRUE(is_valid_on_grid(CappedLinearUtility(2.0, 3.5, 10)));
}

TEST(CappedLinear, RejectsNegativeParameters) {
  EXPECT_THROW(CappedLinearUtility(-1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(CappedLinearUtility(1.0, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(CappedLinearUtility(1.0, 1.0, -1), std::invalid_argument);
}

TEST(Power, MatchesPow) {
  const PowerUtility f(2.0, 0.5, 100);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(4.0), 4.0);
  EXPECT_DOUBLE_EQ(f.value(9.0), 6.0);
}

TEST(Power, BetaOneIsLinear) {
  const PowerUtility f(3.0, 1.0, 100);
  EXPECT_DOUBLE_EQ(f.value(7.0), 21.0);
  EXPECT_TRUE(is_valid_on_grid(f));
}

TEST(Power, ConcaveOnGrid) {
  EXPECT_TRUE(is_valid_on_grid(PowerUtility(1.0, 0.3, 200)));
  EXPECT_TRUE(is_valid_on_grid(PowerUtility(5.0, 0.9, 200)));
}

TEST(Power, RejectsBadBeta) {
  EXPECT_THROW(PowerUtility(1.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(PowerUtility(1.0, 1.5, 10), std::invalid_argument);
  EXPECT_THROW(PowerUtility(-1.0, 0.5, 10), std::invalid_argument);
}

TEST(Log, MatchesFormulaAndConcavity) {
  const LogUtility f(2.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_NEAR(f.value(10.0), 2.0 * std::log(2.0), 1e-12);
  EXPECT_TRUE(is_valid_on_grid(f));
}

TEST(Scaled, ScalesValueAndMarginal) {
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 100);
  const ScaledUtility f(base, 3.0);
  EXPECT_DOUBLE_EQ(f.value(4.0), 6.0);
  EXPECT_DOUBLE_EQ(f.marginal(1), 3.0 * base->marginal(1));
  EXPECT_EQ(f.capacity(), 100);
  EXPECT_TRUE(is_valid_on_grid(f));
}

TEST(Scaled, ZeroFactorFlattens) {
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 10);
  const ScaledUtility f(base, 0.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 0.0);
}

TEST(Scaled, RejectsBadArguments) {
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 10);
  EXPECT_THROW(ScaledUtility(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(ScaledUtility(base, -1.0), std::invalid_argument);
}

TEST(Saturated, CapsBaseValue) {
  const auto base = std::make_shared<CappedLinearUtility>(2.0, 100.0, 100);
  const SaturatedUtility f(base, 10.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 6.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(50.0), 10.0);
  EXPECT_EQ(f.capacity(), 100);
  EXPECT_TRUE(is_valid_on_grid(f));
}

TEST(Saturated, ZeroCeilingIsFlatZero) {
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 10);
  const SaturatedUtility f(base, 0.0);
  EXPECT_DOUBLE_EQ(f.value(9.0), 0.0);
}

TEST(Saturated, RejectsBadArguments) {
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 10);
  EXPECT_THROW(SaturatedUtility(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(SaturatedUtility(base, -0.5), std::invalid_argument);
}

TEST(PiecewiseLinear, InterpolatesBetweenBreakpoints) {
  const PiecewiseLinearUtility f({0.0, 2.0, 6.0}, {0.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(f.value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.value(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f.value(4.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(6.0), 6.0);
  EXPECT_EQ(f.capacity(), 6);
  EXPECT_TRUE(is_valid_on_grid(f));
}

TEST(PiecewiseLinear, RejectsNonConcave) {
  EXPECT_THROW(PiecewiseLinearUtility({0.0, 1.0, 2.0}, {0.0, 1.0, 3.0}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsDecreasing) {
  EXPECT_THROW(PiecewiseLinearUtility({0.0, 1.0, 2.0}, {0.0, 2.0, 1.0}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsMalformedBreakpoints) {
  EXPECT_THROW(PiecewiseLinearUtility({1.0, 2.0}, {0.0, 1.0}),
               std::invalid_argument);  // Must start at 0.
  EXPECT_THROW(PiecewiseLinearUtility({0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearUtility({0.0, 0.0}, {0.0, 1.0}),
               std::invalid_argument);  // xs not increasing.
  EXPECT_THROW(PiecewiseLinearUtility({0.0, 1.5}, {0.0, 1.0}),
               std::invalid_argument);  // Non-integral capacity.
}

TEST(Tabulated, ValueInterpolatesLinearly) {
  const TabulatedUtility f(std::vector<double>{0.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.value(1.5), 2.5);
  EXPECT_DOUBLE_EQ(f.value(2.0), 3.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 3.0);  // Clamped.
  EXPECT_EQ(f.capacity(), 2);
}

TEST(Tabulated, MarginalFromGrid) {
  const TabulatedUtility f(std::vector<double>{0.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.marginal(1), 2.0);
  EXPECT_DOUBLE_EQ(f.marginal(2), 1.0);
  EXPECT_DOUBLE_EQ(f.marginal(3), 0.0);  // Out of range.
  EXPECT_DOUBLE_EQ(f.marginal(0), 0.0);
}

TEST(Tabulated, RejectsNonConcaveOrDecreasing) {
  EXPECT_THROW(TabulatedUtility(std::vector<double>{0.0, 1.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(TabulatedUtility(std::vector<double>{0.0, 2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(TabulatedUtility(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(TabulatedUtility(std::vector<double>{-1.0, 0.0}),
               std::invalid_argument);
}

TEST(Tabulated, RepairIsIdentityOnConcaveInput) {
  const std::vector<double> concave{0.0, 3.0, 5.0, 6.0, 6.5};
  const TabulatedUtility f =
      TabulatedUtility::from_samples_with_repair(concave);
  for (std::size_t k = 0; k < concave.size(); ++k) {
    EXPECT_DOUBLE_EQ(f.value(static_cast<double>(k)), concave[k]);
  }
}

TEST(Tabulated, RepairFixesConvexBump) {
  // Marginals 1, 3 are increasing; PAV pools them into 2, 2.
  const std::vector<double> bumpy{0.0, 1.0, 4.0};
  const TabulatedUtility f = TabulatedUtility::from_samples_with_repair(bumpy);
  EXPECT_TRUE(is_valid_on_grid(f));
  EXPECT_DOUBLE_EQ(f.value(2.0), 4.0);  // Endpoint preserved (sum of PAV).
  EXPECT_DOUBLE_EQ(f.value(1.0), 2.0);
}

TEST(Tabulated, RepairClampsNegativesAndDecreases) {
  const std::vector<double> bad{-1.0, 0.5, 0.2};
  const TabulatedUtility f = TabulatedUtility::from_samples_with_repair(bad);
  EXPECT_TRUE(is_valid_on_grid(f));
  EXPECT_GE(f.value(0.0), 0.0);
  EXPECT_GE(f.marginal(2), 0.0);
}

TEST(IsValidOnGrid, DetectsViolations) {
  // A convex function must be rejected. Build via raw Tabulated ctor with a
  // huge tolerance to bypass construction checks, then validate strictly.
  const TabulatedUtility convex(std::vector<double>{0.0, 1.0, 3.0}, 10.0);
  EXPECT_FALSE(is_valid_on_grid(convex, 1e-9));
}

TEST(DefaultMarginal, DerivedFromValue) {
  const PowerUtility f(1.0, 0.5, 100);
  EXPECT_NEAR(f.marginal(4), f.value(4.0) - f.value(3.0), 1e-12);
}

}  // namespace
}  // namespace aa::util
