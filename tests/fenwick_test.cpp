// Tests for the Fenwick tree (support/fenwick.hpp).

#include "support/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/prng.hpp"

namespace aa::support {
namespace {

TEST(Fenwick, EmptyPrefixSums) {
  FenwickTree tree(10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(tree.prefix_sum(i), 0);
}

TEST(Fenwick, SinglePointUpdate) {
  FenwickTree tree(8);
  tree.add(3, 5);
  EXPECT_EQ(tree.prefix_sum(2), 0);
  EXPECT_EQ(tree.prefix_sum(3), 5);
  EXPECT_EQ(tree.prefix_sum(7), 5);
}

TEST(Fenwick, NegativeDeltas) {
  FenwickTree tree(4);
  tree.add(1, 10);
  tree.add(1, -4);
  EXPECT_EQ(tree.prefix_sum(3), 6);
}

TEST(Fenwick, RangeSumBasics) {
  FenwickTree tree(6);
  for (std::size_t i = 0; i < 6; ++i) {
    tree.add(i, static_cast<std::int64_t>(i + 1));  // 1..6
  }
  EXPECT_EQ(tree.range_sum(0, 5), 21);
  EXPECT_EQ(tree.range_sum(2, 4), 3 + 4 + 5);
  EXPECT_EQ(tree.range_sum(3, 3), 4);
  EXPECT_EQ(tree.range_sum(4, 2), 0);  // Inverted range.
}

TEST(Fenwick, MatchesNaiveOnRandomWorkload) {
  const std::size_t size = 200;
  FenwickTree tree(size);
  std::vector<std::int64_t> reference(size, 0);
  Rng rng(99);
  for (int op = 0; op < 2000; ++op) {
    const auto pos = static_cast<std::size_t>(rng.uniform_below(size));
    const auto delta =
        static_cast<std::int64_t>(rng.uniform_below(21)) - 10;
    tree.add(pos, delta);
    reference[pos] += delta;
    const auto lo = static_cast<std::size_t>(rng.uniform_below(size));
    const auto hi = static_cast<std::size_t>(rng.uniform_below(size));
    if (lo <= hi) {
      std::int64_t expected = 0;
      for (std::size_t i = lo; i <= hi; ++i) expected += reference[i];
      ASSERT_EQ(tree.range_sum(lo, hi), expected);
    }
  }
}

TEST(Fenwick, BoundsChecked) {
  FenwickTree tree(5);
  EXPECT_THROW(tree.add(5, 1), std::out_of_range);
  EXPECT_THROW((void)tree.prefix_sum(5), std::out_of_range);
  EXPECT_EQ(tree.size(), 5u);
}

}  // namespace
}  // namespace aa::support
