// Tests for synthetic trace generation (cachesim/trace.hpp).

#include "cachesim/trace.hpp"

#include "cachesim/miss_curve.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace aa::cachesim {
namespace {

TEST(Trace, SequentialTouchesEveryLineOnce) {
  const Trace trace = sequential_trace(100);
  ASSERT_EQ(trace.size(), 100u);
  const std::unordered_set<std::uint64_t> distinct(trace.begin(), trace.end());
  EXPECT_EQ(distinct.size(), 100u);
}

TEST(Trace, GeneratorRespectsLength) {
  support::Rng rng(1);
  const Trace trace =
      generate_trace(TraceConfig::cache_friendly(64, 5000), rng);
  EXPECT_EQ(trace.size(), 5000u);
}

TEST(Trace, CacheFriendlyStaysInsideHotPool) {
  support::Rng rng(2);
  const Trace trace =
      generate_trace(TraceConfig::cache_friendly(64, 10000), rng);
  for (const std::uint64_t line : trace) ASSERT_LT(line, 64u);
}

TEST(Trace, PoolsOccupyDisjointRanges) {
  support::Rng rng(3);
  TraceConfig config;
  config.pools = {{10, 0.5}, {20, 0.5}};
  config.length = 5000;
  const Trace trace = generate_trace(config, rng);
  bool saw_first = false;
  bool saw_second = false;
  for (const std::uint64_t line : trace) {
    ASSERT_LT(line, 30u);
    if (line < 10) saw_first = true;
    if (line >= 10) saw_second = true;
  }
  EXPECT_TRUE(saw_first);
  EXPECT_TRUE(saw_second);
}

TEST(Trace, WeightsControlAccessShares) {
  support::Rng rng(4);
  TraceConfig config;
  config.pools = {{8, 0.9}, {1000, 0.1}};
  config.length = 50000;
  const Trace trace = generate_trace(config, rng);
  std::size_t hot = 0;
  for (const std::uint64_t line : trace) {
    if (line < 8) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(trace.size()),
              0.9, 0.02);
}

TEST(Trace, MixedPresetHasThreePools) {
  const TraceConfig config = TraceConfig::mixed(16, 256, 4096, 1000);
  ASSERT_EQ(config.pools.size(), 3u);
  EXPECT_EQ(config.pools[0].lines, 16u);
  EXPECT_EQ(config.pools[2].lines, 4096u);
}

TEST(Trace, RejectsDegenerateConfigs) {
  support::Rng rng(5);
  TraceConfig empty;
  empty.length = 10;
  EXPECT_THROW((void)generate_trace(empty, rng), std::invalid_argument);

  TraceConfig zero_pool;
  zero_pool.pools = {{0, 1.0}};
  EXPECT_THROW((void)generate_trace(zero_pool, rng), std::invalid_argument);

  TraceConfig zero_weight;
  zero_weight.pools = {{10, 0.0}};
  EXPECT_THROW((void)generate_trace(zero_weight, rng), std::invalid_argument);

  TraceConfig negative;
  negative.pools = {{10, -1.0}};
  EXPECT_THROW((void)generate_trace(negative, rng), std::invalid_argument);
}

TEST(ZipfTrace, RespectsLengthAndSupport) {
  support::Rng rng(20);
  const Trace trace =
      generate_zipf_trace({.lines = 64, .exponent = 1.0, .length = 5000}, rng);
  ASSERT_EQ(trace.size(), 5000u);
  for (const std::uint64_t line : trace) ASSERT_LT(line, 64u);
}

TEST(ZipfTrace, PopularityIsRankOrdered) {
  support::Rng rng(21);
  const Trace trace = generate_zipf_trace(
      {.lines = 16, .exponent = 1.2, .length = 100000}, rng);
  std::vector<std::size_t> counts(16, 0);
  for (const std::uint64_t line : trace) ++counts[line];
  // Line 0 clearly dominates, and the top line beats the bottom line.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 8 * counts[15]);
}

TEST(ZipfTrace, ExponentControlsConcentration) {
  support::Rng rng(22);
  const ZipfTraceConfig flat{.lines = 256, .exponent = 0.5, .length = 50000};
  const ZipfTraceConfig steep{.lines = 256, .exponent = 2.0, .length = 50000};
  auto head_share = [&](const Trace& trace) {
    std::size_t head = 0;
    for (const std::uint64_t line : trace) {
      if (line < 8) ++head;
    }
    return static_cast<double>(head) / static_cast<double>(trace.size());
  };
  EXPECT_GT(head_share(generate_zipf_trace(steep, rng)),
            head_share(generate_zipf_trace(flat, rng)) + 0.2);
}

TEST(ZipfTrace, ProducesSmoothConcaveUtility) {
  // The Zipf miss curve decays smoothly, so the PAV repair should be nearly
  // a no-op and the utility strictly increasing over many way counts.
  support::Rng rng(23);
  const Trace trace = generate_zipf_trace(
      {.lines = 2048, .exponent = 1.0, .length = 40000}, rng);
  const MissCurve curve =
      build_miss_curve(compute_stack_distances(trace),
                       {.total_ways = 16, .lines_per_way = 64});
  const util::UtilityPtr utility =
      utility_from_miss_curve(curve, PerfModel{});
  EXPECT_TRUE(util::is_valid_on_grid(*utility, 1e-9));
  EXPECT_GT(utility->value(16.0), utility->value(1.0));
}

TEST(ZipfTrace, Rejections) {
  support::Rng rng(24);
  EXPECT_THROW((void)generate_zipf_trace({.lines = 0}, rng),
               std::invalid_argument);
  EXPECT_THROW(
      (void)generate_zipf_trace({.lines = 8, .exponent = 0.0}, rng),
      std::invalid_argument);
}

TEST(Trace, DeterministicPerSeed) {
  support::Rng rng1(6);
  support::Rng rng2(6);
  const TraceConfig config = TraceConfig::mixed(8, 64, 512, 2000);
  EXPECT_EQ(generate_trace(config, rng1), generate_trace(config, rng2));
}

}  // namespace
}  // namespace aa::cachesim
