// Tests for the branch-and-bound exact solver (aa/branch_and_bound.hpp).

#include "aa/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/exact.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            support::DistributionKind kind,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = kind;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

class BnbVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST_P(BnbVsBruteForce, MatchesExhaustiveOptimum) {
  const auto kind = static_cast<support::DistributionKind>(GetParam() % 4);
  const Instance instance =
      generated_instance(9, 3, 24, kind, 700 + GetParam());
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance);
  const ExactResult brute = solve_exact(instance);
  ASSERT_TRUE(bnb.proven_optimal);
  ASSERT_EQ(check_assignment(instance, bnb.assignment), "");
  ASSERT_NEAR(bnb.utility, brute.utility, 1e-7 * (1.0 + brute.utility));
  // Consistency: the reported utility matches the reported assignment.
  ASSERT_NEAR(total_utility(instance, bnb.assignment), bnb.utility,
              1e-7 * (1.0 + bnb.utility));
}

TEST(Bnb, PrunesFarBelowExhaustiveNodeCount) {
  // Brute force explores all canonical partitions; B&B with the suffix SO
  // bound should visit a small fraction on a structured instance.
  const Instance instance = generated_instance(
      10, 3, 24, support::DistributionKind::kPowerLaw, 1);
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance);
  const ExactResult brute = solve_exact(instance);
  EXPECT_TRUE(bnb.proven_optimal);
  EXPECT_LT(bnb.nodes_explored,
            static_cast<std::uint64_t>(brute.partitions_explored) * 3);
}

TEST(Bnb, ReachesBeyondBruteForceRange) {
  // n = 14 on 3 servers: beyond solve_exact's default guard (12); must
  // finish with a proven optimum at least as good as the heuristic
  // pipeline. (Calibration: ~1M nodes / <1 s on near-homogeneous uniform
  // threads — the hard case for the suffix bound; heavy-tailed inputs
  // prune to almost nothing.)
  const Instance instance = generated_instance(
      14, 3, 24, support::DistributionKind::kUniform, 2);
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance);
  EXPECT_TRUE(bnb.proven_optimal);
  const SolveResult heuristic = solve_algorithm2_refined(instance);
  EXPECT_GE(bnb.utility, heuristic.utility - 1e-9);
  EXPECT_LE(heuristic.utility, bnb.utility + 1e-9);
  EXPECT_GE(heuristic.utility, kApproximationRatio * bnb.utility - 1e-7);
}

TEST(Bnb, IncumbentSeedMeansNeverWorseThanLocalSearch) {
  const Instance instance = generated_instance(
      12, 3, 20, support::DistributionKind::kDiscrete, 3);
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance);
  const SolveResult seed = solve_algorithm2_refined(instance);
  EXPECT_GE(bnb.utility, seed.utility - 1e-9);
}

TEST(Bnb, NodeBudgetReportsUnproven) {
  const Instance instance = generated_instance(
      14, 4, 30, support::DistributionKind::kNormal, 4);
  BranchAndBoundOptions options;
  options.max_nodes = 10;  // Absurdly small.
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance, options);
  EXPECT_FALSE(bnb.proven_optimal);
  // Still returns the (valid) incumbent.
  EXPECT_EQ(check_assignment(instance, bnb.assignment), "");
  EXPECT_GT(bnb.utility, 0.0);
}

TEST(Bnb, SizeGuardAndEmptyInstance) {
  const Instance big = generated_instance(
      25, 4, 10, support::DistributionKind::kUniform, 5);
  EXPECT_THROW((void)solve_branch_and_bound(big), std::invalid_argument);

  Instance empty;
  empty.num_servers = 2;
  empty.capacity = 10;
  const BranchAndBoundResult result = solve_branch_and_bound(empty);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
}

TEST(Bnb, TightnessInstanceSolvedExactly) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 1000;
  instance.threads = {
      std::make_shared<util::CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<util::CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<util::CappedLinearUtility>(0.001, 1000.0, 1000)};
  const BranchAndBoundResult bnb = solve_branch_and_bound(instance);
  EXPECT_NEAR(bnb.utility, 3.0, 1e-9);
  EXPECT_TRUE(bnb.proven_optimal);
}

}  // namespace
}  // namespace aa::core
