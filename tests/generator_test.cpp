// Tests for the paper's random utility generator (utility/generator.hpp).

#include "utility/generator.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"
#include "utility/utility_function.hpp"

namespace aa::util {
namespace {

using support::DistributionKind;
using support::DistributionParams;

class GeneratorAllDistributions
    : public ::testing::TestWithParam<DistributionKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorAllDistributions,
                         ::testing::Values(DistributionKind::kUniform,
                                           DistributionKind::kNormal,
                                           DistributionKind::kPowerLaw,
                                           DistributionKind::kDiscrete),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case DistributionKind::kUniform: return "uniform";
                             case DistributionKind::kNormal: return "normal";
                             case DistributionKind::kPowerLaw: return "powerlaw";
                             case DistributionKind::kDiscrete: return "discrete";
                           }
                           return "unknown";
                         });

TEST_P(GeneratorAllDistributions, ProducesValidConcaveUtilities) {
  support::Rng rng(1234);
  DistributionParams dist;
  dist.kind = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    const UtilityPtr f = generate_utility(500, dist, rng);
    ASSERT_EQ(f->capacity(), 500);
    ASSERT_TRUE(is_valid_on_grid(*f, 1e-7)) << "trial " << trial;
    ASSERT_DOUBLE_EQ(f->value(0.0), 0.0);
  }
}

TEST_P(GeneratorAllDistributions, MidpointAndEndpointFollowRecipe) {
  // f(C/2) = v and f(C) = v + w with w <= v implies f(C) <= 2 f(C/2) and
  // f(C) >= f(C/2) (up to the PAV repair, which rarely moves these knots).
  support::Rng rng(4321);
  DistributionParams dist;
  dist.kind = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    const UtilityPtr f = generate_utility(400, dist, rng);
    const double mid = f->value(200.0);
    const double end = f->value(400.0);
    ASSERT_GT(mid, 0.0);
    ASSERT_GE(end, mid - 1e-9);
    ASSERT_LE(end, 2.0 * mid + 1e-6);
  }
}

TEST(Generator, DeterministicGivenSeed) {
  DistributionParams dist;
  dist.kind = DistributionKind::kPowerLaw;
  support::Rng rng1(9);
  support::Rng rng2(9);
  const UtilityPtr a = generate_utility(300, dist, rng1);
  const UtilityPtr b = generate_utility(300, dist, rng2);
  for (Resource x = 0; x <= 300; x += 7) {
    ASSERT_DOUBLE_EQ(a->value(static_cast<double>(x)),
                     b->value(static_cast<double>(x)));
  }
}

TEST(Generator, BatchGeneratesIndependentFunctions) {
  support::Rng rng(10);
  DistributionParams dist;
  dist.kind = DistributionKind::kUniform;
  const auto batch = generate_utilities(10, 100, dist, rng);
  ASSERT_EQ(batch.size(), 10u);
  // Not all functions should be identical (overwhelming probability).
  int distinct = 0;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    if (batch[i]->value(50.0) != batch[0]->value(50.0)) ++distinct;
  }
  EXPECT_GT(distinct, 0);
}

TEST(Generator, DiscreteDistThetaControlsSpread) {
  // With theta = 1 every thread has (v, w) = (x, x) for x in {low}; all
  // peaks coincide. With large theta peaks differ by ~theta.
  support::Rng rng(11);
  DistributionParams narrow;
  narrow.kind = DistributionKind::kDiscrete;
  narrow.gamma = 0.5;
  narrow.theta = 1.0;
  support::RunningStats peaks;
  for (int i = 0; i < 50; ++i) {
    peaks.add(generate_utility(100, narrow, rng)->value(100.0));
  }
  EXPECT_NEAR(peaks.stddev(), 0.0, 1e-9);
}

TEST(Generator, RejectsTinyCapacity) {
  support::Rng rng(12);
  DistributionParams dist;
  EXPECT_THROW((void)generate_utility(1, dist, rng), std::invalid_argument);
}

}  // namespace
}  // namespace aa::util
