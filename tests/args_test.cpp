// Tests for the command-line flag parser (support/args.hpp).

#include "support/args.hpp"

#include <gtest/gtest.h>

#include <array>

namespace aa::support {
namespace {

Args parse(std::vector<std::string> tokens,
           const std::vector<std::string>& known) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // Keeps c_str() alive.
  storage = std::move(tokens);
  storage.insert(storage.begin(), "prog");
  argv.reserve(storage.size());
  for (auto& token : storage) argv.push_back(token.data());
  return Args(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(Args, SpaceSeparatedFlags) {
  const Args args = parse({"--alpha", "2.5", "--seed", "7"},
                          {"alpha", "seed"});
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(args.get_int("seed", 0), 7);
}

TEST(Args, EqualsSeparatedFlags) {
  const Args args = parse({"--dist=powerlaw", "--beta=3"},
                          {"dist", "beta"});
  EXPECT_EQ(args.get("dist", ""), "powerlaw");
  EXPECT_EQ(args.get_int("beta", 0), 3);
}

TEST(Args, DefaultsWhenAbsent) {
  const Args args = parse({}, {"alpha"});
  EXPECT_EQ(args.get("alpha", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(args.get_int("alpha", 42), 42);
}

TEST(Args, PositionalArguments) {
  const Args args = parse({"input.json", "--seed", "1", "more.txt"},
                          {"seed"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.json");
  EXPECT_EQ(args.positional()[1], "more.txt");
}

TEST(Args, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--typo", "1"}, {"seed"}), std::runtime_error);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(parse({"--seed"}, {"seed"}), std::runtime_error);
}

TEST(Args, LastOccurrenceWins) {
  const Args args = parse({"--seed", "1", "--seed", "2"}, {"seed"});
  EXPECT_EQ(args.get_int("seed", 0), 2);
}

}  // namespace
}  // namespace aa::support
