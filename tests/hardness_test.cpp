// Tests for the PARTITION -> AA reduction (aa/hardness.hpp, Theorem IV.1).

#include "aa/hardness.hpp"

#include <gtest/gtest.h>

#include <array>

#include "aa/exact.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"

namespace aa::core {
namespace {

TEST(PartitionOracle, SolvableAndUnsolvableCases) {
  const std::array<std::int64_t, 4> yes{3, 1, 1, 5};  // {5} vs {3,1,1}.
  EXPECT_TRUE(partition_exists(yes));
  const std::array<std::int64_t, 3> no{2, 4, 8};  // Sum 14, no half = 7.
  EXPECT_FALSE(partition_exists(no));
  const std::array<std::int64_t, 3> odd{1, 1, 1};
  EXPECT_FALSE(partition_exists(odd));
}

TEST(PartitionOracle, RejectsNonpositiveValues) {
  const std::array<std::int64_t, 2> bad{3, 0};
  EXPECT_THROW((void)partition_exists(bad), std::invalid_argument);
}

TEST(Gadget, BuildsTwoServerInstanceWithHalfSumCapacity) {
  const std::array<std::int64_t, 4> values{3, 1, 1, 5};
  const Instance instance = partition_to_aa(values);
  EXPECT_EQ(instance.num_servers, 2u);
  EXPECT_EQ(instance.capacity, 5);
  EXPECT_EQ(instance.num_threads(), 4u);
  EXPECT_NO_THROW(instance.validate());
  EXPECT_DOUBLE_EQ(partition_target(values), 10.0);
}

TEST(Gadget, RejectsOddSum) {
  const std::array<std::int64_t, 2> odd{2, 1};
  EXPECT_THROW((void)partition_to_aa(odd), std::invalid_argument);
}

TEST(Gadget, SolvablePartitionReachesTarget) {
  // Theorem IV.1, "only if" direction: a partition solution yields an AA
  // assignment with utility sum(values).
  const std::array<std::int64_t, 4> values{3, 1, 1, 5};
  const Instance instance = partition_to_aa(values);
  const ExactResult exact = solve_exact(instance);
  EXPECT_NEAR(exact.utility, partition_target(values), 1e-9);

  // And the extracted sets are a genuine partition.
  const auto [left, right] = extract_partition(exact.assignment);
  std::int64_t left_sum = 0;
  for (const std::size_t i : left) left_sum += values[i];
  std::int64_t right_sum = 0;
  for (const std::size_t i : right) right_sum += values[i];
  EXPECT_EQ(left_sum, right_sum);
}

TEST(Gadget, UnsolvablePartitionStaysBelowTarget) {
  // "If" direction contrapositive: no partition -> optimal AA utility is
  // strictly below the target.
  const std::array<std::int64_t, 3> values{2, 4, 8};
  const Instance instance = partition_to_aa(values);
  const ExactResult exact = solve_exact(instance);
  EXPECT_LT(exact.utility, partition_target(values) - 0.5);
}

TEST(Gadget, RandomInstancesRoundTripAgainstOracle) {
  // Property: optimal-AA-reaches-target iff the subset-sum oracle says yes.
  support::Rng rng(2718);
  int solvable_seen = 0;
  int unsolvable_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::int64_t> values;
    std::int64_t sum = 0;
    for (int i = 0; i < 7; ++i) {
      const auto v = static_cast<std::int64_t>(rng.uniform_below(9)) + 1;
      values.push_back(v);
      sum += v;
    }
    if (sum % 2 != 0) continue;  // Gadget requires an even sum.
    const Instance instance = partition_to_aa(values);
    const ExactResult exact = solve_exact(instance);
    const bool reached =
        support::almost_equal(exact.utility, partition_target(values), 1e-6);
    ASSERT_EQ(reached, partition_exists(values)) << "trial " << trial;
    (reached ? solvable_seen : unsolvable_seen) += 1;
  }
  // The trial set must exercise both outcomes to be meaningful.
  EXPECT_GT(solvable_seen, 0);
  EXPECT_GT(unsolvable_seen, 0);
}

}  // namespace
}  // namespace aa::core
