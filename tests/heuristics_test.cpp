// Tests for the UU / UR / RU / RR baselines (aa/heuristics.hpp).

#include "aa/heuristics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "aa/algorithm2.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(HeuristicUU, RoundRobinPlacementAndEqualShares) {
  const Instance instance = generated_instance(7, 3, 90, 1);
  const Assignment a = heuristic_uu(instance);
  ASSERT_EQ(check_assignment(instance, a), "");
  // Round robin: servers get threads {0,3,6}, {1,4}, {2,5}.
  EXPECT_EQ(a.server[0], 0u);
  EXPECT_EQ(a.server[1], 1u);
  EXPECT_EQ(a.server[2], 2u);
  EXPECT_EQ(a.server[3], 0u);
  // Equal shares per server: server 0 has 3 threads -> 30 each.
  EXPECT_DOUBLE_EQ(a.alloc[0], 30.0);
  EXPECT_DOUBLE_EQ(a.alloc[3], 30.0);
  EXPECT_DOUBLE_EQ(a.alloc[1], 45.0);
  EXPECT_DOUBLE_EQ(a.alloc[2], 45.0);
}

TEST(HeuristicUU, SingleThreadPerServerGetsEverything) {
  const Instance instance = generated_instance(3, 3, 50, 2);
  const Assignment a = heuristic_uu(instance);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a.alloc[i], 50.0);
}

TEST(HeuristicUU, BetaOneIsOptimal) {
  // Paper: "for beta = 1, UU achieves the optimal utility because it places
  // one thread on each server and allocates it all the resources."
  const Instance instance = generated_instance(4, 4, 100, 3);
  const double uu = total_utility(instance, heuristic_uu(instance));
  const double alg2 = solve_algorithm2(instance).utility;
  EXPECT_NEAR(uu, alg2, 1e-9 * (1.0 + alg2));
}

TEST(HeuristicUR, RoundRobinButRandomAmounts) {
  const Instance instance = generated_instance(8, 2, 100, 4);
  support::Rng rng(10);
  const Assignment a = heuristic_ur(instance, rng);
  ASSERT_EQ(check_assignment(instance, a), "");
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a.server[i], i % 2);
  // Random amounts: with probability 1 the four allocations on a server
  // differ.
  std::set<double> amounts(a.alloc.begin(), a.alloc.end());
  EXPECT_GT(amounts.size(), 2u);
  // Server loads must exactly exhaust capacity.
  const auto loads = server_loads(instance, a);
  EXPECT_NEAR(loads[0], 100.0, 1e-9);
  EXPECT_NEAR(loads[1], 100.0, 1e-9);
}

TEST(HeuristicRU, RandomServersEqualShares) {
  const Instance instance = generated_instance(40, 4, 100, 5);
  support::Rng rng(11);
  const Assignment a = heuristic_ru(instance, rng);
  ASSERT_EQ(check_assignment(instance, a), "");
  // Every used server's threads share equally: verify per-server equality.
  std::vector<std::vector<double>> by_server(4);
  for (std::size_t i = 0; i < a.size(); ++i) {
    by_server[a.server[i]].push_back(a.alloc[i]);
  }
  for (const auto& allocs : by_server) {
    for (const double x : allocs) {
      ASSERT_DOUBLE_EQ(x, allocs.front());
    }
  }
  // With 40 threads over 4 servers, all servers are used w.h.p.
  for (const auto& allocs : by_server) EXPECT_FALSE(allocs.empty());
}

TEST(HeuristicRR, ValidAndExhaustsUsedServers) {
  const Instance instance = generated_instance(20, 4, 60, 6);
  support::Rng rng(12);
  const Assignment a = heuristic_rr(instance, rng);
  ASSERT_EQ(check_assignment(instance, a), "");
  const auto loads = server_loads(instance, a);
  for (std::size_t j = 0; j < loads.size(); ++j) {
    if (loads[j] > 0.0) {
      EXPECT_NEAR(loads[j], 60.0, 1e-9);
    }
  }
}

TEST(Heuristics, RandomizedOnesAreSeedDeterministic) {
  const Instance instance = generated_instance(10, 3, 50, 7);
  support::Rng rng1(42);
  support::Rng rng2(42);
  const Assignment a = heuristic_rr(instance, rng1);
  const Assignment b = heuristic_rr(instance, rng2);
  EXPECT_EQ(a.server, b.server);
  EXPECT_EQ(a.alloc, b.alloc);
}

TEST(Heuristics, Algorithm2DominatesAllFourOnAverage) {
  // Not guaranteed per-instance, but with 20 pooled instances Algorithm 2's
  // mean utility must exceed every heuristic's (the paper's headline).
  double alg2_sum = 0.0;
  double uu_sum = 0.0;
  double ur_sum = 0.0;
  double ru_sum = 0.0;
  double rr_sum = 0.0;
  support::Rng heur_rng(99);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance instance = generated_instance(24, 4, 80, 1000 + seed);
    alg2_sum += solve_algorithm2(instance).utility;
    uu_sum += total_utility(instance, heuristic_uu(instance));
    ur_sum += total_utility(instance, heuristic_ur(instance, heur_rng));
    ru_sum += total_utility(instance, heuristic_ru(instance, heur_rng));
    rr_sum += total_utility(instance, heuristic_rr(instance, heur_rng));
  }
  EXPECT_GT(alg2_sum, uu_sum);
  EXPECT_GT(alg2_sum, ur_sum);
  EXPECT_GT(alg2_sum, ru_sum);
  EXPECT_GT(alg2_sum, rr_sum);
  // And the paper's secondary observation: uniform allocation beats random.
  EXPECT_GT(uu_sum, ur_sum);
  EXPECT_GT(ru_sum, rr_sum);
}

TEST(Heuristics, EmptyInstance) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  support::Rng rng(1);
  EXPECT_TRUE(heuristic_uu(instance).server.empty());
  EXPECT_TRUE(heuristic_rr(instance, rng).server.empty());
}

}  // namespace
}  // namespace aa::core
