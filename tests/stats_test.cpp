// Tests for the streaming statistics accumulator (support/stats.hpp).

#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/prng.hpp"

namespace aa::support {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(55);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.normal(3.0, 2.0));

  RunningStats sequential;
  for (const double v : values) sequential.add(v);

  RunningStats left;
  RunningStats right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 400 ? left : right).add(values[i]);
  }
  left.merge(right);

  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  const double mean_before = stats.mean();
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), mean_before);

  RunningStats target;
  target.merge(stats);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), mean_before);
}

TEST(RunningStats, StderrShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  Rng rng(66);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 10000; ++i) large.add(rng.normal());
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(Quantile, OrderStatisticsWithInterpolation) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 1.75);
}

TEST(Quantile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, SingleSample) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.99), 7.0);
}

TEST(Quantile, Rejections) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, MatchesExponentialTheory) {
  // p-quantile of Exp(1) is -ln(1-p).
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(rng.exponential());
  EXPECT_NEAR(quantile(samples, 0.5), std::log(2.0), 0.01);
  EXPECT_NEAR(quantile(samples, 0.95), -std::log(0.05), 0.05);
}

TEST(Quantiles, MatchesSingleQuantileCalls) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.normal(0.0, 3.0));
  const double qs[] = {0.0, 0.25, 0.5, 0.9, 0.99, 1.0};
  const std::vector<double> batched = quantiles(samples, qs);
  ASSERT_EQ(batched.size(), std::size(qs));
  for (std::size_t i = 0; i < std::size(qs); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], quantile(samples, qs[i])) << "q=" << qs[i];
  }
}

TEST(Quantiles, UnsortedProbesAndInput) {
  const std::vector<double> samples{3.0, 1.0, 4.0, 2.0};
  const double qs[] = {1.0, 0.0, 0.5};
  const std::vector<double> batched = quantiles(samples, qs);
  ASSERT_EQ(batched.size(), 3u);
  EXPECT_DOUBLE_EQ(batched[0], 4.0);
  EXPECT_DOUBLE_EQ(batched[1], 1.0);
  EXPECT_DOUBLE_EQ(batched[2], 2.5);
}

TEST(Quantiles, EmptyProbeListIsEmpty) {
  EXPECT_TRUE(quantiles({1.0, 2.0}, {}).empty());
}

TEST(Quantiles, Rejections) {
  const double half[] = {0.5};
  EXPECT_THROW((void)quantiles({}, half), std::invalid_argument);
  const double bad[] = {0.5, 1.5};
  EXPECT_THROW((void)quantiles({1.0}, bad), std::invalid_argument);
}

TEST(AlmostEqual, BasicBehaviour) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.1));
  EXPECT_TRUE(almost_equal(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_TRUE(almost_equal(0.0, 1e-10));
}

}  // namespace
}  // namespace aa::support
