// Randomized property test of the self-checking approximation certificate
// (obs/certificate.hpp + aa/certify.hpp): across all four Section VII
// workload distributions, every solve of Algorithms 1/2 (raw and refined)
// must emit a passing certificate — f(ALG) >= alpha * f(SO_capped), the
// Lemma V.4/V.15 chain, per-server budgets and the concavity precondition —
// and on small instances (n <= 10, m <= 3) the certificate is cross-checked
// against the exhaustive solver: alpha * OPT <= f(ALG) <= OPT <= f_SO.
// A deliberately corrupted result must FAIL certification (the checker
// actually checks).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/certify.hpp"
#include "aa/exact.hpp"
#include "aa/refine.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/session.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

struct Shape {
  std::size_t num_threads;
  std::size_t num_servers;
  Resource capacity;
};

using Param = std::tuple<support::DistributionKind, Shape, std::uint64_t>;

class CertificateProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] Instance make_instance() const {
    const auto& [kind, shape, seed] = GetParam();
    support::Rng rng(seed * 104729 + 7);
    support::DistributionParams dist;
    dist.kind = kind;
    Instance instance;
    instance.num_servers = shape.num_servers;
    instance.capacity = shape.capacity;
    instance.threads = util::generate_utilities(shape.num_threads,
                                                shape.capacity, dist, rng);
    return instance;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertificateProperty,
    ::testing::Combine(
        ::testing::Values(support::DistributionKind::kUniform,
                          support::DistributionKind::kNormal,
                          support::DistributionKind::kPowerLaw,
                          support::DistributionKind::kDiscrete),
        ::testing::Values(Shape{10, 3, 18}, Shape{8, 2, 24}, Shape{6, 3, 15},
                          Shape{4, 2, 30}),
        ::testing::Range<std::uint64_t>(0, 4)));

TEST_P(CertificateProperty, EverySolverVariantCertifies) {
  const Instance instance = make_instance();
  const struct {
    const char* name;
    SolveResult result;
  } runs[] = {
      {"algorithm2", solve_algorithm2(instance)},
      {"algorithm2_refined", solve_algorithm2_refined(instance)},
      {"algorithm1", solve_algorithm1(instance)},
      {"algorithm1_refined", solve_algorithm1_refined(instance)},
  };
  for (const auto& run : runs) {
    const obs::Certificate cert = certify(instance, run.result, run.name);
    EXPECT_TRUE(cert.ok()) << run.name << ": " << cert.to_json().dump(2);
    EXPECT_TRUE(cert.input.concavity_checked);
  }
}

TEST_P(CertificateProperty, CertificateAgreesWithExactOptimum) {
  const Instance instance = make_instance();
  const SolveResult approx = solve_algorithm2_refined(instance);
  const obs::Certificate cert = certify(instance, approx, "algorithm2_refined");
  ASSERT_TRUE(cert.ok()) << cert.to_json().dump(2);

  const ExactResult exact = solve_exact(instance);
  const double tol = 1e-7 * (1.0 + exact.utility);
  // The certificate's bound really upper-bounds the true optimum ...
  EXPECT_LE(exact.utility, cert.input.f_super_optimal + tol);
  // ... and the certified solution clears alpha * OPT, not just alpha * SO.
  EXPECT_GE(cert.input.f_alg, kApproximationRatio * exact.utility - tol);
  EXPECT_LE(cert.input.f_alg, exact.utility + tol);
}

TEST_P(CertificateProperty, CorruptedResultFailsCertification) {
  const Instance instance = make_instance();
  SolveResult result = solve_algorithm2(instance);

  // Over-allocate every thread: per-server budgets burst, and the reported
  // utility no longer matches a feasible assignment.
  SolveResult overfull = result;
  for (double& alloc : overfull.assignment.alloc) {
    alloc = static_cast<double>(instance.capacity) + 1.0;
  }
  const obs::Certificate burst = certify(instance, overfull, "corrupted");
  EXPECT_FALSE(burst.ok());
  EXPECT_FALSE(burst.budget_ok && burst.structural_ok);

  // Understate the claimed objective below the guarantee line.
  SolveResult lying = result;
  lying.utility = 0.5 * kApproximationRatio * lying.super_optimal_utility;
  const obs::Certificate lied = certify(instance, lying, "corrupted");
  EXPECT_FALSE(lied.alpha_ok);
  EXPECT_FALSE(lied.ok());
}

/// Scoped override of the process-wide super-optimal strategy; restores the
/// previous default on destruction so test order never leaks state.
class ScopedStrategy {
 public:
  explicit ScopedStrategy(alloc::SuperOptimalStrategy strategy,
                          double price_tolerance = 1e-9)
      : saved_(alloc::default_super_optimal_options()) {
    alloc::SuperOptimalOptions options;
    options.strategy = strategy;
    options.price_tolerance = price_tolerance;
    alloc::set_default_super_optimal_options(options);
  }
  ~ScopedStrategy() { alloc::set_default_super_optimal_options(saved_); }
  ScopedStrategy(const ScopedStrategy&) = delete;
  ScopedStrategy& operator=(const ScopedStrategy&) = delete;

 private:
  alloc::SuperOptimalOptions saved_;
};

TEST_P(CertificateProperty, PriceStrategyHonorsItsToleranceContract) {
  // The documented allocate_price contract: the price allocation is pooled-
  // feasible (so F_price never exceeds the exact F_hat), and the shortfall
  // is at most price_tol * (1 + max marginal) * pool. Checked at the default
  // tolerance and at a deliberately loose one, so the bound is exercised
  // where the two paths genuinely diverge.
  const Instance instance = make_instance();
  const alloc::SuperOptimalResult exact_so = alloc::super_optimal(
      instance.threads, instance.num_servers, instance.capacity);
  double max_marginal = 0.0;
  for (const auto& thread : instance.threads) {
    if (thread->capacity() >= 1) {
      max_marginal = std::max(max_marginal, thread->marginal(1));
    }
  }
  const double pool = static_cast<double>(instance.num_servers) *
                      static_cast<double>(instance.capacity);
  for (const double tol : {1e-9, 1e-4, 1e-2}) {
    SCOPED_TRACE("price_tol=" + std::to_string(tol));
    const alloc::SuperOptimalResult price = alloc::super_optimal_price(
        instance.threads, instance.num_servers, instance.capacity, tol);
    const double slack = 1e-12 * (1.0 + exact_so.utility);
    EXPECT_LE(price.utility, exact_so.utility + slack);
    const double bound = tol * (1.0 + max_marginal) * pool;
    EXPECT_GE(price.utility, exact_so.utility - bound - slack);
    // The price allocation must itself be pooled-feasible and capped.
    Resource pooled_sum = 0;
    for (std::size_t i = 0; i < price.c_hat.size(); ++i) {
      EXPECT_LE(price.c_hat[i], instance.capacity);
      pooled_sum += price.c_hat[i];
    }
    EXPECT_LE(static_cast<double>(pooled_sum), pool);
  }
}

TEST_P(CertificateProperty, SolversCertifyUnderEveryStrategy) {
  // Routing alg1/alg2 through the parallel or price strategy must leave
  // every downstream certificate passing: parallel is bit-identical, and
  // the price tolerance (1e-9 relative scale) sits far inside the
  // certificate's 1e-7 comparison tolerance.
  const Instance instance = make_instance();
  for (const alloc::SuperOptimalStrategy strategy :
       {alloc::SuperOptimalStrategy::kParallel,
        alloc::SuperOptimalStrategy::kPrice}) {
    SCOPED_TRACE(std::string("strategy=") +
                 std::string(alloc::super_optimal_strategy_name(strategy)));
    const ScopedStrategy scoped(strategy);
    const struct {
      const char* name;
      SolveResult result;
    } runs[] = {
        {"algorithm2", solve_algorithm2(instance)},
        {"algorithm2_refined", solve_algorithm2_refined(instance)},
        {"algorithm1_refined", solve_algorithm1_refined(instance)},
    };
    for (const auto& run : runs) {
      const obs::Certificate cert = certify(instance, run.result, run.name);
      EXPECT_TRUE(cert.ok()) << run.name << ": " << cert.to_json().dump(2);
      // The 0.828 guarantee holds against the strategy's own bound ...
      EXPECT_GE(run.result.utility, kApproximationRatio *
                                            run.result.super_optimal_utility -
                                        1e-9 * (1.0 + run.result.utility));
    }
    // ... and against the true optimum, up to the certificate tolerance
    // (the price bound at tol=1e-9 is far below it on these shapes).
    const ExactResult exact = solve_exact(instance);
    const SolveResult refined = solve_algorithm2_refined(instance);
    EXPECT_GE(refined.utility, kApproximationRatio * exact.utility -
                                   1e-6 * (1.0 + exact.utility));
  }
}

TEST_P(CertificateProperty, SolversRecordCertificatesOnTheSession) {
  const Instance instance = make_instance();
  obs::Session session;
  (void)solve_algorithm2_refined(instance);
  const obs::Metrics metrics = session.metrics();
  // Raw Algorithm 2 plus the refined wrapper each record one certificate.
  EXPECT_EQ(metrics.counter("certificate/checks"), 2);
  EXPECT_EQ(metrics.counter("certificate/failures"), 0);
  const auto certificates = session.certificates();
  ASSERT_EQ(certificates.size(), 2u);
  EXPECT_EQ(certificates[0].input.solver, "algorithm2");
  EXPECT_EQ(certificates[1].input.solver, "algorithm2_refined");
  for (const obs::Certificate& cert : certificates) {
    EXPECT_TRUE(cert.ok()) << cert.to_json().dump(2);
  }
}

}  // namespace
}  // namespace aa::core
