// Randomized property test of the self-checking approximation certificate
// (obs/certificate.hpp + aa/certify.hpp): across all four Section VII
// workload distributions, every solve of Algorithms 1/2 (raw and refined)
// must emit a passing certificate — f(ALG) >= alpha * f(SO_capped), the
// Lemma V.4/V.15 chain, per-server budgets and the concavity precondition —
// and on small instances (n <= 10, m <= 3) the certificate is cross-checked
// against the exhaustive solver: alpha * OPT <= f(ALG) <= OPT <= f_SO.
// A deliberately corrupted result must FAIL certification (the checker
// actually checks).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/certify.hpp"
#include "aa/exact.hpp"
#include "aa/refine.hpp"
#include "obs/session.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

struct Shape {
  std::size_t num_threads;
  std::size_t num_servers;
  Resource capacity;
};

using Param = std::tuple<support::DistributionKind, Shape, std::uint64_t>;

class CertificateProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] Instance make_instance() const {
    const auto& [kind, shape, seed] = GetParam();
    support::Rng rng(seed * 104729 + 7);
    support::DistributionParams dist;
    dist.kind = kind;
    Instance instance;
    instance.num_servers = shape.num_servers;
    instance.capacity = shape.capacity;
    instance.threads = util::generate_utilities(shape.num_threads,
                                                shape.capacity, dist, rng);
    return instance;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertificateProperty,
    ::testing::Combine(
        ::testing::Values(support::DistributionKind::kUniform,
                          support::DistributionKind::kNormal,
                          support::DistributionKind::kPowerLaw,
                          support::DistributionKind::kDiscrete),
        ::testing::Values(Shape{10, 3, 18}, Shape{8, 2, 24}, Shape{6, 3, 15},
                          Shape{4, 2, 30}),
        ::testing::Range<std::uint64_t>(0, 4)));

TEST_P(CertificateProperty, EverySolverVariantCertifies) {
  const Instance instance = make_instance();
  const struct {
    const char* name;
    SolveResult result;
  } runs[] = {
      {"algorithm2", solve_algorithm2(instance)},
      {"algorithm2_refined", solve_algorithm2_refined(instance)},
      {"algorithm1", solve_algorithm1(instance)},
      {"algorithm1_refined", solve_algorithm1_refined(instance)},
  };
  for (const auto& run : runs) {
    const obs::Certificate cert = certify(instance, run.result, run.name);
    EXPECT_TRUE(cert.ok()) << run.name << ": " << cert.to_json().dump(2);
    EXPECT_TRUE(cert.input.concavity_checked);
  }
}

TEST_P(CertificateProperty, CertificateAgreesWithExactOptimum) {
  const Instance instance = make_instance();
  const SolveResult approx = solve_algorithm2_refined(instance);
  const obs::Certificate cert = certify(instance, approx, "algorithm2_refined");
  ASSERT_TRUE(cert.ok()) << cert.to_json().dump(2);

  const ExactResult exact = solve_exact(instance);
  const double tol = 1e-7 * (1.0 + exact.utility);
  // The certificate's bound really upper-bounds the true optimum ...
  EXPECT_LE(exact.utility, cert.input.f_super_optimal + tol);
  // ... and the certified solution clears alpha * OPT, not just alpha * SO.
  EXPECT_GE(cert.input.f_alg, kApproximationRatio * exact.utility - tol);
  EXPECT_LE(cert.input.f_alg, exact.utility + tol);
}

TEST_P(CertificateProperty, CorruptedResultFailsCertification) {
  const Instance instance = make_instance();
  SolveResult result = solve_algorithm2(instance);

  // Over-allocate every thread: per-server budgets burst, and the reported
  // utility no longer matches a feasible assignment.
  SolveResult overfull = result;
  for (double& alloc : overfull.assignment.alloc) {
    alloc = static_cast<double>(instance.capacity) + 1.0;
  }
  const obs::Certificate burst = certify(instance, overfull, "corrupted");
  EXPECT_FALSE(burst.ok());
  EXPECT_FALSE(burst.budget_ok && burst.structural_ok);

  // Understate the claimed objective below the guarantee line.
  SolveResult lying = result;
  lying.utility = 0.5 * kApproximationRatio * lying.super_optimal_utility;
  const obs::Certificate lied = certify(instance, lying, "corrupted");
  EXPECT_FALSE(lied.alpha_ok);
  EXPECT_FALSE(lied.ok());
}

TEST_P(CertificateProperty, SolversRecordCertificatesOnTheSession) {
  const Instance instance = make_instance();
  obs::Session session;
  (void)solve_algorithm2_refined(instance);
  const obs::Metrics metrics = session.metrics();
  // Raw Algorithm 2 plus the refined wrapper each record one certificate.
  EXPECT_EQ(metrics.counter("certificate/checks"), 2);
  EXPECT_EQ(metrics.counter("certificate/failures"), 0);
  const auto certificates = session.certificates();
  ASSERT_EQ(certificates.size(), 2u);
  EXPECT_EQ(certificates[0].input.solver, "algorithm2");
  EXPECT_EQ(certificates[1].input.solver, "algorithm2_refined");
  for (const obs::Certificate& cert : certificates) {
    EXPECT_TRUE(cert.ok()) << cert.to_json().dump(2);
  }
}

}  // namespace
}  // namespace aa::core
