// Tests for the Monte-Carlo experiment runner (sim/experiment.hpp).

#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "aa/solve_result.hpp"

namespace aa::sim {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.num_servers = 4;
  config.capacity = 50;
  config.beta = 3.0;
  config.dist.kind = support::DistributionKind::kUniform;
  return config;
}

TEST(RunTrial, ProducesPositiveUtilitiesWithExpectedOrdering) {
  const TrialUtilities t = run_trial(small_config(), 99, 0);
  EXPECT_GT(t.algorithm2, 0.0);
  EXPECT_GT(t.uu, 0.0);
  EXPECT_GT(t.rr, 0.0);
  // SO bounds everything.
  EXPECT_LE(t.algorithm2, t.super_optimal + 1e-9);
  EXPECT_LE(t.uu, t.super_optimal + 1e-9);
  EXPECT_LE(t.ur, t.super_optimal + 1e-9);
  EXPECT_LE(t.ru, t.super_optimal + 1e-9);
  EXPECT_LE(t.rr, t.super_optimal + 1e-9);
}

TEST(RunTrial, DeterministicPerTrialIndex) {
  const TrialUtilities a = run_trial(small_config(), 7, 3);
  const TrialUtilities b = run_trial(small_config(), 7, 3);
  EXPECT_DOUBLE_EQ(a.algorithm2, b.algorithm2);
  EXPECT_DOUBLE_EQ(a.rr, b.rr);
  const TrialUtilities c = run_trial(small_config(), 7, 4);
  EXPECT_NE(a.algorithm2, c.algorithm2);
}

TEST(RunPoint, AggregatesRequestedTrials) {
  const RatioPoint point = run_point(small_config(), 20, 11);
  for (const auto& stats : point.ratio) {
    EXPECT_EQ(stats.count(), 20u);
  }
}

TEST(RunPoint, RatiosHaveThePaperStructure) {
  const RatioPoint point = run_point(small_config(), 50, 12);
  // Alg2/SO <= 1 but well above alpha; heuristic ratios >= 1 on average.
  EXPECT_LE(point.ratio[kVsSuperOptimal].mean(), 1.0 + 1e-9);
  EXPECT_GE(point.ratio[kVsSuperOptimal].mean(),
            core::kApproximationRatio);
  EXPECT_GE(point.ratio[kVsUU].mean(), 1.0);
  EXPECT_GE(point.ratio[kVsUR].mean(), 1.0);
  EXPECT_GE(point.ratio[kVsRU].mean(), 1.0);
  EXPECT_GE(point.ratio[kVsRR].mean(), 1.0);
}

TEST(RunPoint, IndependentOfWorkerCount) {
  // Determinism across pool sizes: the whole point of per-trial seeding.
  support::ThreadPool one(1);
  support::ThreadPool many(8);
  const RatioPoint a = run_point(small_config(), 16, 13, &one);
  const RatioPoint b = run_point(small_config(), 16, 13, &many);
  for (std::size_t c = 0; c < kNumCompetitors; ++c) {
    EXPECT_DOUBLE_EQ(a.ratio[c].mean(), b.ratio[c].mean());
    EXPECT_DOUBLE_EQ(a.ratio[c].min(), b.ratio[c].min());
  }
}

TEST(RunPoint, RejectsZeroTrials) {
  EXPECT_THROW((void)run_point(small_config(), 0, 1), std::invalid_argument);
}

TEST(RunPoint, BetaOneMakesUUOptimal) {
  WorkloadConfig config = small_config();
  config.beta = 1.0;
  const RatioPoint point = run_point(config, 30, 14);
  EXPECT_NEAR(point.ratio[kVsUU].mean(), 1.0, 1e-9);
}

}  // namespace
}  // namespace aa::sim
