// Tests for the transport-independent service core (svc/service.hpp):
// batching/coalescing, deadlines, error replies, shutdown semantics, and
// concurrent clients.

#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"

namespace aa::svc {
namespace {

using support::JsonValue;
using support::json_parse;

constexpr const char* kAddPower =
    R"({"op": "add_thread", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})";

JsonValue ask(Service& service, const std::string& line) {
  return json_parse(service.request(line));
}

TEST(Service, BasicRoundTrip) {
  Service service(ServiceConfig{});
  service.start();
  const JsonValue added = ask(service, kAddPower);
  EXPECT_TRUE(added.at("ok").as_bool());
  EXPECT_EQ(added.at("id").as_int(), 1);
  EXPECT_EQ(added.at("threads").as_int(), 1);

  const JsonValue solved = ask(service, R"({"op": "solve", "tag": "s1"})");
  EXPECT_TRUE(solved.at("ok").as_bool());
  EXPECT_EQ(solved.at("tag").as_string(), "s1");
  EXPECT_TRUE(solved.at("certificate_ok").as_bool());
  EXPECT_EQ(solved.at("path").as_string(), "full");
  ASSERT_EQ(solved.at("assignment").as_array().size(), 1u);
  EXPECT_EQ(solved.at("assignment").as_array()[0].at("id").as_int(), 1);

  const JsonValue stats = ask(service, R"({"op": "stats"})");
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("threads").as_int(), 1);
  EXPECT_EQ(stats.at("servers").as_int(), 2);
  EXPECT_EQ(stats.at("capacity").as_int(), 64);
  service.stop();
}

TEST(Service, SolveOnEmptyInstance) {
  Service service(ServiceConfig{});
  service.start();
  const JsonValue solved = ask(service, R"({"op": "solve"})");
  EXPECT_TRUE(solved.at("ok").as_bool());
  EXPECT_TRUE(solved.at("certificate_ok").as_bool());
  EXPECT_DOUBLE_EQ(solved.at("utility").as_number(), 0.0);
  EXPECT_TRUE(solved.at("assignment").as_array().empty());
  service.stop();
}

// Requests submitted before start() form one deterministic batch: the
// three solves coalesce into a single re-solve of the final state.
TEST(Service, PreStartBatchCoalescesSolves) {
  ServiceConfig config;
  config.workers = 1;
  config.batch_max = 64;
  Service service(config);

  std::vector<std::future<std::string>> replies;
  const auto submit = [&](const std::string& line) {
    auto done = std::make_shared<std::promise<std::string>>();
    replies.push_back(done->get_future());
    service.submit_line(
        line, [done](const std::string& text) { done->set_value(text); });
  };
  submit(kAddPower);
  submit(R"({"op": "solve", "tag": "a"})");
  submit(kAddPower);
  submit(R"({"op": "solve", "tag": "b"})");
  submit(R"({"op": "solve", "tag": "c"})");

  service.start();
  std::vector<JsonValue> parsed;
  for (auto& reply : replies) parsed.push_back(json_parse(reply.get()));

  // All solve replies describe the same (final) state: both threads placed.
  for (const std::size_t solve_index : {1u, 3u, 4u}) {
    const JsonValue& solved = parsed[solve_index];
    EXPECT_TRUE(solved.at("ok").as_bool());
    EXPECT_TRUE(solved.at("certificate_ok").as_bool());
    EXPECT_EQ(solved.at("threads").as_int(), 2);
    EXPECT_DOUBLE_EQ(solved.at("utility").as_number(),
                     parsed[1].at("utility").as_number());
  }
  EXPECT_EQ(parsed[1].at("tag").as_string(), "a");
  EXPECT_EQ(parsed[4].at("tag").as_string(), "c");

  const JsonValue stats = ask(service, R"({"op": "stats"})");
  const JsonValue& solves = stats.at("solves");
  EXPECT_EQ(solves.at("coalesced").as_int(), 2);
  EXPECT_EQ(solves.at("full").as_int() + solves.at("warm").as_int() +
                solves.at("cached").as_int(),
            1);
  EXPECT_GE(stats.at("batching").at("max_size").as_number(), 5.0);
  service.stop();
}

TEST(Service, ExpiredDeadlineGetsTimeoutReply) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  // Enqueue before start() so the deadline is long gone when a worker
  // finally picks the request up.
  auto done = std::make_shared<std::promise<std::string>>();
  service.submit_line(
      R"({"op": "solve", "deadline_ms": 1.0, "tag": "late"})",
      [done](const std::string& text) { done->set_value(text); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.start();
  const JsonValue reply = json_parse(done->get_future().get());
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "timeout");
  EXPECT_EQ(reply.at("tag").as_string(), "late");

  const JsonValue stats = ask(service, R"({"op": "stats"})");
  EXPECT_EQ(stats.at("timeouts").as_int(), 1);
  service.stop();
}

TEST(Service, UnknownIdsGetNotFound) {
  Service service(ServiceConfig{});
  service.start();
  const JsonValue removed =
      ask(service, R"({"op": "remove_thread", "id": 42})");
  EXPECT_FALSE(removed.at("ok").as_bool());
  EXPECT_EQ(removed.at("code").as_string(), "not_found");
  const JsonValue updated =
      ask(service, R"({"op": "update_utility", "id": 42, "factor": 1.1})");
  EXPECT_EQ(updated.at("code").as_string(), "not_found");
  service.stop();
}

TEST(Service, ParseErrorsGetStructuredReplies) {
  Service service(ServiceConfig{});
  service.start();
  const JsonValue reply = ask(service, "this is not json");
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "parse_error");
  const JsonValue unknown = ask(service, R"({"op": "sideways"})");
  EXPECT_EQ(unknown.at("code").as_string(), "unknown_op");
  service.stop();
}

TEST(Service, ErrorRepliesKeepRequestOrder) {
  // A protocol error must flow through the queue with everything else: its
  // reply may not overtake replies to earlier valid requests.
  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  std::mutex order_mutex;
  std::vector<std::string> codes;
  const auto record = [&order_mutex, &codes](const std::string& text) {
    const JsonValue reply = json_parse(text);
    const JsonValue* code = reply.find("code");
    std::lock_guard lock(order_mutex);
    codes.push_back(code != nullptr ? code->as_string() : "ok");
  };
  // Enqueued before start() so all four land in one deterministic batch.
  service.submit_line(kAddPower, record);
  service.submit_line(R"({"op": "solve"})", record);
  service.submit_line(R"({"op": "bogus"})", record);
  service.submit_line(R"({"op": "stats"})", record);
  service.start();
  const JsonValue last = ask(service, R"({"op": "stats"})");
  EXPECT_TRUE(last.at("ok").as_bool());
  {
    std::lock_guard lock(order_mutex);
    ASSERT_EQ(codes.size(), 4u);
    EXPECT_EQ(codes[0], "ok");
    EXPECT_EQ(codes[1], "ok");
    EXPECT_EQ(codes[2], "unknown_op");
    EXPECT_EQ(codes[3], "ok");
  }
  service.stop();
}

TEST(Service, QueueOverflowIsAnsweredInline) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 1;
  Service service(config);
  auto first = std::make_shared<std::promise<std::string>>();
  service.submit_line(kAddPower, [first](const std::string& text) {
    first->set_value(text);
  });
  const JsonValue overflow = ask(service, R"({"op": "solve"})");
  EXPECT_FALSE(overflow.at("ok").as_bool());
  EXPECT_EQ(overflow.at("code").as_string(), "overflow");
  service.start();
  EXPECT_TRUE(json_parse(first->get_future().get()).at("ok").as_bool());
  service.stop();
}

TEST(Service, ShutdownStopsAcceptingRequests) {
  Service service(ServiceConfig{});
  service.start();
  EXPECT_FALSE(service.shutdown_requested());
  const JsonValue reply = ask(service, R"({"op": "shutdown"})");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_TRUE(service.shutdown_requested());
  const JsonValue refused = ask(service, R"({"op": "stats"})");
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(refused.at("code").as_string(), "shutting_down");
  service.stop();
}

TEST(Service, StopIsIdempotentAndSafeWithoutStart) {
  Service service(ServiceConfig{});
  service.stop();
  service.stop();
}

// Several client threads hammer one service; every reply must arrive, be
// well-formed, and every solve must certify. Exercises the worker pool,
// the batching turn, and the ordered delivery under real contention (the
// TSan CI job runs this binary).
TEST(Service, ConcurrentClients) {
  ServiceConfig config;
  config.workers = 4;
  config.batch_max = 16;
  config.batch_linger_ms = 0.1;
  Service service(config);
  service.start();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  std::atomic<int> solve_failures{0};
  std::atomic<int> reply_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::int64_t> ids;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        JsonValue reply;
        if (i % 5 == 4) {
          reply = ask(service, R"({"op": "solve"})");
          if (!reply.at("ok").as_bool() ||
              !reply.at("certificate_ok").as_bool()) {
            ++solve_failures;
          }
          continue;
        }
        if (ids.size() < 3 || i % 3 == 0) {
          reply = ask(service, kAddPower);
          if (reply.at("ok").as_bool()) {
            ids.push_back(reply.at("id").as_int());
          } else {
            ++reply_failures;
          }
        } else {
          const std::int64_t id =
              ids[static_cast<std::size_t>(c + i) % ids.size()];
          reply = ask(service,
                      R"({"op": "update_utility", "id": )" +
                          std::to_string(id) + R"(, "factor": 1.01})");
          if (!reply.at("ok").as_bool()) ++reply_failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(solve_failures.load(), 0);
  EXPECT_EQ(reply_failures.load(), 0);

  const JsonValue stats = ask(service, R"({"op": "stats"})");
  EXPECT_GE(stats.at("requests_total").as_int(),
            kClients * kRequestsPerClient);
  EXPECT_EQ(stats.at("errors_total").as_int(), 0);
  service.stop();
}

}  // namespace
}  // namespace aa::svc
