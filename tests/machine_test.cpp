// Tests for the multi-socket machine model and the end-to-end cache
// partitioning story (cachesim/machine.hpp): AA scheduling of profiled
// threads beats naive placement on measured (raw-curve) throughput.

#include "cachesim/machine.hpp"

#include <gtest/gtest.h>

#include "aa/algorithm2.hpp"
#include "aa/heuristics.hpp"

namespace aa::cachesim {
namespace {

std::vector<ThreadProfile> make_profiles(const Machine& machine,
                                         std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<ThreadProfile> profiles;
  const std::size_t lines = machine.geometry.lines_per_way;
  // A mix of archetypes: cache-friendly, medium, streaming.
  const std::vector<TraceConfig> configs = {
      TraceConfig::cache_friendly(2 * lines, 20000),
      TraceConfig::cache_friendly(6 * lines, 20000),
      TraceConfig::mixed(lines, 4 * lines, 40 * lines, 20000),
      TraceConfig::streaming(200 * lines, 20000),
      TraceConfig::mixed(2 * lines, 8 * lines, 80 * lines, 20000),
      TraceConfig::cache_friendly(3 * lines, 20000),
  };
  for (const TraceConfig& config : configs) {
    profiles.push_back(profile_trace(generate_trace(config, rng),
                                     machine.geometry, PerfModel{}));
  }
  return profiles;
}

TEST(ProfileTrace, EndToEndFieldsPopulated) {
  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 8, .lines_per_way = 32}};
  support::Rng rng(1);
  const ThreadProfile profile = profile_trace(
      generate_trace(TraceConfig::cache_friendly(64, 5000), rng),
      machine.geometry, PerfModel{});
  EXPECT_EQ(profile.curve.accesses, 5000u);
  ASSERT_NE(profile.utility, nullptr);
  EXPECT_EQ(profile.utility->capacity(), 8);
}

TEST(BuildInstance, ShapeMatchesMachine) {
  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 8, .lines_per_way = 32}};
  const auto profiles = make_profiles(machine, 2);
  const core::Instance instance = build_instance(machine, profiles);
  EXPECT_EQ(instance.num_servers, 2u);
  EXPECT_EQ(instance.capacity, 8);
  EXPECT_EQ(instance.num_threads(), profiles.size());
}

TEST(BuildInstance, RejectsBadInputs) {
  const Machine machine{.num_sockets = 0,
                        .geometry = {.total_ways = 8, .lines_per_way = 32}};
  EXPECT_THROW((void)build_instance(machine, {}), std::invalid_argument);

  const Machine ok{.num_sockets = 1,
                   .geometry = {.total_ways = 8, .lines_per_way = 32}};
  std::vector<ThreadProfile> missing(1);
  EXPECT_THROW((void)build_instance(ok, missing), std::invalid_argument);
}

TEST(MeasureThroughput, FloorsFractionalWays) {
  const Machine machine{.num_sockets = 1,
                        .geometry = {.total_ways = 4, .lines_per_way = 8}};
  const auto profiles = make_profiles(machine, 3);
  core::Assignment a;
  a.server.assign(profiles.size(), 0);
  a.alloc.assign(profiles.size(), 0.9);  // Floors to 0 ways.
  const double zero_ways = measure_throughput(profiles, a);
  a.alloc.assign(profiles.size(), 0.0);
  EXPECT_DOUBLE_EQ(measure_throughput(profiles, a), zero_ways);
}

TEST(EndToEnd, AlgorithmTwoBeatsNaivePlacementOnMeasuredThroughput) {
  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 16, .lines_per_way = 64}};
  const auto profiles = make_profiles(machine, 4);
  const core::Instance instance = build_instance(machine, profiles);

  const core::SolveResult solved = core::solve_algorithm2(instance);
  ASSERT_EQ(core::check_assignment(instance, solved.assignment), "");
  const double aa_throughput =
      measure_throughput(profiles, solved.assignment);

  support::Rng rng(5);
  const double rr_throughput =
      measure_throughput(profiles, core::heuristic_rr(instance, rng));

  EXPECT_GT(aa_throughput, 0.0);
  // Measured on the RAW curves: the concave model must still deliver wins.
  EXPECT_GE(aa_throughput, rr_throughput);
}

TEST(EndToEnd, ModelUtilityTracksMeasuredThroughput) {
  // The concave model evaluated at the assignment should approximate the
  // measured raw throughput (projection gap only).
  const Machine machine{.num_sockets = 2,
                        .geometry = {.total_ways = 16, .lines_per_way = 64}};
  const auto profiles = make_profiles(machine, 6);
  const core::Instance instance = build_instance(machine, profiles);
  const core::SolveResult solved = core::solve_algorithm2(instance);
  const double measured = measure_throughput(profiles, solved.assignment);
  EXPECT_NEAR(solved.utility, measured, 0.15 * solved.utility);
}

TEST(MeasureThroughput, RejectsSizeMismatch) {
  const Machine machine{.num_sockets = 1,
                        .geometry = {.total_ways = 4, .lines_per_way = 8}};
  const auto profiles = make_profiles(machine, 7);
  core::Assignment wrong;
  EXPECT_THROW((void)measure_throughput(profiles, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace aa::cachesim
