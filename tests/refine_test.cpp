// Tests for per-server allocation refinement (aa/refine.hpp).

#include "aa/refine.hpp"

#include <gtest/gtest.h>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/exact.hpp"
#include "aa/heuristics.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(Reoptimize, NeverDecreasesUtilityAndStaysValid) {
  support::Rng heur_rng(3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(20, 4, 60, seed);
    // Start from a deliberately bad allocation: UR's random split.
    const Assignment before = heuristic_ur(instance, heur_rng);
    const Assignment after = reoptimize_allocations(instance, before);
    ASSERT_EQ(check_assignment(instance, after), "");
    ASSERT_EQ(before.server, after.server);  // Placement untouched.
    ASSERT_GE(total_utility(instance, after),
              total_utility(instance, before) - 1e-9);
  }
}

TEST(Reoptimize, FixedPointOnAlreadyOptimalAllocations) {
  const Instance instance = generated_instance(6, 3, 40, 1);
  const SolveResult refined = solve_algorithm2_refined(instance);
  const Assignment again =
      reoptimize_allocations(instance, refined.assignment);
  EXPECT_NEAR(total_utility(instance, again), refined.utility, 1e-9);
}

TEST(Reoptimize, RejectsSizeMismatch) {
  const Instance instance = generated_instance(4, 2, 20, 2);
  Assignment wrong;
  EXPECT_THROW((void)reoptimize_allocations(instance, wrong),
               std::invalid_argument);
}

TEST(RefinedSolvers, ImproveOnRawAndKeepCertificates) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = generated_instance(32, 4, 80, 100 + seed);
    const SolveResult raw = solve_algorithm2(instance);
    const SolveResult refined = solve_algorithm2_refined(instance);
    ASSERT_GE(refined.utility, raw.utility - 1e-9);
    ASSERT_LE(refined.utility, refined.super_optimal_utility + 1e-9);
    // Certificates carried over unchanged.
    ASSERT_DOUBLE_EQ(refined.super_optimal_utility, raw.super_optimal_utility);
    ASSERT_EQ(check_assignment(instance, refined.assignment), "");
  }
}

TEST(RefinedSolvers, Algorithm1VariantAlsoImproves) {
  const Instance instance = generated_instance(24, 3, 70, 7);
  const SolveResult raw = solve_algorithm1(instance);
  const SolveResult refined = solve_algorithm1_refined(instance);
  EXPECT_GE(refined.utility, raw.utility - 1e-9);
}

TEST(RefinedSolvers, CloseTheGapToSuperOptimalOnPaperWorkload) {
  // The reproduction of the paper's ">= 99% of optimal" headline: refined
  // Algorithm 2 averages above 0.99 of the SUPER-optimal bound (stronger
  // than optimal) on the uniform workload at beta = 3.
  double total_ratio = 0.0;
  const int trials = 30;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const Instance instance = generated_instance(24, 8, 200, 500 + seed);
    const SolveResult refined = solve_algorithm2_refined(instance);
    total_ratio += refined.utility / refined.super_optimal_utility;
  }
  EXPECT_GE(total_ratio / trials, 0.99);
}

TEST(RefinedSolvers, StillAboveAlphaTimesExactOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = generated_instance(7, 3, 18, 900 + seed);
    const SolveResult refined = solve_algorithm2_refined(instance);
    const ExactResult exact = solve_exact(instance);
    ASSERT_GE(refined.utility,
              kApproximationRatio * exact.utility - 1e-9);
    ASSERT_LE(refined.utility, exact.utility + 1e-7 * (1.0 + exact.utility));
  }
}

}  // namespace
}  // namespace aa::core
