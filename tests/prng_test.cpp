// Tests for the deterministic PRNG stack (support/prng.hpp).

#include "support/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "support/stats.hpp"

namespace aa::support {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values from the published splitmix64.c with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForFixedSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsProduceDifferentStreams) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256StarStar>);
  EXPECT_EQ(Xoshiro256StarStar::min(), 0u);
  EXPECT_EQ(Xoshiro256StarStar::max(), ~0ULL);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  // Variance of U(0,1) is 1/12.
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowCoversRangeWithoutBias) {
  Rng rng(17);
  std::array<int, 7> counts{};
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.uniform_below(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, draws / 7.0 * 0.1);
  }
}

TEST(Rng, UniformBelowZeroAndOne) {
  Rng rng(19);
  EXPECT_EQ(rng.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanIsOne) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.exponential();
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(Rng, ChildStreamsAreIndependentOfEachOther) {
  Rng a = Rng::child(100, 0);
  Rng b = Rng::child(100, 1);
  std::vector<std::uint64_t> va;
  std::vector<std::uint64_t> vb;
  for (int i = 0; i < 8; ++i) {
    va.push_back(a.next_u64());
    vb.push_back(b.next_u64());
  }
  EXPECT_NE(va, vb);
}

TEST(Rng, ChildStreamsAreReproducible) {
  Rng a = Rng::child(100, 5);
  Rng b = Rng::child(100, 5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ChildIndicesDoNotCollideAcrossNearbySeeds) {
  // The (base_seed, index) mixing must not map (s, i+1) and (s+1, i) to the
  // same stream — a classic counter-mixing bug.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    for (std::uint64_t index = 0; index < 32; ++index) {
      Rng rng = Rng::child(seed, index);
      firsts.insert(rng.next_u64());
    }
  }
  EXPECT_EQ(firsts.size(), 32u * 32u);
}

}  // namespace
}  // namespace aa::support
