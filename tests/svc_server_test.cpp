// Transport tests for the allocation service: in-process Unix-domain
// socket round trips (svc/server.hpp + svc/channel.hpp) plus end-to-end
// runs of the real aa_serve / aa_loadgen binaries (paths baked in via
// AA_SERVE_BIN / AA_LOADGEN_BIN).

#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "support/json.hpp"
#include "svc/channel.hpp"
#include "svc/service.hpp"

namespace aa::svc {
namespace {

using support::JsonValue;
using support::json_parse;

constexpr const char* kAddPower =
    R"({"op": "add_thread", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})";

std::string socket_path(const std::string& name) {
  // Keep it short: sun_path caps at ~108 bytes.
  return "/tmp/aa_svc_test_" + name + "_" + std::to_string(::getpid()) +
         ".sock";
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Service + SocketServer wired up on a fresh socket, server loop running
/// on a background thread until shutdown.
class SocketFixture : public ::testing::Test {
 protected:
  void SetUp() override { start(ServiceConfig{}, kDefaultMaxLineBytes); }

  void start(ServiceConfig config, std::size_t max_line_bytes) {
    path_ = socket_path(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    service_ = std::make_unique<Service>(config);
    service_->start();
    server_ = std::make_unique<SocketServer>(*service_, path_,
                                             max_line_bytes);
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (!shut_down_) {
      // Drive the normal path: a shutdown request ends the accept loop.
      FdHandle fd = connect_unix(path_, 2000);
      LineChannel channel(fd.get(), kDefaultMaxLineBytes);
      ASSERT_TRUE(channel.write_line(R"({"op": "shutdown"})"));
      (void)channel.read_line();
    }
    server_thread_.join();
    server_.reset();
    service_->stop();
  }

  JsonValue round_trip(LineChannel& channel, const std::string& line) {
    EXPECT_TRUE(channel.write_line(line));
    const std::optional<std::string> reply = channel.read_line();
    EXPECT_TRUE(reply.has_value());
    return json_parse(reply.value_or("null"));
  }

  std::string path_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<SocketServer> server_;
  std::thread server_thread_;
  bool shut_down_ = false;
};

TEST_F(SocketFixture, RoundTripOverSocket) {
  FdHandle fd = connect_unix(path_, 2000);
  LineChannel channel(fd.get(), kDefaultMaxLineBytes);
  const JsonValue added = round_trip(channel, kAddPower);
  EXPECT_TRUE(added.at("ok").as_bool());
  const JsonValue solved = round_trip(channel, R"({"op": "solve"})");
  EXPECT_TRUE(solved.at("ok").as_bool());
  EXPECT_TRUE(solved.at("certificate_ok").as_bool());
  const JsonValue bad = round_trip(channel, "garbage");
  EXPECT_EQ(bad.at("code").as_string(), "parse_error");
}

TEST_F(SocketFixture, ShutdownRequestStopsTheServer) {
  FdHandle fd = connect_unix(path_, 2000);
  LineChannel channel(fd.get(), kDefaultMaxLineBytes);
  const JsonValue reply = round_trip(channel, R"({"op": "shutdown"})");
  EXPECT_TRUE(reply.at("ok").as_bool());
  shut_down_ = true;  // TearDown only joins.
}

TEST_F(SocketFixture, TwoConnectionsInterleaved) {
  FdHandle fd_a = connect_unix(path_, 2000);
  FdHandle fd_b = connect_unix(path_, 2000);
  LineChannel a(fd_a.get(), kDefaultMaxLineBytes);
  LineChannel b(fd_b.get(), kDefaultMaxLineBytes);
  const JsonValue add_a = round_trip(a, kAddPower);
  const JsonValue add_b = round_trip(b, kAddPower);
  EXPECT_NE(add_a.at("id").as_int(), add_b.at("id").as_int());
  // Tags come back on the connection that sent them.
  EXPECT_EQ(round_trip(a, R"({"op": "stats", "tag": "A"})")
                .at("tag")
                .as_string(),
            "A");
  EXPECT_EQ(round_trip(b, R"({"op": "stats", "tag": "B"})")
                .at("tag")
                .as_string(),
            "B");
}

TEST_F(SocketFixture, MetricsVerbReturnsPrometheusText) {
  FdHandle fd = connect_unix(path_, 2000);
  LineChannel channel(fd.get(), kDefaultMaxLineBytes);
  ASSERT_TRUE(round_trip(channel, kAddPower).at("ok").as_bool());
  ASSERT_TRUE(round_trip(channel, R"({"op": "solve"})").at("ok").as_bool());
  const JsonValue reply = round_trip(channel, R"({"op": "metrics"})");
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string body = reply.at("body").as_string();
  EXPECT_NE(body.find("# TYPE aa_svc_requests_total counter\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("aa_svc_threads 1\n"), std::string::npos) << body;
  EXPECT_NE(body.find("_bucket{le=\"+Inf\"}"), std::string::npos) << body;
  // Every line is a comment or `name[{labels}] value`: the metric name
  // stays inside the Prometheus charset and a value token follows.
  constexpr std::string_view kNameChars =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:";
  for (const std::string& line : lines_of(body)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_not_of(kNameChars);
    ASSERT_NE(name_end, std::string::npos) << line;
    ASSERT_GT(name_end, 0u) << line;
    EXPECT_TRUE(line[name_end] == '{' || line[name_end] == ' ') << line;
    EXPECT_NE(line.rfind(' '), line.size() - 1) << line;
  }
}

TEST_F(SocketFixture, MidStreamEofIsACleanDisconnect) {
  {
    FdHandle fd = connect_unix(path_, 2000);
    // Half a request, no newline, then hang up.
    ASSERT_GT(::send(fd.get(), "{\"op\": \"so", 10, 0), 0);
  }  // fd closes here.
  // The server survives and keeps serving new connections.
  FdHandle fd = connect_unix(path_, 2000);
  LineChannel channel(fd.get(), kDefaultMaxLineBytes);
  EXPECT_TRUE(round_trip(channel, R"({"op": "stats"})").at("ok").as_bool());
}

class SmallLineFixture : public SocketFixture {
 protected:
  void SetUp() override { start(ServiceConfig{}, /*max_line_bytes=*/128); }
};

TEST_F(SmallLineFixture, OversizedLineGetsTooLargeThenDisconnect) {
  FdHandle fd = connect_unix(path_, 2000);
  LineChannel channel(fd.get(), kDefaultMaxLineBytes);
  const std::string oversized =
      R"({"op": "solve", "tag": ")" + std::string(500, 'x') + R"("})";
  const JsonValue reply = round_trip(channel, oversized);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("code").as_string(), "too_large");
  // The stream cannot be resynchronized: the server closes it.
  EXPECT_FALSE(channel.write_line(R"({"op": "stats"})") &&
               channel.read_line().has_value());
  // A fresh connection with a small request still works.
  FdHandle fresh = connect_unix(path_, 2000);
  LineChannel fresh_channel(fresh.get(), kDefaultMaxLineBytes);
  EXPECT_TRUE(
      round_trip(fresh_channel, R"({"op": "stats"})").at("ok").as_bool());
}

// --- Binary-driven tests -------------------------------------------------

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, read);
  }
  result.status = ::pclose(pipe);
  return result;
}

constexpr const char* kServe = AA_SERVE_BIN;
constexpr const char* kLoadgen = AA_LOADGEN_BIN;
constexpr const char* kTop = AA_TOP_BIN;

TEST(ServeBinary, StdioSession) {
  const std::string script =
      R"({"op": "add_thread", "thread": {"type": "log", "scale": 2.0, "rate": 0.1}})"
      "\\n"
      R"({"op": "solve"})"
      "\\n"
      R"({"op": "bogus"})"
      "\\n"
      R"({"op": "shutdown"})";
  const CommandResult run = run_command("printf '" + script + "\\n' | " +
                                        kServe + " --capacity 32");
  ASSERT_EQ(run.status, 0) << run.output;
  const std::vector<std::string> replies = lines_of(run.output);
  ASSERT_EQ(replies.size(), 4u) << run.output;
  EXPECT_TRUE(json_parse(replies[0]).at("ok").as_bool());
  const JsonValue solved = json_parse(replies[1]);
  EXPECT_TRUE(solved.at("ok").as_bool());
  EXPECT_TRUE(solved.at("certificate_ok").as_bool());
  EXPECT_EQ(json_parse(replies[2]).at("code").as_string(), "unknown_op");
  EXPECT_TRUE(json_parse(replies[3]).at("ok").as_bool());
}

TEST(ServeBinary, MetricsVerbRoundTripsOverStdio) {
  const std::string script =
      R"({"op": "add_thread", "thread": {"type": "power", "scale": 1.0, "beta": 0.5}})"
      "\\n"
      R"({"op": "solve"})"
      "\\n"
      R"({"op": "metrics"})"
      "\\n"
      R"({"op": "shutdown"})";
  // --batch-max 1 keeps the metrics request in a later batch than the
  // solve, so the scrape observes the committed solve counters.
  const CommandResult run = run_command("printf '" + script + "\\n' | " +
                                        kServe + " --batch-max 1");
  ASSERT_EQ(run.status, 0) << run.output;
  const std::vector<std::string> replies = lines_of(run.output);
  ASSERT_EQ(replies.size(), 4u) << run.output;
  const JsonValue reply = json_parse(replies[2]);
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string body = reply.at("body").as_string();
  EXPECT_NE(body.find("# TYPE aa_svc_request_latency_ms histogram\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("aa_svc_solves_total{path=\"full\"} 1\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("aa_svc_certificates_total{verdict=\"pass\"} 1\n"),
            std::string::npos)
      << body;
}

TEST(ServeBinary, TopScrapesLiveServerAndTraceOutIsLoadable) {
  const std::string sock = socket_path("top");
  const std::string trace_file = sock + ".trace.json";
  // Server with --trace-out, a 1000-request soak in the background, and
  // aa_top scraping the metrics verb while the soak is in flight. aa_top
  // exits non-zero if the exposition fails its validator, so it doubles
  // as the format checker.
  const std::string command =
      std::string("sh -c '") + kServe + " --socket " + sock +
      " --trace-out " + trace_file + " & server=$!; " + kLoadgen +
      " --socket " + sock +
      " --requests 1000 --connections 4 --seed 11 & load=$!; " + kTop +
      " --socket " + sock + " --once 1 --raw 1; rc=$?; "
      "wait $load || rc=1; " + kLoadgen + " --socket " + sock +
      " --requests 0 --threads-init 0 --shutdown 1 > /dev/null; "
      "wait $server || rc=1; exit $rc'";
  const CommandResult run = run_command(command);
  EXPECT_EQ(run.status, 0) << run.output;
  EXPECT_NE(run.output.find("aa_svc_requests_total"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("_bucket{le=\"+Inf\"}"), std::string::npos)
      << run.output;

  // The shutdown trace must be a loadable trace_event document.
  std::ifstream in(trace_file);
  ASSERT_TRUE(in.good()) << trace_file;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue trace = json_parse(buffer.str());
  EXPECT_FALSE(trace.at("traceEvents").as_array().empty());
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  std::remove(trace_file.c_str());
}

TEST(ServeBinary, LoadgenSoakEndsWithZeroFailures) {
  const std::string sock = socket_path("soak");
  // One shell: server in the background, loadgen drives it (including the
  // final shutdown), then the server's own exit status is checked too.
  const std::string command =
      std::string("sh -c '") + kServe + " --socket " + sock +
      " --batch-linger-ms 0.2 & server=$!; " + kLoadgen + " --socket " +
      sock + " --requests 300 --connections 3 --seed 9 --shutdown 1; "
      "rc=$?; wait $server || rc=1; exit $rc'";
  const CommandResult run = run_command(command);
  EXPECT_EQ(run.status, 0) << run.output;
  EXPECT_NE(run.output.find("failures: 0"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("latency ms: p50 "), std::string::npos)
      << run.output;
}

}  // namespace
}  // namespace aa::svc
