// Tests for the bench-harness table printer (support/table.hpp).

#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace aa::support {
namespace {

TEST(Table, TextRenderingAlignsColumns) {
  Table table({"beta", "Alg2/SO"});
  table.add_row({"1", "0.9990"});
  table.add_row({"15", "0.9991"});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("0.9991"), std::string::npos);
  // Header + rule + two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, DoubleRowFormatting) {
  Table table({"a", "b"});
  table.add_row_numeric({1.0, 2.34567}, 3);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("1.000"), std::string::npos);
  EXPECT_NE(text.find("2.346"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({std::string("only one")}),
               std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "value"});
  table.add_row({std::string("with,comma"), std::string("with\"quote")});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table table({"x"});
  table.add_row({std::string("plain")});
  EXPECT_EQ(table.to_csv(), "x\nplain\n");
}

TEST(Table, StreamOperatorMatchesToText) {
  Table table({"x"});
  table.add_row({std::string("1")});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.to_text());
}

TEST(Table, CountsAreTracked) {
  Table table({"a", "b", "c"});
  EXPECT_EQ(table.column_count(), 3u);
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row_numeric({1.0, 2.0, 3.0});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 4), "2.0000");
}

}  // namespace
}  // namespace aa::support
