// Fixture: naked new in solver code.
int* leak() { return new int(7); }
