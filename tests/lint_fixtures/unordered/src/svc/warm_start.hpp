#pragma once
#include <unordered_map>
// Fixture: hash-seeded iteration order in warm-start state.
inline std::unordered_map<int, int> previous_server;
