#pragma once
// Fixture: the positive control — compiles on its own.
#include <vector>
inline std::vector<int> fine() { return {}; }
