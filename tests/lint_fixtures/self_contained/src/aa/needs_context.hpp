#pragma once
// Fixture: not self-contained — std::vector is used without <vector>.
inline std::vector<int> broken() { return {}; }
