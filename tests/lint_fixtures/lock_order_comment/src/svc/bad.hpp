#pragma once

// Fixture: every Mutex/SharedMutex/PhantomMutex declaration must carry a
// "Lock order:" comment. `undocumented_` must be flagged; the two
// documented members must not.

#include "support/sync.hpp"

namespace aa::svc {

class Fixture {
 private:
  support::Mutex undocumented_;

  // Lock order: leaf — nothing else is acquired while held.
  support::Mutex documented_;

  mutable support::SharedMutex also_documented_;  // Lock order: leaf.
};

}  // namespace aa::svc
