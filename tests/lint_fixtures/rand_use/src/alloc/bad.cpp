// Fixture: rand() has global hidden state and unspecified sequences.
int pick() { return rand() % 7; }
