#pragma once

// Fixture: a `*_locked` function declared in a header must state its
// caller-holds-the-lock contract with AA_REQUIRES(...). `drain_locked`
// must be flagged; `refill_locked` must not, and the call site inside
// refill() must not be mistaken for a declaration.

#include "support/sync.hpp"

namespace aa::svc {

class Fixture {
 public:
  void drain_locked();
  void refill_locked() AA_REQUIRES(mutex_);

  void refill() {
    const support::MutexLock lock(mutex_);
    refill_locked();
  }

 private:
  // Lock order: leaf — nothing else is acquired while held.
  support::Mutex mutex_;
};

}  // namespace aa::svc
