#pragma once
#include <string_view>

namespace aa::obs::metric {

// aa-lint-section: counters
inline constexpr std::string_view kFooBar = "foo/bar";

inline constexpr std::string_view kAllCounters[] = {kFooBar};

// aa-lint-section: timers
inline constexpr std::string_view kAllTimers[] = {};

// aa-lint-section: samples
inline constexpr std::string_view kAllSamples[] = {};

// aa-lint-section: end

}  // namespace aa::obs::metric
