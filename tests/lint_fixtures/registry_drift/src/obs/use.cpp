// Fixture: references the constant so only the doc drift is reported.
auto used = metric::kFooBar;
