#pragma once
#include <string_view>

namespace aa::svc {
namespace error_code {
inline constexpr std::string_view kBadTenant = "bad_tenant";
inline constexpr std::string_view kTenantGhost = "tenant_ghost";
}  // namespace error_code
}  // namespace aa::svc
