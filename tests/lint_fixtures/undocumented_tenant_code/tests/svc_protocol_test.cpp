// Fixture: only the bad_tenant code is exercised.
void f() { (void)error_code::kBadTenant; }
