// Fixture: exact comparison against a floating-point literal in solver
// code is a determinism hazard.
bool degenerate(double x) { return x == 1.0; }
