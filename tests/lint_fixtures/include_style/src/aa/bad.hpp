#include "../aa/sibling.hpp"
#include "does/not/exist.hpp"
