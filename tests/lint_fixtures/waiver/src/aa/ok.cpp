// Fixture: an explicit waiver suppresses the diagnostic on that line.
bool exact_grid(double x) {
  return x == 0.5;  // aa-lint: allow(determinism) grid values are exact
}
