// Fixture: only the timeout code is exercised.
void f() { (void)error_code::kTimeout; }
