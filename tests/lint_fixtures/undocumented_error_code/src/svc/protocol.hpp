#pragma once
#include <string_view>

namespace aa::svc {
namespace error_code {
inline constexpr std::string_view kTimeout = "timeout";
inline constexpr std::string_view kGhost = "ghost";
}  // namespace error_code
}  // namespace aa::svc
