// Fixture: metric names at obs call sites must come from the registry
// (src/obs/registry.hpp), never from string literals.
void bad() { obs::count("typo/name"); }
