// Fixture: naked standard synchronization primitives outside
// src/support/sync.hpp. Each line below must produce a [concurrency]
// diagnostic; the waived one must not.
#include <condition_variable>
#include <mutex>

std::mutex plain_mutex;
std::condition_variable plain_cv;

void touch() {
  const std::lock_guard<std::mutex> lock(plain_mutex);
}

// An explicit waiver suppresses the diagnostic on that line.
std::mutex waived_mutex;  // aa-lint: allow(concurrency) fixture waiver
