// Focused tests for paths the broader suites exercise only indirectly:
// wrapper utilities inside the allocators, Algorithm 1's unfull branch on a
// crafted instance, degenerate caps, and API misuse errors.

#include <gtest/gtest.h>

#include <memory>

#include "aa/algorithm1.hpp"
#include "aa/multi_resource.hpp"
#include "alloc/allocator.hpp"
#include "alloc/super_optimal.hpp"
#include "support/json.hpp"
#include "utility/linearized.hpp"
#include "utility/utility_function.hpp"

namespace aa {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;
using util::Resource;
using util::UtilityPtr;

TEST(AllocatorWrappers, ScaledUtilityFlowsThroughGreedyAndBisection) {
  // The ScaledUtility overrides marginal(); both allocators must honour it.
  const auto base = std::make_shared<PowerUtility>(1.0, 0.5, 100);
  std::vector<UtilityPtr> threads{
      std::make_shared<util::ScaledUtility>(base, 3.0),
      base,
  };
  const alloc::AllocationResult g = alloc::allocate_greedy(threads, 50);
  const alloc::AllocationResult b = alloc::allocate_bisection(threads, 50);
  // The scaled thread has 3x the marginals everywhere, so it must receive
  // strictly more resource under both algorithms.
  EXPECT_GT(g.amounts[0], g.amounts[1]);
  EXPECT_GT(b.amounts[0], b.amounts[1]);
  EXPECT_NEAR(g.total_utility, b.total_utility,
              1e-7 * (1.0 + g.total_utility));
}

TEST(AllocatorWrappers, SaturatedUtilityStopsEarning) {
  std::vector<UtilityPtr> threads{
      std::make_shared<util::SaturatedUtility>(
          std::make_shared<CappedLinearUtility>(1.0, 100.0, 100), 5.0),
      std::make_shared<CappedLinearUtility>(0.5, 100.0, 100),
  };
  const alloc::AllocationResult r = alloc::allocate_greedy(threads, 100);
  // Thread 0 earns nothing beyond 5 units (value ceiling 5.0); thread 1
  // takes the rest at slope 0.5.
  EXPECT_EQ(r.amounts[0], 5);
  EXPECT_EQ(r.amounts[1], 95);
  EXPECT_DOUBLE_EQ(r.total_utility, 5.0 + 47.5);
}

TEST(AllocatorEdge, PerThreadCapZeroAllocatesNothing) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.5, 100)};
  const alloc::AllocationResult g = alloc::allocate_greedy(threads, 50, 0);
  const alloc::AllocationResult b = alloc::allocate_bisection(threads, 50, 0);
  EXPECT_EQ(g.amounts[0], 0);
  EXPECT_EQ(b.amounts[0], 0);
}

TEST(Algorithm1Unfull, PicksTheBestPayingLeftover) {
  // Crafted so the third thread CANNOT receive its c_hat anywhere and must
  // take leftovers: two servers of 10; threads A and B saturate at 7 with
  // steep slopes (assigned first); thread D wants 10 (c_hat = 10) but only
  // 3 remain on each server -> unfull, takes 3 on either server.
  core::Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(5.0, 7.0, 10),   // A
      std::make_shared<CappedLinearUtility>(5.0, 7.0, 10),   // B
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10),  // D
  };
  const core::SolveResult result = core::solve_algorithm1(instance);
  ASSERT_EQ(core::check_assignment(instance, result.assignment), "");
  EXPECT_DOUBLE_EQ(result.assignment.alloc[0], 7.0);
  EXPECT_DOUBLE_EQ(result.assignment.alloc[1], 7.0);
  EXPECT_DOUBLE_EQ(result.assignment.alloc[2], 3.0);  // All that remains.
  EXPECT_DOUBLE_EQ(result.utility, 35.0 + 35.0 + 3.0);
}

TEST(LinearizedEdge, DensityOfZeroPeakThread) {
  const util::Linearized flat{.cap = 10, .peak = 0.0};
  EXPECT_DOUBLE_EQ(flat.density(), 0.0);
  EXPECT_DOUBLE_EQ(flat.value(5.0), 0.0);
}

TEST(MultiResourceErrors, TotalUtilityArityMismatch) {
  core::MultiInstance instance;
  instance.num_servers = 1;
  instance.capacities = {10, 10};
  core::MultiUtility bundle;
  bundle.parts = {std::make_shared<PowerUtility>(1.0, 0.5, 10),
                  std::make_shared<PowerUtility>(1.0, 0.5, 10)};
  instance.threads.push_back(bundle);
  core::MultiAssignment wrong;
  wrong.server = {0};
  wrong.alloc = {{1.0}};  // Only one resource type given.
  EXPECT_THROW((void)core::total_utility(instance, wrong),
               std::invalid_argument);
}

TEST(JsonErrors, SetOnNonObjectThrows) {
  support::JsonValue number(3.0);
  EXPECT_THROW(number.set("k", 1), std::runtime_error);
}

TEST(JsonErrors, NonFiniteNumbersRefuseToSerialize) {
  const support::JsonValue inf(std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)inf.dump(), std::runtime_error);
}

TEST(SuperOptimalEdge, MoreServersThanThreads) {
  // Lemma V.3 does NOT apply when n*C < m*C; the pool simply cannot be
  // exhausted and every thread saturates its own domain.
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.5, 40)};
  const alloc::SuperOptimalResult so = alloc::super_optimal(threads, 5, 40);
  EXPECT_EQ(so.c_hat[0], 40);
}

}  // namespace
}  // namespace aa
