// Tests for the warm-start incremental solver (svc/warm_start.hpp).
//
// The property at the heart of the service: after ANY delta sequence, the
// solve reply's certificate chain verifies against the *current* instance,
// so warm-start utility is never below alpha * F_hat (0.828 * the
// super-optimal bound). The sticky/warm path must additionally never
// migrate more than a from-scratch re-solve policy over the same deltas.

#include "svc/warm_start.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aa/certify.hpp"
#include "aa/problem.hpp"
#include "aa/solve_result.hpp"
#include "support/distributions.hpp"
#include "support/prng.hpp"
#include "svc/instance_state.hpp"
#include "utility/generator.hpp"

namespace aa::svc {
namespace {

constexpr util::Resource kCapacity = 64;
constexpr std::size_t kServers = 3;

util::UtilityPtr random_utility(support::Rng& rng) {
  support::DistributionParams dist;  // Section VII uniform H.
  return util::generate_utility(kCapacity, dist, rng);
}

InstanceState seeded_state(std::size_t threads, support::Rng& rng) {
  InstanceState state(kServers, kCapacity);
  for (std::size_t i = 0; i < threads; ++i) {
    (void)state.add_thread(random_utility(rng));
  }
  return state;
}

/// Re-certifies a solve result against the state it claims to solve,
/// including the O(n C) concavity sweep the service skips per-solve.
void expect_certified(const InstanceState& state,
                      const ServiceSolveResult& solved,
                      const std::string& context) {
  EXPECT_TRUE(solved.certificate.ok())
      << context << ": " << solved.certificate.to_json().dump();
  const core::Instance instance = state.to_instance();
  const obs::Certificate recheck =
      core::certify(instance, solved.result, "recheck",
                    core::CertifyOptions{/*check_concavity=*/true});
  EXPECT_TRUE(recheck.ok()) << context << ": " << recheck.to_json().dump();
  EXPECT_GE(solved.result.utility,
            core::kApproximationRatio * solved.result.super_optimal_utility -
                1e-7 * (1.0 + solved.result.super_optimal_utility))
      << context;
}

TEST(WarmStartSolver, EmptyInstanceSolves) {
  InstanceState state(kServers, kCapacity);
  WarmStartSolver solver;
  const ServiceSolveResult solved = solver.solve(state);
  EXPECT_TRUE(solved.certificate.ok());
  EXPECT_TRUE(solved.ids.empty());
  EXPECT_DOUBLE_EQ(solved.result.utility, 0.0);
}

TEST(WarmStartSolver, CachedPathWhenVersionUnchanged) {
  support::Rng rng(1);
  InstanceState state = seeded_state(6, rng);
  WarmStartSolver solver;
  const ServiceSolveResult first = solver.solve(state);
  EXPECT_EQ(first.path, SolvePath::kFull);  // No previous solution yet.
  const ServiceSolveResult second = solver.solve(state);
  EXPECT_EQ(second.path, SolvePath::kCached);
  EXPECT_EQ(second.migrations, 0u);
  EXPECT_DOUBLE_EQ(second.result.utility, first.result.utility);
  expect_certified(state, second, "cached");
}

TEST(WarmStartSolver, ForceFullSkipsCacheAndWarm) {
  support::Rng rng(2);
  InstanceState state = seeded_state(6, rng);
  WarmStartSolver solver;
  (void)solver.solve(state);
  const ServiceSolveResult forced = solver.solve(state, /*force_full=*/true);
  EXPECT_EQ(forced.path, SolvePath::kFull);
  expect_certified(state, forced, "forced full");
}

TEST(WarmStartSolver, WarmPathPinsPlacement) {
  support::Rng rng(3);
  InstanceState state = seeded_state(10, rng);
  WarmStartSolver solver;
  (void)solver.solve(state);
  // One mild drift delta: few deltas, so the warm path is eligible; when
  // taken it must not migrate anything.
  ASSERT_TRUE(state.scale_utility(state.threads()[0].first, 1.02));
  const ServiceSolveResult solved = solver.solve(state);
  EXPECT_NE(solved.path, SolvePath::kCached);
  if (solved.path == SolvePath::kWarm) {
    EXPECT_EQ(solved.migrations, 0u);
  }
  expect_certified(state, solved, "after mild drift");
}

TEST(WarmStartSolver, ManyDeltasForceFullResolve) {
  support::Rng rng(4);
  InstanceState state = seeded_state(12, rng);
  WarmStartConfig config;
  config.resolve_delta_min = 4;
  config.resolve_delta_fraction = 0.25;
  WarmStartSolver solver(config);
  (void)solver.solve(state);
  // 5 deltas > max(4, 0.25 * 12) = 4: warm path no longer trusted.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(state.scale_utility(state.threads()[0].first, 1.01));
  }
  const ServiceSolveResult solved = solver.solve(state);
  EXPECT_EQ(solved.path, SolvePath::kFull);
  expect_certified(state, solved, "past delta threshold");
}

TEST(WarmStartSolver, ResetDropsWarmState) {
  support::Rng rng(5);
  InstanceState state = seeded_state(6, rng);
  WarmStartSolver solver;
  (void)solver.solve(state);
  solver.reset();
  const ServiceSolveResult solved = solver.solve(state);
  EXPECT_EQ(solved.path, SolvePath::kFull);
}

/// One random delta; returns true when it changed the state.
bool apply_random_delta(InstanceState& state, support::Rng& rng,
                        double drift_low, double drift_high) {
  const double dice = rng.uniform01();
  if (state.num_threads() == 0 || dice < 0.12) {
    (void)state.add_thread(random_utility(rng));
    return true;
  }
  const std::size_t pick = rng.uniform_below(state.num_threads());
  const ThreadId id = state.threads()[pick].first;
  if (dice < 0.24 && state.num_threads() > 2) {
    return state.remove_thread(id);
  }
  const double factor =
      drift_low + (drift_high - drift_low) * rng.uniform01();
  return state.scale_utility(id, factor);
}

class WarmStartProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The tentpole property: after any delta sequence — including aggressive
// drift and churn — every solve (whatever path it took) carries a passing
// certificate, i.e. utility >= 0.828 * F_hat on the current instance.
TEST_P(WarmStartProperty, EveryPathCertifiesAfterAnyDeltaSequence) {
  support::Rng rng(GetParam());
  InstanceState state = seeded_state(4 + rng.uniform_below(8), rng);
  WarmStartSolver solver;
  bool saw_warm = false;
  for (int round = 0; round < 30; ++round) {
    const std::size_t deltas = 1 + rng.uniform_below(4);
    for (std::size_t d = 0; d < deltas; ++d) {
      (void)apply_random_delta(state, rng, 0.5, 2.0);
    }
    const ServiceSolveResult solved =
        solver.solve(state, /*force_full=*/rng.uniform01() < 0.1);
    expect_certified(state, solved,
                     "seed " + std::to_string(GetParam()) + " round " +
                         std::to_string(round) + " path " +
                         solve_path_name(solved.path));
    saw_warm = saw_warm || solved.path == SolvePath::kWarm;
  }
  EXPECT_TRUE(saw_warm) << "delta mix never exercised the warm path";
}

// Satellite: warm-start vs from-scratch parity. Over the same mild-drift
// delta stream, both policies certify every solve and the sticky solver
// never migrates more than the always-resolve solver.
TEST_P(WarmStartProperty, StickyMigratesNoMoreThanResolve) {
  support::Rng rng(GetParam() + 1000);
  InstanceState sticky_state = seeded_state(8, rng);
  // Mirror the state (same utilities, same ids) for the resolve policy.
  InstanceState resolve_state(kServers, kCapacity);
  for (const auto& [id, utility] : sticky_state.threads()) {
    (void)resolve_state.add_thread(utility);
  }
  WarmStartSolver sticky;
  WarmStartSolver resolve;
  std::size_t sticky_migrations = 0;
  std::size_t resolve_migrations = 0;
  for (int round = 0; round < 25; ++round) {
    // Same drift applied to both copies (ids line up by construction).
    const std::size_t pick = rng.uniform_below(sticky_state.num_threads());
    const ThreadId id = sticky_state.threads()[pick].first;
    const double factor = 0.95 + 0.1 * rng.uniform01();
    ASSERT_TRUE(sticky_state.scale_utility(id, factor));
    ASSERT_TRUE(resolve_state.scale_utility(id, factor));

    const ServiceSolveResult sticky_solved = sticky.solve(sticky_state);
    const ServiceSolveResult resolve_solved =
        resolve.solve(resolve_state, /*force_full=*/true);
    sticky_migrations += sticky_solved.migrations;
    resolve_migrations += resolve_solved.migrations;
    expect_certified(sticky_state, sticky_solved, "sticky");
    expect_certified(resolve_state, resolve_solved, "resolve");
  }
  EXPECT_LE(sticky_migrations, resolve_migrations)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace aa::svc
