// Cross-module degenerate-input tests: zero capacity, single thread,
// massive thread counts relative to servers, and all-zero utilities. These
// exercise paths the property sweeps rarely hit.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/heuristics.hpp"
#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

Instance zero_capacity_instance() {
  Instance instance;
  instance.num_servers = 3;
  instance.capacity = 0;
  instance.threads = {std::make_shared<PowerUtility>(1.0, 0.5, 10),
                      std::make_shared<PowerUtility>(2.0, 0.5, 10)};
  return instance;
}

TEST(EdgeCases, ZeroCapacityThroughBothAlgorithms) {
  const Instance instance = zero_capacity_instance();
  for (const SolveResult& result :
       {solve_algorithm1(instance), solve_algorithm2(instance),
        solve_algorithm2_refined(instance)}) {
    EXPECT_EQ(check_assignment(instance, result.assignment), "");
    EXPECT_DOUBLE_EQ(result.utility, 0.0);
    EXPECT_DOUBLE_EQ(result.super_optimal_utility, 0.0);
  }
}

TEST(EdgeCases, ZeroCapacityHeuristics) {
  const Instance instance = zero_capacity_instance();
  support::Rng rng(1);
  for (const Assignment& a :
       {heuristic_uu(instance), heuristic_ur(instance, rng),
        heuristic_ru(instance, rng), heuristic_rr(instance, rng)}) {
    EXPECT_EQ(check_assignment(instance, a), "");
    EXPECT_DOUBLE_EQ(total_utility(instance, a), 0.0);
  }
}

TEST(EdgeCases, SingleThreadSingleServer) {
  Instance instance;
  instance.num_servers = 1;
  instance.capacity = 17;
  instance.threads = {std::make_shared<PowerUtility>(3.0, 0.5, 17)};
  const SolveResult result = solve_algorithm2_refined(instance);
  EXPECT_DOUBLE_EQ(result.assignment.alloc[0], 17.0);
  EXPECT_NEAR(result.utility, 3.0 * std::sqrt(17.0), 1e-9);
  EXPECT_NEAR(result.utility, result.super_optimal_utility, 1e-9);
}

TEST(EdgeCases, ManyThreadsFewServers) {
  // 60 threads on 2 servers: most threads receive zero; the algorithm must
  // stay valid and keep the Lemma V.15 certificate.
  support::Rng rng(2);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 30;
  instance.threads = util::generate_utilities(60, 30, dist, rng);
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_EQ(check_assignment(instance, result.assignment), "");
  EXPECT_GE(result.linearized_utility,
            kApproximationRatio * result.super_optimal_utility - 1e-7);
}

TEST(EdgeCases, AllZeroUtilities) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  for (int i = 0; i < 4; ++i) {
    instance.threads.push_back(
        std::make_shared<CappedLinearUtility>(0.0, 10.0, 10));
  }
  const SolveResult a1 = solve_algorithm1(instance);
  const SolveResult a2 = solve_algorithm2(instance);
  EXPECT_DOUBLE_EQ(a1.utility, 0.0);
  EXPECT_DOUBLE_EQ(a2.utility, 0.0);
  EXPECT_EQ(check_assignment(instance, a1.assignment), "");
  EXPECT_EQ(check_assignment(instance, a2.assignment), "");
}

TEST(EdgeCases, IdenticalThreadsSplitEvenly) {
  // m identical saturating threads on m servers: each should end up alone
  // with its saturation amount.
  Instance instance;
  instance.num_servers = 4;
  instance.capacity = 100;
  for (int i = 0; i < 4; ++i) {
    instance.threads.push_back(
        std::make_shared<CappedLinearUtility>(1.0, 80.0, 100));
  }
  const SolveResult result = solve_algorithm2(instance);
  EXPECT_NEAR(result.utility, 4.0 * 80.0, 1e-9);
  std::vector<int> counts(4, 0);
  for (const std::size_t s : result.assignment.server) {
    ++counts[s];
  }
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(EdgeCases, LocalSearchOnDegenerateInstances) {
  const Instance zero = zero_capacity_instance();
  Assignment start;
  start.server.assign(2, 0);
  start.alloc.assign(2, 0.0);
  const LocalSearchResult result = improve_local_search(zero, start);
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
  EXPECT_EQ(check_assignment(zero, result.assignment), "");
}

TEST(EdgeCases, CapacityOneResourceUnit) {
  // The smallest nontrivial capacity: a single indivisible unit per server.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 1;
  instance.threads = {std::make_shared<CappedLinearUtility>(5.0, 1.0, 1),
                      std::make_shared<CappedLinearUtility>(3.0, 1.0, 1),
                      std::make_shared<CappedLinearUtility>(1.0, 1.0, 1)};
  const SolveResult result = solve_algorithm2_refined(instance);
  EXPECT_EQ(check_assignment(instance, result.assignment), "");
  // The two best threads get the two units: 5 + 3.
  EXPECT_DOUBLE_EQ(result.utility, 8.0);
}

}  // namespace
}  // namespace aa::core
