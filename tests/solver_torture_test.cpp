// Cross-solver integration torture test: every solver in the library runs
// on the same randomized instances, and the full chain of dominance and
// validity invariants must hold simultaneously:
//
//   exact >= search >= refined >= raw alg2 (utility ordering)
//   exact >= alpha^-1 * ... (approximation bounds both ways)
//   every assignment structurally valid
//   heuristics never beat exact
//   serialization round-trip preserves solver results

#include <gtest/gtest.h>

#include <tuple>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/coschedule.hpp"
#include "aa/exact.hpp"
#include "aa/heuristics.hpp"
#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "io/instance_io.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

using Param = std::tuple<support::DistributionKind, std::uint64_t>;

class SolverTorture : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] Instance make_instance(std::size_t n, std::size_t m,
                                       Resource capacity) const {
    const auto& [kind, seed] = GetParam();
    support::Rng rng(seed * 31 + 7);
    support::DistributionParams dist;
    dist.kind = kind;
    Instance instance;
    instance.num_servers = m;
    instance.capacity = capacity;
    instance.threads = util::generate_utilities(n, capacity, dist, rng);
    return instance;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverTorture,
    ::testing::Combine(
        ::testing::Values(support::DistributionKind::kUniform,
                          support::DistributionKind::kPowerLaw,
                          support::DistributionKind::kDiscrete),
        ::testing::Range<std::uint64_t>(0, 4)));

TEST_P(SolverTorture, FullDominanceChainOnSmallInstances) {
  const Instance instance = make_instance(8, 3, 24);
  const double tol = 1e-7;

  const SolveResult raw = solve_algorithm2(instance);
  const SolveResult refined = solve_algorithm2_refined(instance);
  const LocalSearchResult searched =
      improve_local_search(instance, refined.assignment);
  const ExactResult exact = solve_exact(instance);
  const SolveResult alg1 = solve_algorithm1_refined(instance);

  // Validity for everything.
  ASSERT_EQ(check_assignment(instance, raw.assignment), "");
  ASSERT_EQ(check_assignment(instance, refined.assignment), "");
  ASSERT_EQ(check_assignment(instance, searched.assignment), "");
  ASSERT_EQ(check_assignment(instance, exact.assignment), "");
  ASSERT_EQ(check_assignment(instance, alg1.assignment), "");

  const double scale = 1.0 + exact.utility;
  // Dominance chain.
  ASSERT_LE(raw.utility, refined.utility + tol * scale);
  ASSERT_LE(refined.utility, searched.utility + tol * scale);
  ASSERT_LE(searched.utility, exact.utility + tol * scale);
  ASSERT_LE(alg1.utility, exact.utility + tol * scale);
  // Approximation guarantees.
  ASSERT_GE(raw.utility, kApproximationRatio * exact.utility - tol * scale);
  ASSERT_GE(alg1.utility, kApproximationRatio * exact.utility - tol * scale);
  // Exact never exceeds the super-optimal relaxation.
  ASSERT_LE(exact.utility, raw.super_optimal_utility + tol * scale);
}

TEST_P(SolverTorture, HeuristicsNeverBeatExact) {
  const Instance instance = make_instance(7, 3, 20);
  const ExactResult exact = solve_exact(instance);
  support::Rng rng(std::get<1>(GetParam()) + 99);
  const double tol = 1e-7 * (1.0 + exact.utility);
  EXPECT_LE(total_utility(instance, heuristic_uu(instance)),
            exact.utility + tol);
  EXPECT_LE(total_utility(instance, heuristic_ur(instance, rng)),
            exact.utility + tol);
  EXPECT_LE(total_utility(instance, heuristic_ru(instance, rng)),
            exact.utility + tol);
  EXPECT_LE(total_utility(instance, heuristic_rr(instance, rng)),
            exact.utility + tol);
}

TEST_P(SolverTorture, PairCoschedulingBoundedByExact) {
  const Instance instance = make_instance(6, 3, 18);
  const CoScheduleResult pairs = coschedule_exact_pairs(instance);
  const ExactResult exact = solve_exact(instance);
  EXPECT_LE(pairs.utility, exact.utility + 1e-7 * (1.0 + exact.utility));
}

TEST_P(SolverTorture, SerializationPreservesSolverBehaviour) {
  const Instance instance = make_instance(10, 3, 30);
  const Instance reloaded =
      io::instance_from_json(io::instance_to_json(instance));
  const SolveResult original = solve_algorithm2_refined(instance);
  const SolveResult roundtrip = solve_algorithm2_refined(reloaded);
  EXPECT_EQ(original.assignment.server, roundtrip.assignment.server);
  EXPECT_NEAR(original.utility, roundtrip.utility,
              1e-9 * (1.0 + original.utility));
}

}  // namespace
}  // namespace aa::core
