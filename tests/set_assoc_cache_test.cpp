// Tests for the set-associative way-partitioned cache simulator
// (cachesim/set_assoc_cache.hpp), including cross-validation against the
// Mattson stack-distance model.

#include "cachesim/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include "cachesim/stack_distance.hpp"

namespace aa::cachesim {
namespace {

TEST(SetAssoc, ColdMissesThenHits) {
  SetAssocCache cache({.num_sets = 4, .num_ways = 2}, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(4));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(4));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SetAssoc, LruEvictionWithinSet) {
  // One set (num_sets = 1), 2 ways: lines 0, 1, then 2 evicts 0 (LRU).
  SetAssocCache cache({.num_sets = 1, .num_ways = 2}, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(2));  // Evicts 0.
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_FALSE(cache.access(0));  // 0 was evicted.
}

TEST(SetAssoc, TouchRefreshesLru) {
  SetAssocCache cache({.num_sets = 1, .num_ways = 2}, 2);
  (void)cache.access(0);
  (void)cache.access(1);
  (void)cache.access(0);          // Refresh 0: now 1 is LRU.
  (void)cache.access(2);          // Evicts 1.
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(1));
}

TEST(SetAssoc, ZeroOwnedWaysAlwaysMisses) {
  SetAssocCache cache({.num_sets = 8, .num_ways = 4}, 0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(cache.access(0));
  EXPECT_EQ(cache.misses(), 10u);
}

TEST(SetAssoc, SetIndexingSeparatesConflicts) {
  // Lines 0 and 1 land in different sets (num_sets = 2) and never conflict
  // even with a single way.
  SetAssocCache cache({.num_sets = 2, .num_ways = 1}, 1);
  (void)cache.access(0);
  (void)cache.access(1);
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(1));
  // Lines 0 and 2 share set 0 and thrash with one way.
  EXPECT_FALSE(cache.access(2));
  EXPECT_FALSE(cache.access(0));
}

TEST(SetAssoc, ResetClearsState) {
  SetAssocCache cache({.num_sets = 2, .num_ways = 2}, 2);
  (void)cache.access(0);
  (void)cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));  // Cold again.
}

TEST(SetAssoc, RunReturnsTraceMisses) {
  SetAssocCache cache({.num_sets = 2, .num_ways = 2}, 2);
  const Trace trace{0, 1, 0, 1, 2, 0};
  EXPECT_EQ(cache.run(trace), 3u);  // 0, 1, 2 cold; rest hit.
}

TEST(SetAssoc, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache({.num_sets = 3, .num_ways = 2}, 1),
               std::invalid_argument);
  EXPECT_THROW(SetAssocCache({.num_sets = 4, .num_ways = 0}, 0),
               std::invalid_argument);
  EXPECT_THROW(SetAssocCache({.num_sets = 4, .num_ways = 2}, 3),
               std::invalid_argument);
}

TEST(SetAssoc, MeasuredCurveIsMonotone) {
  support::Rng rng(1);
  const Trace trace =
      generate_trace(TraceConfig::mixed(32, 128, 1024, 20000), rng);
  const SetAssocConfig config{.num_sets = 64, .num_ways = 8};
  const auto curve = measure_miss_curve(trace, config);
  ASSERT_EQ(curve.size(), 9u);
  for (std::size_t w = 1; w < curve.size(); ++w) {
    ASSERT_LE(curve[w], curve[w - 1]) << "ways " << w;
  }
  EXPECT_EQ(curve[0], trace.size());
}

TEST(SetAssoc, AgreesWithStackDistanceModelOnUniformSets) {
  // For traces whose working set spreads evenly over sets, the
  // fully-associative model at w*num_sets lines should approximate the
  // set-associative measurement at w ways. Validate within 10% of total
  // accesses for a smooth mixed workload.
  support::Rng rng(2);
  const SetAssocConfig config{.num_sets = 64, .num_ways = 8};
  const Trace trace =
      generate_trace(TraceConfig::mixed(128, 256, 2048, 30000), rng);
  const auto measured = measure_miss_curve(trace, config);
  const StackDistanceProfile profile = compute_stack_distances(trace);
  for (std::uint64_t ways = 0; ways <= config.num_ways; ++ways) {
    const std::uint64_t predicted =
        ways == 0 ? trace.size() : profile.misses_at(ways * config.num_sets);
    const double diff =
        std::abs(static_cast<double>(predicted) -
                 static_cast<double>(measured[ways]));
    ASSERT_LE(diff, 0.1 * static_cast<double>(trace.size()))
        << "ways " << ways << ": predicted " << predicted << " measured "
        << measured[ways];
  }
}

TEST(SetAssoc, FullyAssociativeLimitMatchesModelExactly) {
  // num_sets = 1 makes the cache fully associative: the stack-distance
  // model is then exact.
  support::Rng rng(3);
  const Trace trace = generate_trace(TraceConfig::mixed(8, 24, 96, 4000), rng);
  const SetAssocConfig config{.num_sets = 1, .num_ways = 32};
  const auto measured = measure_miss_curve(trace, config);
  const StackDistanceProfile profile = compute_stack_distances(trace);
  for (std::uint64_t ways = 1; ways <= config.num_ways; ++ways) {
    ASSERT_EQ(measured[ways], profile.misses_at(ways)) << "ways " << ways;
  }
}

}  // namespace
}  // namespace aa::cachesim
