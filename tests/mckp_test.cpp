// Tests for the multiple-choice knapsack substrate (alloc/mckp.hpp).

#include "alloc/mckp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "alloc/allocator.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::alloc {
namespace {

using util::Resource;

TEST(MckpDp, HandComputedOptimum) {
  // Class 0: (w=2,v=3) or (w=4,v=5); class 1: (w=3,v=4). Capacity 5:
  // best is (2,3) + (3,4) = 7.
  const std::vector<MckpClass> classes = {{{2, 3.0}, {4, 5.0}}, {{3, 4.0}}};
  const MckpResult r = mckp_dp_exact(classes, 5);
  EXPECT_DOUBLE_EQ(r.total_value, 7.0);
  EXPECT_EQ(r.total_weight, 5);
  EXPECT_EQ(r.choice[0], 0u);
  EXPECT_EQ(r.choice[1], 0u);
}

TEST(MckpDp, ZeroItemIsAllowed) {
  // Capacity too small for both classes: pick the single best.
  const std::vector<MckpClass> classes = {{{4, 10.0}}, {{4, 3.0}}};
  const MckpResult r = mckp_dp_exact(classes, 4);
  EXPECT_DOUBLE_EQ(r.total_value, 10.0);
  EXPECT_EQ(r.choice[0], 0u);
  EXPECT_EQ(r.choice[1], kZeroChoice);
}

TEST(MckpDp, EmptyInputs) {
  const MckpResult r = mckp_dp_exact({}, 10);
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
  const std::vector<MckpClass> one_empty = {{}};
  const MckpResult r2 = mckp_dp_exact(one_empty, 10);
  EXPECT_DOUBLE_EQ(r2.total_value, 0.0);
  EXPECT_EQ(r2.choice[0], kZeroChoice);
}

TEST(MckpDp, RejectsNegativeInputs) {
  EXPECT_THROW((void)mckp_dp_exact({}, -1), std::invalid_argument);
  const std::vector<MckpClass> bad = {{{-1, 2.0}}};
  EXPECT_THROW((void)mckp_dp_exact(bad, 5), std::invalid_argument);
}

TEST(MckpDp, ChoiceReconstructionIsConsistent) {
  support::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<MckpClass> classes(4);
    for (auto& cls : classes) {
      const std::size_t items = 1 + rng.uniform_below(5);
      for (std::size_t j = 0; j < items; ++j) {
        cls.push_back({static_cast<Resource>(1 + rng.uniform_below(10)),
                       rng.uniform(0.5, 10.0)});
      }
    }
    const MckpResult r = mckp_dp_exact(classes, 15);
    double value = 0.0;
    Resource weight = 0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (r.choice[i] == kZeroChoice) continue;
      value += classes[i][r.choice[i]].value;
      weight += classes[i][r.choice[i]].weight;
    }
    ASSERT_NEAR(value, r.total_value, 1e-9);
    ASSERT_EQ(weight, r.total_weight);
    ASSERT_LE(weight, 15);
  }
}

TEST(MckpGreedy, ExactOnConcaveClasses) {
  // Concave class increments = the class itself; greedy fills like the
  // water-filling allocators.
  const std::vector<MckpClass> classes = {
      {{1, 4.0}, {2, 7.0}, {3, 9.0}},   // Marginals 4, 3, 2.
      {{1, 5.0}, {2, 8.0}, {3, 10.0}}}; // Marginals 5, 3, 2.
  const MckpResult greedy = mckp_greedy(classes, 4);
  const MckpResult exact = mckp_dp_exact(classes, 4);
  EXPECT_DOUBLE_EQ(greedy.total_value, exact.total_value);
}

TEST(MckpGreedy, HalfApproximationOnAdversarialInput) {
  // Classic greedy trap: one dense small item per class plus a big
  // valuable one. Greedy + best-single must stay >= OPT/2.
  const std::vector<MckpClass> classes = {{{1, 1.1}, {10, 10.0}},
                                          {{1, 1.1}, {10, 10.0}}};
  const MckpResult greedy = mckp_greedy(classes, 11);
  const MckpResult exact = mckp_dp_exact(classes, 11);
  EXPECT_GE(greedy.total_value, 0.5 * exact.total_value);
  EXPECT_LE(greedy.total_value, exact.total_value + 1e-12);
}

TEST(MckpGreedy, BestSingleItemSafeguardKicksIn) {
  // Greedy fills tiny dense items; the single huge item is better.
  const std::vector<MckpClass> classes = {{{1, 1.0}}, {{100, 60.0}}};
  const MckpResult r = mckp_greedy(classes, 100);
  EXPECT_DOUBLE_EQ(r.total_value, 60.0);
  EXPECT_EQ(r.choice[1], 0u);
  EXPECT_EQ(r.choice[0], kZeroChoice);
}

TEST(MckpGreedy, DominatedItemsNeverChosen) {
  // Item (5, 1.0) is dominated by (3, 2.0).
  const std::vector<MckpClass> classes = {{{3, 2.0}, {5, 1.0}}};
  const MckpResult r = mckp_greedy(classes, 10);
  EXPECT_EQ(r.choice[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_value, 2.0);
}

class MckpRandomAgreement : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MckpRandomAgreement,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST_P(MckpRandomAgreement, GreedyWithinHalfOfDp) {
  support::Rng rng(900 + GetParam());
  std::vector<MckpClass> classes(3 + GetParam() % 3);
  for (auto& cls : classes) {
    const std::size_t items = 1 + rng.uniform_below(6);
    for (std::size_t j = 0; j < items; ++j) {
      cls.push_back({static_cast<Resource>(1 + rng.uniform_below(20)),
                     rng.uniform(0.1, 20.0)});
    }
  }
  const Resource capacity = static_cast<Resource>(10 + rng.uniform_below(40));
  const MckpResult exact = mckp_dp_exact(classes, capacity);
  const MckpResult greedy = mckp_greedy(classes, capacity);
  ASSERT_LE(greedy.total_weight, capacity);
  ASSERT_LE(greedy.total_value, exact.total_value + 1e-9);
  ASSERT_GE(greedy.total_value, 0.5 * exact.total_value - 1e-9);
}

TEST(ClassFromUtility, SamplesLevels) {
  const util::PowerUtility f(1.0, 0.5, 100);
  const std::vector<Resource> levels = {25, 100, 25, 0, 400};
  const MckpClass cls = class_from_utility(f, levels);
  ASSERT_EQ(cls.size(), 2u);  // 25 and 100 (duplicates/0 dropped, 400 clamps to 100).
  EXPECT_EQ(cls[0].weight, 25);
  EXPECT_DOUBLE_EQ(cls[0].value, 5.0);
  EXPECT_EQ(cls[1].weight, 100);
  EXPECT_DOUBLE_EQ(cls[1].value, 10.0);
}

TEST(ClassFromUtilityUniform, CoversCapacity) {
  const util::PowerUtility f(1.0, 0.5, 100);
  const MckpClass cls = class_from_utility_uniform(f, 30);
  ASSERT_EQ(cls.size(), 4u);  // 30, 60, 90, 100.
  EXPECT_EQ(cls.back().weight, 100);
  EXPECT_THROW((void)class_from_utility_uniform(f, 0), std::invalid_argument);
}

TEST(MckpVsConcaveAllocators, AgreeOnConcaveUtilities) {
  // Full-resolution classes from concave utilities: MCKP DP == greedy
  // allocator on a shared pool.
  support::Rng rng(77);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  std::vector<util::UtilityPtr> threads;
  std::vector<MckpClass> classes;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(util::generate_utility(30, dist, rng));
    classes.push_back(class_from_utility_uniform(*threads.back(), 1));
  }
  for (const Resource pool : {10, 25, 60, 120}) {
    const AllocationResult alloc = allocate_greedy(threads, pool, 30);
    const MckpResult mckp = mckp_dp_exact(classes, pool);
    ASSERT_NEAR(alloc.total_utility, mckp.total_value,
                1e-7 * (1.0 + alloc.total_utility))
        << "pool " << pool;
  }
}

TEST(MckpVsConcaveAllocators, DpWinsOnNonConcaveClasses) {
  // A non-concave (S-shaped) utility tabulated as a class: the concave
  // allocators' assumptions break, MCKP DP still finds the optimum. Values
  // 0, 1, 1, 10 over weights 0..3 (big jump at 3).
  const std::vector<MckpClass> classes = {
      {{1, 1.0}, {2, 1.0}, {3, 10.0}},
      {{1, 1.0}, {2, 1.0}, {3, 10.0}}};
  const MckpResult r = mckp_dp_exact(classes, 3);
  EXPECT_DOUBLE_EQ(r.total_value, 10.0);  // All-in on one class.
}

}  // namespace
}  // namespace aa::alloc
