// Tests for the exhaustive AA solver (aa/exact.hpp).

#include "aa/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

TEST(Exact, SingleThreadGetsFullServer) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {std::make_shared<PowerUtility>(1.0, 0.5, 10)};
  const ExactResult result = solve_exact(instance);
  EXPECT_NEAR(result.utility, std::sqrt(10.0), 1e-9);
  EXPECT_DOUBLE_EQ(result.assignment.alloc[0], 10.0);
}

TEST(Exact, SeparatesCompetingThreads) {
  // Two identical saturating threads and two servers: optimal puts them on
  // different servers.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10),
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10)};
  const ExactResult result = solve_exact(instance);
  EXPECT_DOUBLE_EQ(result.utility, 20.0);
  EXPECT_NE(result.assignment.server[0], result.assignment.server[1]);
}

TEST(Exact, KnownThreeThreadOptimum) {
  // The Theorem V.17 instance: optimum co-locates the two steep threads.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 1000;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<CappedLinearUtility>(0.002, 500.0, 1000),
      std::make_shared<CappedLinearUtility>(0.001, 1000.0, 1000)};
  const ExactResult result = solve_exact(instance);
  EXPECT_NEAR(result.utility, 3.0, 1e-9);
  EXPECT_EQ(result.assignment.server[0], result.assignment.server[1]);
  EXPECT_NE(result.assignment.server[2], result.assignment.server[0]);
}

TEST(Exact, AssignmentIsValid) {
  support::Rng rng(8);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance instance;
  instance.num_servers = 3;
  instance.capacity = 15;
  instance.threads = util::generate_utilities(6, 15, dist, rng);
  const ExactResult result = solve_exact(instance);
  EXPECT_EQ(check_assignment(instance, result.assignment), "");
}

TEST(Exact, SymmetryBreakingCountsPartitionsNotLabelings) {
  // 3 threads on 2 servers: set partitions into <= 2 blocks = 4 canonical
  // labelings (vs 8 raw): {012}, {01|2}, {02|1}, {0|12}.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 4;
  for (int i = 0; i < 3; ++i) {
    instance.threads.push_back(std::make_shared<PowerUtility>(1.0, 0.5, 4));
  }
  const ExactResult result = solve_exact(instance);
  EXPECT_EQ(result.partitions_explored, 4u);
}

TEST(Exact, MoreServersThanThreadsIsolatesEveryone) {
  Instance instance;
  instance.num_servers = 5;
  instance.capacity = 9;
  instance.threads = {std::make_shared<PowerUtility>(1.0, 0.5, 9),
                      std::make_shared<PowerUtility>(2.0, 0.5, 9)};
  const ExactResult result = solve_exact(instance);
  EXPECT_NEAR(result.utility, 9.0, 1e-9);  // 3 + 6, each alone.
}

TEST(Exact, EmptyInstance) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 5;
  const ExactResult result = solve_exact(instance);
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
}

TEST(Exact, RefusesOversizedInstances) {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 5;
  for (int i = 0; i < 13; ++i) {
    instance.threads.push_back(std::make_shared<PowerUtility>(1.0, 0.5, 5));
  }
  EXPECT_THROW((void)solve_exact(instance), std::invalid_argument);
  EXPECT_NO_THROW((void)solve_exact(instance, 13));
}

}  // namespace
}  // namespace aa::core
