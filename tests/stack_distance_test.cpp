// Tests for the Mattson stack-distance engine (cachesim/stack_distance.hpp).

#include "cachesim/stack_distance.hpp"

#include <gtest/gtest.h>

namespace aa::cachesim {
namespace {

TEST(StackDistance, EmptyTrace) {
  const StackDistanceProfile p = compute_stack_distances({});
  EXPECT_EQ(p.total_accesses, 0u);
  EXPECT_EQ(p.cold_accesses, 0u);
}

TEST(StackDistance, AllColdOnSequentialTrace) {
  const StackDistanceProfile p =
      compute_stack_distances(sequential_trace(50));
  EXPECT_EQ(p.total_accesses, 50u);
  EXPECT_EQ(p.cold_accesses, 50u);
  EXPECT_EQ(p.footprint(), 50u);
}

TEST(StackDistance, ImmediateReuseIsDistanceOne) {
  const Trace trace{1, 1, 1};
  const StackDistanceProfile p = compute_stack_distances(trace);
  EXPECT_EQ(p.cold_accesses, 1u);
  ASSERT_GE(p.histogram.size(), 2u);
  EXPECT_EQ(p.histogram[1], 2u);
}

TEST(StackDistance, HandComputedExample) {
  // Trace a b c a b b: distances for the reuses:
  //   a (after b, c)  -> 3
  //   b (after c, a)  -> 3
  //   b (immediately) -> 1
  const Trace trace{10, 20, 30, 10, 20, 20};
  const StackDistanceProfile p = compute_stack_distances(trace);
  EXPECT_EQ(p.cold_accesses, 3u);
  ASSERT_GE(p.histogram.size(), 4u);
  EXPECT_EQ(p.histogram[1], 1u);
  EXPECT_EQ(p.histogram[3], 2u);
}

TEST(StackDistance, CyclicPatternHasConstantDistance) {
  // Repeating 0 1 2 3 0 1 2 3 ... every reuse has distance 4.
  Trace trace;
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line = 0; line < 4; ++line) trace.push_back(line);
  }
  const StackDistanceProfile p = compute_stack_distances(trace);
  EXPECT_EQ(p.cold_accesses, 4u);
  EXPECT_EQ(p.histogram[4], 36u);
}

TEST(StackDistance, MissCountsFollowFromHistogram) {
  Trace trace;
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line = 0; line < 4; ++line) trace.push_back(line);
  }
  const StackDistanceProfile p = compute_stack_distances(trace);
  // Cache >= 4 lines: only the 4 cold misses. Cache 3 lines: everything
  // misses (LRU thrashing on a cyclic pattern).
  EXPECT_EQ(p.misses_at(4), 4u);
  EXPECT_EQ(p.misses_at(100), 4u);
  EXPECT_EQ(p.misses_at(3), 40u);
  EXPECT_EQ(p.misses_at(0), 40u);
}

TEST(StackDistance, MissCurveIsNonincreasingInCacheSize) {
  support::Rng rng(7);
  const Trace trace =
      generate_trace(TraceConfig::mixed(16, 128, 1024, 20000), rng);
  const StackDistanceProfile p = compute_stack_distances(trace);
  std::uint64_t prev = p.misses_at(0);
  for (std::uint64_t size = 1; size <= 1200; size += 13) {
    const std::uint64_t cur = p.misses_at(size);
    ASSERT_LE(cur, prev) << "size " << size;
    prev = cur;
  }
}

TEST(StackDistance, FenwickMatchesNaiveOracle) {
  support::Rng rng(8);
  const Trace trace =
      generate_trace(TraceConfig::mixed(8, 32, 128, 3000), rng);
  const StackDistanceProfile fast = compute_stack_distances(trace);
  const StackDistanceProfile naive = compute_stack_distances_naive(trace);
  EXPECT_EQ(fast.cold_accesses, naive.cold_accesses);
  EXPECT_EQ(fast.total_accesses, naive.total_accesses);
  ASSERT_EQ(fast.histogram.size(), naive.histogram.size());
  for (std::size_t d = 0; d < fast.histogram.size(); ++d) {
    ASSERT_EQ(fast.histogram[d], naive.histogram[d]) << "distance " << d;
  }
}

TEST(StackDistance, HistogramTotalsAddUp) {
  support::Rng rng(9);
  const Trace trace =
      generate_trace(TraceConfig::cache_friendly(32, 5000), rng);
  const StackDistanceProfile p = compute_stack_distances(trace);
  std::uint64_t reuses = 0;
  for (const std::uint64_t count : p.histogram) reuses += count;
  EXPECT_EQ(reuses + p.cold_accesses, p.total_accesses);
}

}  // namespace
}  // namespace aa::cachesim
