// Tests for the service's mutable instance (svc/instance_state.hpp).

#include "svc/instance_state.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "aa/problem.hpp"
#include "utility/utility_function.hpp"

namespace aa::svc {
namespace {

util::UtilityPtr power(double scale, double beta, util::Resource capacity) {
  return std::make_shared<util::PowerUtility>(scale, beta, capacity);
}

TEST(InstanceState, RejectsDegenerateShapes) {
  EXPECT_THROW(InstanceState(0, 64), std::invalid_argument);
  EXPECT_THROW(InstanceState(2, 0), std::invalid_argument);
}

TEST(InstanceState, IdsAreSequentialAndNeverReused) {
  InstanceState state(2, 64);
  const ThreadId first = state.add_thread(power(1.0, 0.5, 64));
  const ThreadId second = state.add_thread(power(2.0, 0.5, 64));
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 2u);
  EXPECT_TRUE(state.remove_thread(second));
  const ThreadId third = state.add_thread(power(3.0, 0.5, 64));
  EXPECT_EQ(third, 3u);  // Id 2 is not recycled.
  EXPECT_EQ(state.num_threads(), 2u);
}

TEST(InstanceState, VersionCountsSuccessfulDeltasOnly) {
  InstanceState state(2, 64);
  EXPECT_EQ(state.version(), 0u);
  const ThreadId id = state.add_thread(power(1.0, 0.5, 64));
  EXPECT_EQ(state.version(), 1u);
  EXPECT_FALSE(state.remove_thread(999));
  EXPECT_FALSE(state.update_utility(999, power(1.0, 0.5, 64)));
  EXPECT_FALSE(state.scale_utility(999, 2.0));
  EXPECT_EQ(state.version(), 1u);  // Failed deltas do not bump.
  EXPECT_TRUE(state.scale_utility(id, 1.5));
  EXPECT_EQ(state.version(), 2u);
  EXPECT_TRUE(state.update_utility(id, power(4.0, 0.5, 64)));
  EXPECT_EQ(state.version(), 3u);
  EXPECT_TRUE(state.remove_thread(id));
  EXPECT_EQ(state.version(), 4u);
}

TEST(InstanceState, RejectsUtilityWithTooSmallDomain) {
  InstanceState state(2, 64);
  EXPECT_THROW((void)state.add_thread(power(1.0, 0.5, 32)),
               std::invalid_argument);
  const ThreadId id = state.add_thread(power(1.0, 0.5, 64));
  EXPECT_THROW((void)state.update_utility(id, power(1.0, 0.5, 16)),
               std::invalid_argument);
  // A larger domain than the capacity is fine.
  EXPECT_TRUE(state.update_utility(id, power(1.0, 0.5, 128)));
}

TEST(InstanceState, ScaleMultipliesValuesAndCollapsesNesting) {
  InstanceState state(2, 64);
  const ThreadId id = state.add_thread(power(1.0, 0.5, 64));
  const double base_at_32 = (*state.find(id))->value(32.0);
  ASSERT_TRUE(state.scale_utility(id, 1.5));
  ASSERT_TRUE(state.scale_utility(id, 2.0));
  const util::UtilityPtr* scaled = state.find(id);
  ASSERT_NE(scaled, nullptr);
  EXPECT_NEAR((*scaled)->value(32.0), 3.0 * base_at_32, 1e-12);
  // Nested drift collapses into one wrapper around the original function.
  const auto* wrapper =
      dynamic_cast<const util::ScaledUtility*>(scaled->get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_EQ(dynamic_cast<const util::ScaledUtility*>(wrapper->base().get()),
            nullptr);
}

TEST(InstanceState, FindAndThreadsReflectInsertionOrder) {
  InstanceState state(2, 64);
  const ThreadId a = state.add_thread(power(1.0, 0.5, 64));
  const ThreadId b = state.add_thread(power(2.0, 0.5, 64));
  const ThreadId c = state.add_thread(power(3.0, 0.5, 64));
  ASSERT_TRUE(state.remove_thread(b));
  EXPECT_EQ(state.find(b), nullptr);
  ASSERT_EQ(state.threads().size(), 2u);
  EXPECT_EQ(state.threads()[0].first, a);
  EXPECT_EQ(state.threads()[1].first, c);
}

TEST(InstanceState, ToInstanceSnapshotsIdsAndThreads) {
  InstanceState state(3, 100);
  const ThreadId a = state.add_thread(power(1.0, 0.5, 100));
  const ThreadId b = state.add_thread(power(2.0, 0.5, 100));
  std::vector<ThreadId> ids;
  const core::Instance instance = state.to_instance(&ids);
  EXPECT_EQ(instance.num_servers, 3u);
  EXPECT_EQ(instance.capacity, 100);
  ASSERT_EQ(instance.num_threads(), 2u);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], b);
  EXPECT_DOUBLE_EQ(instance.threads[0]->value(25.0),
                   (*state.find(a))->value(25.0));
}

TEST(InstanceState, EmptySnapshotIsValid) {
  InstanceState state(2, 64);
  std::vector<ThreadId> ids;
  const core::Instance instance = state.to_instance(&ids);
  EXPECT_EQ(instance.num_threads(), 0u);
  EXPECT_TRUE(ids.empty());
}

}  // namespace
}  // namespace aa::svc
