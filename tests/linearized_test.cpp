// Tests for the two-segment linearization of Equation 1
// (utility/linearized.hpp): Lemma V.4's g <= f and structural properties.

#include "utility/linearized.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::util {
namespace {

TEST(Linearized, RampThenFlat) {
  const Linearized g{.cap = 10, .peak = 5.0};
  EXPECT_DOUBLE_EQ(g.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.value(5.0), 2.5);
  EXPECT_DOUBLE_EQ(g.value(10.0), 5.0);
  EXPECT_DOUBLE_EQ(g.value(20.0), 5.0);
  EXPECT_DOUBLE_EQ(g.density(), 0.5);
}

TEST(Linearized, ZeroCapIsConstant) {
  const Linearized g{.cap = 0, .peak = 3.0};
  EXPECT_DOUBLE_EQ(g.value(0.0), 3.0);
  EXPECT_DOUBLE_EQ(g.value(100.0), 3.0);
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
}

TEST(Linearized, NegativeInputClampsToZero) {
  const Linearized g{.cap = 4, .peak = 2.0};
  EXPECT_DOUBLE_EQ(g.value(-1.0), 0.0);
}

TEST(LinearizeFn, BuildsPeaksFromUtilities) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.5, 100),
      std::make_shared<CappedLinearUtility>(2.0, 10.0, 100)};
  const std::vector<Resource> c_hats{25, 40};
  const auto gs = linearize(threads, c_hats);
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0].cap, 25);
  EXPECT_DOUBLE_EQ(gs[0].peak, 5.0);
  EXPECT_EQ(gs[1].cap, 40);
  EXPECT_DOUBLE_EQ(gs[1].peak, 20.0);
}

TEST(LinearizeFn, RejectsMismatchedOrNegative) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.5, 100)};
  EXPECT_THROW((void)linearize(threads, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)linearize(threads, {-1}), std::invalid_argument);
}

TEST(LemmaV4, LinearizationLowerBoundsConcaveFunction) {
  // For random generated utilities and random c_hat: g_i(x) <= f_i(x) on the
  // whole domain (Lemma V.4).
  support::Rng rng(77);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  for (int trial = 0; trial < 20; ++trial) {
    const UtilityPtr f = generate_utility(200, dist, rng);
    const Resource c_hat =
        static_cast<Resource>(rng.uniform_below(201));
    const auto gs = linearize({f}, {c_hat});
    for (Resource x = 0; x <= 200; ++x) {
      const double fx = f->value(static_cast<double>(x));
      const double gx = gs[0].value(static_cast<double>(x));
      ASSERT_LE(gx, fx + 1e-9)
          << "g exceeds f at x=" << x << " (c_hat=" << c_hat << ")";
    }
  }
}

TEST(LemmaV4, EqualityAtCHat) {
  support::Rng rng(78);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kNormal;
  const UtilityPtr f = generate_utility(100, dist, rng);
  const auto gs = linearize({f}, {60});
  EXPECT_NEAR(gs[0].value(60.0), f->value(60.0), 1e-12);
}

}  // namespace
}  // namespace aa::util
