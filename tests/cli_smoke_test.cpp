// CLI smoke tests: drive the real aa_gen and aa_solve binaries (paths baked
// in by CMake via AA_GEN_BIN / AA_SOLVE_BIN) through the generate -> solve
// round-trip and schema-validate what comes back — the instance document,
// the assignment document, and the --metrics observability blob.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/json.hpp"

namespace aa {
namespace {

/// Runs a shell command, captures stdout, and reports the exit status.
struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, read);
  }
  result.status = ::pclose(pipe);
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "aa_cli_smoke_" + name;
}

constexpr const char* kGen = AA_GEN_BIN;
constexpr const char* kSolve = AA_SOLVE_BIN;

class CliSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_path_ = temp_path("instance.json");
    const CommandResult gen = run_command(
        std::string(kGen) + " --threads 12 --servers 3 --capacity 60"
                            " --seed 7 --out " + instance_path_ +
        " 2>/dev/null");
    ASSERT_EQ(gen.status, 0);
  }

  std::string instance_path_;
};

TEST_F(CliSmoke, GenEmitsAValidInstanceDocument) {
  const support::JsonValue instance =
      support::json_parse(slurp(instance_path_));
  EXPECT_EQ(instance.at("num_servers").as_int(), 3);
  EXPECT_EQ(instance.at("capacity").as_int(), 60);
  ASSERT_EQ(instance.at("threads").as_array().size(), 12u);
  for (const support::JsonValue& thread : instance.at("threads").as_array()) {
    EXPECT_TRUE(thread.at("type").is_string());
  }
}

TEST_F(CliSmoke, SolveRoundTripsToAValidAssignment) {
  const CommandResult solve =
      run_command(std::string(kSolve) + " " + instance_path_ +
                  " --format json");
  ASSERT_EQ(solve.status, 0);
  const support::JsonValue assignment = support::json_parse(solve.output);
  ASSERT_EQ(assignment.at("server").as_array().size(), 12u);
  ASSERT_EQ(assignment.at("alloc").as_array().size(), 12u);
  EXPECT_EQ(assignment.at("algorithm").as_string(), "alg2");
  EXPECT_GT(assignment.at("utility").as_number(), 0.0);
  EXPECT_GE(assignment.at("super_optimal_utility").as_number(),
            assignment.at("utility").as_number() - 1e-9);
  for (const support::JsonValue& server : assignment.at("server").as_array()) {
    EXPECT_GE(server.as_int(), 0);
    EXPECT_LT(server.as_int(), 3);
  }
}

TEST_F(CliSmoke, MetricsBlobMatchesTheDocumentedSchema) {
  const std::string assignment_path = temp_path("assignment.json");
  const CommandResult solve = run_command(
      std::string(kSolve) + " " + instance_path_ + " --metrics -" +
      " --format json --out " + assignment_path);
  ASSERT_EQ(solve.status, 0);

  // stdout carries exactly one JSON document: the metrics blob.
  const support::JsonValue metrics = support::json_parse(solve.output);
  EXPECT_EQ(metrics.at("solver").as_string(), "algorithm2_refined");
  EXPECT_TRUE(metrics.at("certificate_ok").as_bool());
  EXPECT_GT(metrics.at("f_alg").as_number(), 0.0);
  EXPECT_GE(metrics.at("f_super_optimal").as_number(),
            metrics.at("f_alg").as_number() - 1e-9);
  EXPECT_NEAR(metrics.at("alpha").as_number(), 0.8284271247461901, 1e-12);

  const support::JsonValue& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("alg2/solves").as_int(), 1);
  EXPECT_EQ(counters.at("alg2/threads_assigned").as_int(), 12);
  EXPECT_EQ(counters.at("certificate/checks").as_int(), 2);
  EXPECT_EQ(counters.find("certificate/failures"), nullptr);

  // Phase timings for the documented pipeline phases.
  const support::JsonValue& timers = metrics.at("timers");
  for (const char* phase :
       {"alg2/solve", "super_optimal", "linearize", "alg2/assign",
        "refine/reoptimize"}) {
    ASSERT_NE(timers.find(phase), nullptr) << phase;
    EXPECT_GE(timers.at(phase).at("count").as_int(), 1) << phase;
    EXPECT_GE(timers.at(phase).at("wall_ms_total").as_number(), 0.0) << phase;
  }
  EXPECT_FALSE(metrics.at("trace").as_array().empty());
  ASSERT_EQ(metrics.at("certificates").as_array().size(), 2u);

  // The solution written alongside agrees with the certified utility.
  const support::JsonValue assignment =
      support::json_parse(slurp(assignment_path));
  EXPECT_NEAR(assignment.at("utility").as_number(),
              metrics.at("f_alg").as_number(), 1e-9);
}

TEST_F(CliSmoke, MetricsFileFlagWritesTheBlob) {
  const std::string metrics_path = temp_path("metrics.json");
  const CommandResult solve = run_command(
      std::string(kSolve) + " " + instance_path_ + " --algorithm alg1" +
      " --metrics " + metrics_path + " --out /dev/null");
  ASSERT_EQ(solve.status, 0);
  const support::JsonValue metrics = support::json_parse(slurp(metrics_path));
  EXPECT_EQ(metrics.at("solver").as_string(), "algorithm1_refined");
  EXPECT_TRUE(metrics.at("certificate_ok").as_bool());
  const auto counter = [&](const char* name) -> std::int64_t {
    const support::JsonValue* value = metrics.at("counters").find(name);
    return value == nullptr ? 0 : value->as_int();
  };
  EXPECT_EQ(counter("alg1/solves"), 1);
  EXPECT_EQ(counter("alg1/full_picks") + counter("alg1/unfull_picks"), 12);
}

TEST_F(CliSmoke, UnknownAlgorithmFailsLoudly) {
  const CommandResult solve = run_command(
      std::string(kSolve) + " " + instance_path_ +
      " --algorithm nonsense 2>/dev/null");
  EXPECT_NE(solve.status, 0);
}

}  // namespace
}  // namespace aa
