// Thread-safety negative fixture: calling a function that declares
// AA_REQUIRES(mutex) without holding the mutex must fail to compile under
// Clang -Werror=thread-safety (cmake/ThreadSafetyCheck.cmake, WILL_FAIL).

#include "support/sync.hpp"

namespace {

class Queue {
 public:
  void push() {
    push_locked();  // BAD: caller must hold mutex_.
  }

  void push_locked() AA_REQUIRES(mutex_) { ++depth_; }

 private:
  aa::support::Mutex mutex_;
  int depth_ AA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.push();
  return 0;
}
