// Thread-safety negative fixture: acquiring a mutex already held (a
// self-deadlock) must fail to compile under Clang -Werror=thread-safety
// (cmake/ThreadSafetyCheck.cmake, WILL_FAIL).

#include "support/sync.hpp"

int main() {
  aa::support::Mutex mutex;
  const aa::support::MutexLock first(mutex);
  const aa::support::MutexLock second(mutex);  // BAD: already held.
  return 0;
}
