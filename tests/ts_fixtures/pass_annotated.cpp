// Thread-safety positive control: correctly annotated locking compiles
// warning-free under Clang -Werror=thread-safety. If this fixture fails,
// the harness (cmake/ThreadSafetyCheck.cmake) is broken, not the code
// under test — the fail_* fixtures only prove anything when this passes.

#include "support/sync.hpp"

namespace {

class Counter {
 public:
  void increment() AA_EXCLUDES(mutex_) {
    const aa::support::MutexLock lock(mutex_);
    increment_locked();
  }

  int read() AA_EXCLUDES(mutex_) {
    const aa::support::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void increment_locked() AA_REQUIRES(mutex_) { ++value_; }

  // Lock order: leaf — nothing else is acquired while held.
  aa::support::Mutex mutex_;
  int value_ AA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.read() == 1 ? 0 : 1;
}
