// Thread-safety negative fixture: reading a AA_GUARDED_BY member without
// holding its mutex must fail to compile under Clang -Werror=thread-safety
// (cmake/ThreadSafetyCheck.cmake runs this with WILL_FAIL).

#include "support/sync.hpp"

namespace {

class Counter {
 public:
  int read_without_lock() {
    return value_;  // BAD: mutex_ not held.
  }

 private:
  aa::support::Mutex mutex_;
  int value_ AA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.read_without_lock();
}
