// Tests for phased co-run simulation (cachesim/phased.hpp).

#include "cachesim/phased.hpp"

#include <gtest/gtest.h>

namespace aa::cachesim {
namespace {

Machine test_machine() {
  return Machine{.num_sockets = 2,
                 .geometry = {.total_ways = 8, .lines_per_way = 32}};
}

PhasedThread two_phase_thread(const Machine& machine, std::uint64_t seed,
                              std::size_t phase_length,
                              std::size_t initial_phase) {
  support::Rng rng(seed);
  const std::size_t lines = machine.geometry.lines_per_way;
  PhasedThread thread;
  thread.phase_length = phase_length;
  thread.initial_phase = initial_phase;
  // Phase A: cache friendly; phase B: streaming.
  thread.phases.push_back(profile_trace(
      generate_trace(TraceConfig::cache_friendly(2 * lines, 20000), rng),
      machine.geometry, PerfModel{}));
  thread.phases.push_back(profile_trace(
      generate_trace(TraceConfig::streaming(100 * lines, 20000), rng),
      machine.geometry, PerfModel{}));
  return thread;
}

std::vector<PhasedThread> staggered_threads(const Machine& machine,
                                            std::size_t count) {
  std::vector<PhasedThread> threads;
  for (std::size_t i = 0; i < count; ++i) {
    threads.push_back(
        two_phase_thread(machine, 100 + i, 3, i % 2));
  }
  return threads;
}

TEST(PhasedThread, ScheduleCyclesThroughPhases) {
  const Machine machine = test_machine();
  const PhasedThread thread = two_phase_thread(machine, 1, 4, 0);
  // Epochs 0-3 phase 0, 4-7 phase 1, 8-11 phase 0 again.
  EXPECT_EQ(&thread.profile_at(0), &thread.phases[0]);
  EXPECT_EQ(&thread.profile_at(3), &thread.phases[0]);
  EXPECT_EQ(&thread.profile_at(4), &thread.phases[1]);
  EXPECT_EQ(&thread.profile_at(8), &thread.phases[0]);
}

TEST(PhasedThread, InitialPhaseOffsets) {
  const Machine machine = test_machine();
  const PhasedThread thread = two_phase_thread(machine, 2, 4, 1);
  EXPECT_EQ(&thread.profile_at(0), &thread.phases[1]);
  EXPECT_EQ(&thread.profile_at(4), &thread.phases[0]);
}

TEST(Phased, ResolveTracksOracle) {
  const Machine machine = test_machine();
  const auto threads = staggered_threads(machine, 6);
  const PhasedResult result = simulate_phased(
      machine, threads, core::OnlinePolicy::kResolve, 12);
  EXPECT_NEAR(result.fraction(), 1.0, 1e-9);
  EXPECT_GT(result.oracle_ipc, 0.0);
}

TEST(Phased, PolicyOrderingHolds) {
  const Machine machine = test_machine();
  const auto threads = staggered_threads(machine, 6);
  const PhasedResult st = simulate_phased(
      machine, threads, core::OnlinePolicy::kStatic, 12);
  const PhasedResult sk = simulate_phased(
      machine, threads, core::OnlinePolicy::kSticky, 12);
  const PhasedResult rs = simulate_phased(
      machine, threads, core::OnlinePolicy::kResolve, 12);
  // Identical phase timelines -> identical oracles.
  EXPECT_NEAR(st.oracle_ipc, rs.oracle_ipc, 1e-9);
  // Static never migrates; sticky migrates no more than resolve.
  EXPECT_EQ(st.migrations, 0u);
  EXPECT_LE(sk.migrations, rs.migrations);
  // Throughput: measured on RAW curves, so the model-driven ordering is
  // near-exact but not guaranteed per-instance; allow 2% slack.
  EXPECT_GE(sk.achieved_ipc, st.achieved_ipc * 0.98);
  EXPECT_GE(rs.achieved_ipc, sk.achieved_ipc * 0.98);
}

TEST(Phased, SinglePhaseThreadsMakeStaticOptimal) {
  // Without phase changes the epoch instances are identical, so even the
  // static policy matches the oracle.
  const Machine machine = test_machine();
  std::vector<PhasedThread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    PhasedThread t = two_phase_thread(machine, 200 + i, 4, 0);
    t.phases.resize(1);  // Keep only phase A.
    threads.push_back(std::move(t));
  }
  const PhasedResult st = simulate_phased(
      machine, threads, core::OnlinePolicy::kStatic, 8);
  EXPECT_NEAR(st.fraction(), 1.0, 1e-9);
}

TEST(Phased, RejectsEmptyPhaseList) {
  const Machine machine = test_machine();
  std::vector<PhasedThread> bad(1);
  EXPECT_THROW((void)simulate_phased(machine, bad,
                                     core::OnlinePolicy::kResolve, 4),
               std::invalid_argument);
}

TEST(Phased, ZeroEpochs) {
  const Machine machine = test_machine();
  const auto threads = staggered_threads(machine, 2);
  const PhasedResult result = simulate_phased(
      machine, threads, core::OnlinePolicy::kSticky, 0);
  EXPECT_DOUBLE_EQ(result.achieved_ipc, 0.0);
  EXPECT_DOUBLE_EQ(result.fraction(), 1.0);
}

}  // namespace
}  // namespace aa::cachesim
