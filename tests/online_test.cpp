// Tests for the online/dynamic extension (aa/online.hpp).

#include "aa/online.hpp"

#include <gtest/gtest.h>

#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::core {
namespace {

Instance base_instance(std::size_t n, std::size_t m, Resource capacity,
                       std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(Online, ResolveTracksOracleExactly) {
  const Instance base = base_instance(12, 3, 50, 1);
  OnlineConfig config;
  config.epochs = 10;
  support::Rng rng(5);
  const OnlineResult result =
      run_online(base, OnlinePolicy::kResolve, config, rng);
  EXPECT_NEAR(result.total_utility, result.oracle_utility, 1e-9);
  EXPECT_DOUBLE_EQ(result.utility_fraction(), 1.0);
}

TEST(Online, StaticNeverMigrates) {
  const Instance base = base_instance(12, 3, 50, 2);
  OnlineConfig config;
  config.epochs = 15;
  support::Rng rng(6);
  const OnlineResult result =
      run_online(base, OnlinePolicy::kStatic, config, rng);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_LE(result.total_utility, result.oracle_utility + 1e-9);
}

TEST(Online, PolicyOrderingOnIdenticalDrift) {
  // With the same drift sequence: static <= sticky <= resolve on utility,
  // and sticky migrates no more than resolve.
  const Instance base = base_instance(16, 4, 60, 3);
  OnlineConfig config;
  config.epochs = 25;
  config.drift_sigma = 0.4;

  support::Rng rng_static(42);
  support::Rng rng_sticky(42);
  support::Rng rng_resolve(42);
  const OnlineResult st =
      run_online(base, OnlinePolicy::kStatic, config, rng_static);
  const OnlineResult sk =
      run_online(base, OnlinePolicy::kSticky, config, rng_sticky);
  const OnlineResult rs =
      run_online(base, OnlinePolicy::kResolve, config, rng_resolve);

  // Identical drift -> identical oracle streams.
  ASSERT_NEAR(st.oracle_utility, rs.oracle_utility, 1e-9);
  ASSERT_NEAR(sk.oracle_utility, rs.oracle_utility, 1e-9);

  EXPECT_LE(st.total_utility, sk.total_utility + 1e-9);
  EXPECT_LE(sk.total_utility, rs.total_utility + 1e-9);
  EXPECT_LE(sk.migrations, rs.migrations);
}

TEST(Online, StickyStaysCloseToOracleWithFewerMigrations) {
  const Instance base = base_instance(20, 4, 50, 4);
  OnlineConfig config;
  config.epochs = 30;
  config.drift_sigma = 0.3;
  config.hysteresis = 0.05;
  support::Rng rng(77);
  const OnlineResult sticky =
      run_online(base, OnlinePolicy::kSticky, config, rng);
  // The 5% hysteresis bounds the per-epoch loss, so the aggregate fraction
  // must stay above 1 / 1.05.
  EXPECT_GE(sticky.utility_fraction(), 1.0 / 1.05 - 1e-9);
}

TEST(Online, ZeroEpochsYieldsEmptyResult) {
  const Instance base = base_instance(5, 2, 20, 5);
  OnlineConfig config;
  config.epochs = 0;
  support::Rng rng(1);
  const OnlineResult result =
      run_online(base, OnlinePolicy::kResolve, config, rng);
  EXPECT_DOUBLE_EQ(result.total_utility, 0.0);
  EXPECT_DOUBLE_EQ(result.oracle_utility, 0.0);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_DOUBLE_EQ(result.utility_fraction(), 1.0);
}

TEST(Online, DriftRespectsClamps) {
  // Extreme drift with tight clamps must not blow up utilities: achieved
  // utility per epoch is bounded by factor_max times the base bound.
  const Instance base = base_instance(8, 2, 30, 6);
  OnlineConfig config;
  config.epochs = 10;
  config.drift_sigma = 5.0;
  config.factor_min = 0.5;
  config.factor_max = 2.0;
  support::Rng rng(9);
  const OnlineResult result =
      run_online(base, OnlinePolicy::kResolve, config, rng);
  EXPECT_GT(result.total_utility, 0.0);
  EXPECT_LE(result.total_utility, result.oracle_utility + 1e-9);
}

TEST(Online, DeterministicGivenSeed) {
  const Instance base = base_instance(10, 3, 40, 7);
  OnlineConfig config;
  config.epochs = 12;
  support::Rng rng1(123);
  support::Rng rng2(123);
  const OnlineResult a =
      run_online(base, OnlinePolicy::kSticky, config, rng1);
  const OnlineResult b =
      run_online(base, OnlinePolicy::kSticky, config, rng2);
  EXPECT_DOUBLE_EQ(a.total_utility, b.total_utility);
  EXPECT_EQ(a.migrations, b.migrations);
}

}  // namespace
}  // namespace aa::core
