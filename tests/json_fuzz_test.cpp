// Randomized round-trip fuzzing for the JSON component: random value trees
// must survive dump -> parse -> dump bit-identically (member order is
// preserved and number formatting is deterministic).

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/prng.hpp"

namespace aa::support {
namespace {

JsonValue random_value(Rng& rng, int depth) {
  const std::uint64_t kind = rng.uniform_below(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.uniform01() < 0.5);
    case 2: {
      // Mix integers and doubles, positive and negative.
      if (rng.uniform01() < 0.5) {
        return JsonValue(static_cast<std::int64_t>(rng.uniform_below(2000)) -
                         1000);
      }
      return JsonValue(rng.uniform(-1e6, 1e6));
    }
    case 3: {
      std::string s;
      const std::uint64_t len = rng.uniform_below(12);
      // Printable ASCII plus the characters that need escaping.
      constexpr std::string_view kAlphabet = "abcXYZ019 _-\"\\\n\t{}[],:";
      for (std::uint64_t i = 0; i < len; ++i) {
        s += kAlphabet[rng.uniform_below(kAlphabet.size())];
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonValue::Array array;
      const std::uint64_t len = rng.uniform_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        array.push_back(random_value(rng, depth - 1));
      }
      return JsonValue(std::move(array));
    }
    default: {
      JsonValue object;
      const std::uint64_t len = rng.uniform_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Built with += (not operator+) to sidestep a GCC 12 -Wrestrict
        // false positive on string concatenation at -O3.
        std::string key = "k";
        key += std::to_string(i);
        object.set(std::move(key), random_value(rng, depth - 1));
      }
      if (len == 0) object.set("only", 1);  // Force object type.
      return object;
    }
  }
}

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST_P(JsonFuzz, CompactDumpParsesBackIdentically) {
  Rng rng(5000 + GetParam());
  const JsonValue original = random_value(rng, 4);
  const std::string once = original.dump();
  const std::string twice = json_parse(once).dump();
  EXPECT_EQ(once, twice);
}

TEST_P(JsonFuzz, PrettyDumpParsesToSameCompactForm) {
  Rng rng(6000 + GetParam());
  const JsonValue original = random_value(rng, 4);
  EXPECT_EQ(json_parse(original.dump(2)).dump(), original.dump());
}

}  // namespace
}  // namespace aa::support
