// Tests for the AA problem model (aa/problem.hpp).

#include "aa/problem.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::PowerUtility;

Instance small_instance() {
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {std::make_shared<PowerUtility>(1.0, 0.5, 10),
                      std::make_shared<PowerUtility>(2.0, 0.5, 10),
                      std::make_shared<PowerUtility>(1.0, 1.0, 10)};
  return instance;
}

TEST(InstanceValidate, AcceptsWellFormed) {
  EXPECT_NO_THROW(small_instance().validate());
}

TEST(InstanceValidate, RejectsZeroServers) {
  Instance instance = small_instance();
  instance.num_servers = 0;
  EXPECT_THROW(instance.validate(), std::invalid_argument);
}

TEST(InstanceValidate, RejectsNegativeCapacity) {
  Instance instance = small_instance();
  instance.capacity = -1;
  EXPECT_THROW(instance.validate(), std::invalid_argument);
}

TEST(InstanceValidate, RejectsNullThread) {
  Instance instance = small_instance();
  instance.threads[1] = nullptr;
  EXPECT_THROW(instance.validate(), std::invalid_argument);
}

TEST(InstanceValidate, RejectsUndersizedUtilityDomain) {
  Instance instance = small_instance();
  instance.threads[0] = std::make_shared<PowerUtility>(1.0, 0.5, 5);
  EXPECT_THROW(instance.validate(), std::invalid_argument);
}

TEST(TotalUtility, SumsPerThreadValues) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 1, 0};
  assignment.alloc = {4.0, 9.0, 6.0};
  EXPECT_DOUBLE_EQ(total_utility(instance, assignment), 2.0 + 6.0 + 6.0);
}

TEST(TotalUtility, RejectsSizeMismatch) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 1};
  assignment.alloc = {1.0, 1.0};
  EXPECT_THROW((void)total_utility(instance, assignment),
               std::invalid_argument);
}

TEST(CheckAssignment, AcceptsValid) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 1, 0};
  assignment.alloc = {4.0, 10.0, 6.0};
  EXPECT_TRUE(check_assignment(instance, assignment).empty());
  EXPECT_NO_THROW(require_valid(instance, assignment));
}

TEST(CheckAssignment, DetectsOverload) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 0, 0};
  assignment.alloc = {4.0, 4.0, 4.0};
  const std::string error = check_assignment(instance, assignment);
  EXPECT_NE(error.find("overloaded"), std::string::npos);
  EXPECT_THROW(require_valid(instance, assignment), std::runtime_error);
}

TEST(CheckAssignment, DetectsBadServerIndex) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 2, 0};
  assignment.alloc = {1.0, 1.0, 1.0};
  EXPECT_NE(check_assignment(instance, assignment).find("nonexistent"),
            std::string::npos);
}

TEST(CheckAssignment, DetectsNegativeAllocation) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 1, 0};
  assignment.alloc = {1.0, -2.0, 1.0};
  EXPECT_NE(check_assignment(instance, assignment).find("negative"),
            std::string::npos);
}

TEST(CheckAssignment, DetectsSizeMismatch) {
  const Instance instance = small_instance();
  Assignment assignment;
  EXPECT_FALSE(check_assignment(instance, assignment).empty());
}

TEST(CheckAssignment, ToleratesFractionalRounding) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 0, 0};
  // Three thirds of 10 sum to 10 + epsilon in floating point.
  const double third = 10.0 / 3.0;
  assignment.alloc = {third, third, third + 1e-12};
  EXPECT_TRUE(check_assignment(instance, assignment).empty());
}

TEST(ServerLoads, AggregatesByServer) {
  const Instance instance = small_instance();
  Assignment assignment;
  assignment.server = {0, 1, 1};
  assignment.alloc = {2.0, 3.0, 4.0};
  const std::vector<double> loads = server_loads(instance, assignment);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 7.0);
}

TEST(Instance, EmptyThreadListIsValid) {
  Instance instance;
  instance.num_servers = 1;
  instance.capacity = 5;
  EXPECT_NO_THROW(instance.validate());
  Assignment empty;
  EXPECT_TRUE(check_assignment(instance, empty).empty());
  EXPECT_DOUBLE_EQ(total_utility(instance, empty), 0.0);
}

}  // namespace
}  // namespace aa::core
