// Tests for the single-pool concave allocators (alloc/allocator.hpp):
// greedy == bisection == DP on concave inputs, plus edge cases.

#include "alloc/allocator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <cmath>
#include <numeric>

#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::alloc {
namespace {

using util::CappedLinearUtility;
using util::LogUtility;
using util::PowerUtility;
using util::Resource;
using util::UtilityPtr;

std::vector<UtilityPtr> two_power_threads() {
  return {std::make_shared<PowerUtility>(1.0, 0.5, 100),
          std::make_shared<PowerUtility>(1.0, 0.5, 100)};
}

TEST(Greedy, SplitsEquallyBetweenIdenticalConcaveThreads) {
  const auto threads = two_power_threads();
  const AllocationResult r = allocate_greedy(threads, 10);
  EXPECT_EQ(r.amounts[0] + r.amounts[1], 10);
  EXPECT_LE(std::abs(r.amounts[0] - r.amounts[1]), 1);
  EXPECT_NEAR(r.total_utility, 2.0 * std::sqrt(5.0), 1e-9);
}

TEST(Greedy, PrefersSteeperThread) {
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(10.0, 5.0, 100),
      std::make_shared<CappedLinearUtility>(1.0, 100.0, 100)};
  const AllocationResult r = allocate_greedy(threads, 8);
  EXPECT_EQ(r.amounts[0], 5);  // Steep thread saturates first.
  EXPECT_EQ(r.amounts[1], 3);
  EXPECT_DOUBLE_EQ(r.total_utility, 53.0);
}

TEST(Greedy, RespectsPerThreadCap) {
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(10.0, 100.0, 100)};
  const AllocationResult r = allocate_greedy(threads, 50, 20);
  EXPECT_EQ(r.amounts[0], 20);
}

TEST(Greedy, ZeroPool) {
  const auto threads = two_power_threads();
  const AllocationResult r = allocate_greedy(threads, 0);
  EXPECT_EQ(r.amounts[0], 0);
  EXPECT_EQ(r.amounts[1], 0);
  EXPECT_DOUBLE_EQ(r.total_utility, 0.0);
}

TEST(Greedy, EmptyThreadList) {
  const AllocationResult r = allocate_greedy({}, 100);
  EXPECT_TRUE(r.amounts.empty());
  EXPECT_DOUBLE_EQ(r.total_utility, 0.0);
}

TEST(Greedy, StopsAtZeroMarginals) {
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(1.0, 3.0, 100)};
  const AllocationResult r = allocate_greedy(threads, 100);
  EXPECT_EQ(r.amounts[0], 3);  // Never wastes units on zero marginals.
}

TEST(Greedy, RejectsBadInput) {
  EXPECT_THROW((void)allocate_greedy({}, -1), std::invalid_argument);
  std::vector<UtilityPtr> bad{nullptr};
  EXPECT_THROW((void)allocate_greedy(bad, 5), std::invalid_argument);
}

TEST(Bisection, MatchesGreedyOnAnalyticMix) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(2.0, 0.5, 1000),
      std::make_shared<PowerUtility>(1.0, 0.8, 1000),
      std::make_shared<LogUtility>(5.0, 0.05, 1000),
      std::make_shared<CappedLinearUtility>(0.7, 300.0, 1000)};
  for (const Resource pool : {0, 1, 10, 100, 999, 2500, 4000}) {
    const AllocationResult g = allocate_greedy(threads, pool);
    const AllocationResult b = allocate_bisection(threads, pool);
    ASSERT_NEAR(g.total_utility, b.total_utility, 1e-6 * (1.0 + g.total_utility))
        << "pool = " << pool;
  }
}

TEST(Bisection, MatchesGreedyOnTiePlateaus) {
  // All-equal slopes: a worst case for threshold search (one huge plateau).
  std::vector<UtilityPtr> threads;
  for (int i = 0; i < 5; ++i) {
    threads.push_back(std::make_shared<CappedLinearUtility>(1.0, 50.0, 100));
  }
  for (const Resource pool : {0, 7, 100, 249, 250, 251}) {
    const AllocationResult g = allocate_greedy(threads, pool);
    const AllocationResult b = allocate_bisection(threads, pool);
    ASSERT_NEAR(g.total_utility, b.total_utility, 1e-9) << "pool = " << pool;
    const Resource used = std::accumulate(b.amounts.begin(), b.amounts.end(),
                                          Resource{0});
    ASSERT_LE(used, pool);
  }
}

TEST(Bisection, SaturatedPoolGivesEveryoneTheirCap) {
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 100),
      std::make_shared<CappedLinearUtility>(2.0, 20.0, 100)};
  const AllocationResult r = allocate_bisection(threads, 100000, 100);
  EXPECT_EQ(r.amounts[0], 10);
  EXPECT_EQ(r.amounts[1], 20);
}

TEST(Bisection, RespectsPerThreadCap) {
  std::vector<UtilityPtr> threads{
      std::make_shared<PowerUtility>(1.0, 0.9, 1000),
      std::make_shared<PowerUtility>(1.0, 0.9, 1000)};
  const AllocationResult r = allocate_bisection(threads, 500, 200);
  EXPECT_LE(r.amounts[0], 200);
  EXPECT_LE(r.amounts[1], 200);
}

TEST(DpExact, MatchesHandComputedOptimum) {
  // f1 = min(x,2), f2 = 0.6x capped at domain; pool 3 -> give f1 2, f2 1.
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(1.0, 2.0, 10),
      std::make_shared<CappedLinearUtility>(0.6, 10.0, 10)};
  const AllocationResult r = allocate_dp_exact(threads, 3);
  EXPECT_DOUBLE_EQ(r.total_utility, 2.6);
  EXPECT_EQ(r.amounts[0], 2);
  EXPECT_EQ(r.amounts[1], 1);
}

TEST(DpExact, BudgetFullyUsableButNotForced) {
  std::vector<UtilityPtr> threads{
      std::make_shared<CappedLinearUtility>(1.0, 1.0, 10)};
  const AllocationResult r = allocate_dp_exact(threads, 10);
  EXPECT_DOUBLE_EQ(r.total_utility, 1.0);
}

class AllocatorAgreement : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorAgreement,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST_P(AllocatorAgreement, GreedyBisectionDpAgreeOnRandomConcave) {
  // Property: on random generated concave utilities, all three allocators
  // achieve the same total utility (allocations may differ on plateaus).
  support::Rng rng(1000 + GetParam());
  support::DistributionParams dist;
  dist.kind = static_cast<support::DistributionKind>(GetParam() % 4);
  dist.alpha = 2.5;
  const std::size_t n = 2 + GetParam() % 4;
  std::vector<UtilityPtr> threads;
  for (std::size_t i = 0; i < n; ++i) {
    threads.push_back(util::generate_utility(40, dist, rng));
  }
  const Resource pool = static_cast<Resource>(rng.uniform_below(80));
  const AllocationResult g = allocate_greedy(threads, pool, 40);
  const AllocationResult b = allocate_bisection(threads, pool, 40);
  const AllocationResult d = allocate_dp_exact(threads, pool, 40);
  const double tol = 1e-7 * (1.0 + d.total_utility);
  EXPECT_NEAR(g.total_utility, d.total_utility, tol);
  EXPECT_NEAR(b.total_utility, d.total_utility, tol);
}

TEST(AllocatorInvariants, NeverExceedPoolOrCaps) {
  support::Rng rng(555);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  std::vector<UtilityPtr> threads;
  for (int i = 0; i < 10; ++i) {
    threads.push_back(util::generate_utility(100, dist, rng));
  }
  for (const Resource pool : {0, 50, 500, 1500}) {
    for (const auto* name : {"greedy", "bisection"}) {
      const AllocationResult r =
          std::string(name) == "greedy"
              ? allocate_greedy(threads, pool, 100)
              : allocate_bisection(threads, pool, 100);
      Resource used = 0;
      for (const Resource a : r.amounts) {
        ASSERT_GE(a, 0);
        ASSERT_LE(a, 100);
        used += a;
      }
      ASSERT_LE(used, pool) << name << " pool " << pool;
    }
  }
}

}  // namespace
}  // namespace aa::alloc
