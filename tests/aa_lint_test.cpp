// Tests for tools/aa_lint (docs/STATIC_ANALYSIS.md): the real source tree
// must be clean, and every fixture under tests/lint_fixtures — one minimal
// bad example per invariant — must produce the expected diagnostic and a
// nonzero exit. The last case drives the header self-containment
// mechanism (the generated per-header compile check) against a
// deliberately non-self-contained fixture header with the same compiler
// the suite was built with.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs a shell command, capturing stdout+stderr.
RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t read = 0;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string lint_command(const std::string& root, const std::string& check) {
  std::string command = std::string("'") + AA_LINT_BIN + "' --root '" + root +
                        "'";
  if (!check.empty()) command += " --check " + check;
  return command;
}

RunResult lint_fixture(const std::string& fixture, const std::string& check) {
  const std::string root = std::string(AA_LINT_FIXTURES) + "/" + fixture;
  return run(lint_command(root, check));
}

TEST(AaLint, SourceTreeIsClean) {
  // The gate itself: any violated project invariant in the checked-in tree
  // fails here (and in CI). Run all checks.
  const RunResult result = run(lint_command(AA_LINT_SOURCE_ROOT, ""));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(AaLint, UnknownCounterLiteralIsFlagged) {
  const RunResult result = lint_fixture("unknown_counter", "metric-literals");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("metric-literals"), std::string::npos);
  EXPECT_NE(result.output.find("typo/name"), std::string::npos);
  EXPECT_NE(result.output.find("src/aa/bad.cpp:3"), std::string::npos)
      << result.output;
}

TEST(AaLint, RegistryDocDriftIsFlaggedBothWays) {
  const RunResult result = lint_fixture("registry_drift", "metric-registry");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("\"foo/bar\" (kFooBar) is registered but not "
                               "documented"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"foo/baz\" is documented in "
                               "docs/OBSERVABILITY.md but not registered"),
            std::string::npos)
      << result.output;
}

TEST(AaLint, UndocumentedErrorCodeIsFlagged) {
  const RunResult result =
      lint_fixture("undocumented_error_code", "error-codes");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("\"ghost\" (kGhost) is declared but missing "
                               "from the docs/SERVICE.md code table"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("never exercised"), std::string::npos)
      << result.output;
  // The documented-and-exercised code is not reported.
  EXPECT_EQ(result.output.find("\"timeout\""), std::string::npos)
      << result.output;
}

TEST(AaLint, UndocumentedTenantCodeIsFlagged) {
  const RunResult result =
      lint_fixture("undocumented_tenant_code", "error-codes");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("\"tenant_ghost\" (kTenantGhost) is declared "
                               "but missing from the docs/SERVICE.md code "
                               "table"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("never exercised"), std::string::npos)
      << result.output;
  // The documented-and-exercised tenant code is not reported.
  EXPECT_EQ(result.output.find("\"bad_tenant\""), std::string::npos)
      << result.output;
}

TEST(AaLint, FloatLiteralEqualityIsFlagged) {
  const RunResult result = lint_fixture("float_eq", "determinism");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("floating-point literal compared"),
            std::string::npos)
      << result.output;
}

TEST(AaLint, RandIsFlagged) {
  const RunResult result = lint_fixture("rand_use", "determinism");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("rand()/srand() is banned"), std::string::npos)
      << result.output;
}

TEST(AaLint, UnorderedContainerIsFlagged) {
  const RunResult result = lint_fixture("unordered", "determinism");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("unordered containers are banned"),
            std::string::npos)
      << result.output;
}

TEST(AaLint, NakedNewIsFlagged) {
  const RunResult result = lint_fixture("naked_new", "determinism");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("naked new is banned"), std::string::npos)
      << result.output;
}

TEST(AaLint, WaiverCommentSuppressesDiagnostic) {
  const RunResult result = lint_fixture("waiver", "determinism");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(AaLint, IncludeStyleViolationsAreFlagged) {
  const RunResult result = lint_fixture("include_style", "include-style");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("relative include \"../aa/sibling.hpp\""),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("does not resolve under src/"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("does not start with #pragma once"),
            std::string::npos)
      << result.output;
}

TEST(AaLint, OrphanedDocPageIsFlagged) {
  const RunResult result = lint_fixture("doc_links", "doc-links");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  // Directly linked and transitively linked pages are fine; only the
  // orphan is reported.
  EXPECT_NE(result.output.find("docs/ORPHAN.md:0: [doc-links]"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("not reachable from README.md"),
            std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("LINKED.md:"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("CHAINED.md:"), std::string::npos)
      << result.output;
}

TEST(AaLint, NakedMutexIsFlagged) {
  const RunResult result = lint_fixture("naked_mutex", "concurrency");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("naked std::mutex"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("naked std::condition_variable"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("naked std::lock_guard"), std::string::npos)
      << result.output;
  // The waived declaration on line 15 is not reported.
  EXPECT_EQ(result.output.find("bad.cpp:15"), std::string::npos)
      << result.output;
}

TEST(AaLint, MissingLockOrderCommentIsFlagged) {
  const RunResult result = lint_fixture("lock_order_comment", "concurrency");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("src/svc/bad.hpp:13"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("needs a \"Lock order:\" comment"),
            std::string::npos)
      << result.output;
  // Members documented on the same line or in the block above are fine.
  EXPECT_EQ(result.output.find("bad.hpp:16"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("bad.hpp:18"), std::string::npos)
      << result.output;
}

TEST(AaLint, LockedFunctionWithoutRequiresIsFlagged) {
  const RunResult result = lint_fixture("locked_requires", "concurrency");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("src/svc/bad.hpp:14"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("declared without AA_REQUIRES"),
            std::string::npos)
      << result.output;
  // The annotated declaration and the call site are not reported.
  EXPECT_EQ(result.output.find("bad.hpp:15"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("bad.hpp:19"), std::string::npos)
      << result.output;
}

TEST(AaLint, UnknownCheckIsUsageError) {
  const RunResult result = lint_fixture("float_eq", "bogus-check");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("unknown check"), std::string::npos)
      << result.output;
}

TEST(AaLint, MissingRootIsUsageError) {
  const RunResult result = run(std::string("'") + AA_LINT_BIN + "'");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

/// The header-hygiene compile check: a TU that includes only the header
/// must compile. The build enforces this for every header under src/ via
/// the generated aa_header_selfcheck target; this test proves the
/// mechanism rejects a non-self-contained header and accepts the control.
class HeaderSelfContainment : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("aa_lint_hdr_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  RunResult compile_header_tu(const std::string& header) {
    const fs::path tu = dir_ / "check.cpp";
    std::ofstream out(tu);
    out << "#include \"" << header << "\"\n";
    out.close();
    const std::string include_dir =
        std::string(AA_LINT_FIXTURES) + "/self_contained/src";
    return run(std::string("'") + AA_LINT_CXX + "' -std=c++20 -fsyntax-only "
               "-I '" + include_dir + "' '" + tu.string() + "'");
  }

  fs::path dir_;
};

TEST_F(HeaderSelfContainment, NonSelfContainedHeaderFailsToCompile) {
  const RunResult result = compile_header_tu("aa/needs_context.hpp");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_FALSE(result.output.empty());
}

TEST_F(HeaderSelfContainment, SelfContainedHeaderCompiles) {
  const RunResult result = compile_header_tu("aa/standalone.hpp");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

}  // namespace
