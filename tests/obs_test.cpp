// Tests for the observability layer (src/obs): Metrics merge semantics
// (Chan-style parity with RunningStats across ThreadPool workers), Session
// counter atomicity under concurrency, trace-event nesting, the
// no-session/no-op fast path, session stacking, and JSON export.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/certificate.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace aa::obs {
namespace {

TEST(Metrics, CountersAccumulateAndMerge) {
  Metrics a;
  a.count("x", 3);
  a.count("x");
  a.count("y", 10);
  Metrics b;
  b.count("x", 5);
  b.count("z", -2);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 9);
  EXPECT_EQ(a.counter("y"), 10);
  EXPECT_EQ(a.counter("z"), -2);
  EXPECT_EQ(a.counter("never_touched"), 0);
}

TEST(Metrics, TimerMergeMatchesSequentialRunningStats) {
  // Chan-parity: per-worker Metrics merged pairwise must agree with one
  // RunningStats fed every sample in order — same rule RunningStats itself
  // guarantees, extended over the named-timer map.
  support::ThreadPool pool(4);
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kSamplesPerWorker = 257;
  std::vector<Metrics> shards(kWorkers);
  support::parallel_for(pool, 0, kWorkers, [&](std::size_t w) {
    for (std::size_t s = 0; s < kSamplesPerWorker; ++s) {
      const auto sample =
          static_cast<double>(w * kSamplesPerWorker + s);
      shards[w].time("solve", 1.5 * sample + 0.25, 0.5 * sample);
      shards[w].count("samples");
    }
  });

  Metrics merged;
  for (const Metrics& shard : shards) merged.merge(shard);

  support::RunningStats wall_reference;
  support::RunningStats cpu_reference;
  for (std::size_t i = 0; i < kWorkers * kSamplesPerWorker; ++i) {
    const auto sample = static_cast<double>(i);
    wall_reference.add(1.5 * sample + 0.25);
    cpu_reference.add(0.5 * sample);
  }

  const TimerStat* stat = merged.timer("solve");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->wall_ms.count(), wall_reference.count());
  EXPECT_NEAR(stat->wall_ms.mean(), wall_reference.mean(), 1e-9);
  EXPECT_NEAR(stat->wall_ms.variance(), wall_reference.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(stat->wall_ms.min(), wall_reference.min());
  EXPECT_DOUBLE_EQ(stat->wall_ms.max(), wall_reference.max());
  EXPECT_NEAR(stat->cpu_ms.mean(), cpu_reference.mean(), 1e-9);
  EXPECT_EQ(merged.counter("samples"),
            static_cast<std::int64_t>(kWorkers * kSamplesPerWorker));
}

TEST(Metrics, MergeOrderDoesNotChangeTimerMoments) {
  Metrics forward;
  Metrics backward;
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    forward.time("t", static_cast<double>(i), 0.0);
    backward.time("t", static_cast<double>(kN - 1 - i), 0.0);
  }
  Metrics merged_fb = forward;
  merged_fb.merge(backward);
  Metrics merged_bf = backward;
  merged_bf.merge(forward);
  EXPECT_NEAR(merged_fb.timer("t")->wall_ms.mean(),
              merged_bf.timer("t")->wall_ms.mean(), 1e-12);
  EXPECT_NEAR(merged_fb.timer("t")->wall_ms.variance(),
              merged_bf.timer("t")->wall_ms.variance(), 1e-9);
}

TEST(Session, ConcurrentCountsFromPoolWorkersAreExact) {
  Session session;
  support::ThreadPool pool(4);
  constexpr std::size_t kIncrements = 2000;
  support::parallel_for(pool, 0, kIncrements, [&](std::size_t i) {
    count("shared", 1);
    count(i % 2 == 0 ? "even" : "odd", 1);
  });
  const Metrics metrics = session.metrics();
  EXPECT_EQ(metrics.counter("shared"),
            static_cast<std::int64_t>(kIncrements));
  EXPECT_EQ(metrics.counter("even") + metrics.counter("odd"),
            static_cast<std::int64_t>(kIncrements));
}

TEST(Session, TraceEventsNest) {
  Session session;
  {
    const ScopedPhase outer("outer");
    {
      const ScopedPhase inner("inner");
    }
    {
      const ScopedPhase sibling("sibling");
    }
  }
  const std::vector<TraceEvent> trace = session.trace();
  ASSERT_EQ(trace.size(), 6u);  // enter/exit for outer, inner, sibling.
  EXPECT_EQ(trace[0].name, "outer");
  EXPECT_EQ(trace[0].kind, TraceEvent::Kind::kEnter);
  EXPECT_EQ(trace[0].depth, 0);
  EXPECT_EQ(trace[1].name, "inner");
  EXPECT_EQ(trace[1].depth, 1);
  EXPECT_EQ(trace[2].name, "inner");
  EXPECT_EQ(trace[2].kind, TraceEvent::Kind::kExit);
  EXPECT_EQ(trace[3].name, "sibling");
  EXPECT_EQ(trace[3].depth, 1);
  EXPECT_EQ(trace[5].name, "outer");
  EXPECT_EQ(trace[5].kind, TraceEvent::Kind::kExit);
  EXPECT_EQ(trace[5].depth, 0);

  // Each phase recorded one timer sample; the parent's wall time covers its
  // children (monotonic clock, strictly nested scopes).
  const Metrics metrics = session.metrics();
  ASSERT_NE(metrics.timer("outer"), nullptr);
  ASSERT_NE(metrics.timer("inner"), nullptr);
  EXPECT_EQ(metrics.timer("outer")->wall_ms.count(), 1u);
  EXPECT_GE(metrics.timer("outer")->wall_ms.max(),
            metrics.timer("inner")->wall_ms.max());
}

TEST(Session, NoSessionMeansNoOp) {
  ASSERT_EQ(Session::current(), nullptr);
  // None of these may crash or leak state into a later session.
  count("ghost", 42);
  sample("ghost_hist", 1.0);
  instant("ghost_instant");
  span_ending_now("ghost_span", 0.5);
  {
    const ScopedPhase phase("ghost_phase");
  }
  Session session;
  EXPECT_TRUE(session.metrics().empty());
  EXPECT_TRUE(session.trace().empty());
  EXPECT_TRUE(session.trace_rings().empty());
}

TEST(Session, DisabledPathIsOneRelaxedLoadAndBranch) {
  // The instrumentation contract: with no session installed, every entry
  // point reduces to one atomic load plus a branch. Pin the structural
  // half (the session pointer must be a lock-free atomic — a lock would
  // turn the "off" path into a syscall-capable operation) ...
  static_assert(std::atomic<Session*>::is_always_lock_free,
                "no-session fast path must not take a lock");
  ASSERT_EQ(Session::current(), nullptr);

  // ... and the behavioural half with a deliberately loose wall-time
  // bound: 1M disabled calls must average far under a microsecond each.
  // The ceiling is ~100x the expected cost so CI noise cannot trip it,
  // while an accidental allocation, lock, or string copy on the off path
  // (each tens of ns to us) still would.
  constexpr int kCalls = 1'000'000;
  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) {
    count("off", 1);
    sample("off", 1.0);
    const ScopedPhase phase("off");
  }
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - started)
          .count();
  EXPECT_LT(elapsed_us / kCalls, 2.0)
      << "disabled-path instrumentation cost regressed";
}

TEST(Session, NestedSessionsRestoreThePreviousOne) {
  Session outer;
  EXPECT_EQ(Session::current(), &outer);
  {
    Session inner;
    EXPECT_EQ(Session::current(), &inner);
    count("where", 1);
    EXPECT_EQ(inner.metrics().counter("where"), 1);
  }
  EXPECT_EQ(Session::current(), &outer);
  EXPECT_EQ(outer.metrics().counter("where"), 0);
}

TEST(Session, TraceIsCappedWithDropCounter) {
  Session session;
  for (std::size_t i = 0; i < Session::kMaxTraceEvents + 10; ++i) {
    session.add_trace({TraceEvent::Kind::kEnter, "e", 0, 0.0, 0.0, 0.0});
  }
  EXPECT_EQ(session.trace().size(), Session::kMaxTraceEvents);
  EXPECT_EQ(session.metrics().counter("obs/trace_dropped"), 10);
}

TEST(Session, JsonExportRoundTrips) {
  Session session;
  count("alg2/solves", 2);
  {
    const ScopedPhase phase("solve");
  }
  const std::string dumped = session.to_json().dump(2);
  const support::JsonValue parsed = support::json_parse(dumped);
  EXPECT_EQ(parsed.at("counters").at("alg2/solves").as_int(), 2);
  EXPECT_EQ(parsed.at("timers").at("solve").at("count").as_int(), 1);
  EXPECT_EQ(parsed.at("trace").as_array().size(), 2u);
  // Deterministic export omits wall-clock-dependent sections.
  const support::JsonValue counters_only =
      support::json_parse(session.to_json(/*include_timings=*/false).dump());
  EXPECT_EQ(counters_only.find("timers"), nullptr);
  EXPECT_EQ(counters_only.find("trace"), nullptr);
}

TEST(Certificate, CleanInputPasses) {
  CertificateInput input;
  input.solver = "synthetic";
  input.alpha = 0.8284271247461901;
  input.f_alg = 10.0;
  input.f_linearized = 9.0;
  input.f_super_optimal = 10.5;
  input.capacity = 100.0;
  input.server_loads = {100.0, 80.0};
  input.c_hat_total = 150.0;
  input.pooled_capacity = 200.0;
  input.concavity_checked = true;
  const Certificate cert = check_certificate(input);
  EXPECT_TRUE(cert.ok()) << cert.to_json().dump(2);
  EXPECT_NEAR(cert.achieved_ratio, 10.0 / 10.5, 1e-12);
}

TEST(Certificate, EachBrokenLinkIsFlagged) {
  CertificateInput base;
  base.alpha = 0.8284271247461901;
  base.f_alg = 10.0;
  base.f_linearized = 9.0;
  base.f_super_optimal = 10.5;
  base.capacity = 100.0;
  base.server_loads = {100.0};
  base.c_hat_total = 90.0;
  base.pooled_capacity = 100.0;

  {
    CertificateInput input = base;
    input.f_alg = 0.5 * input.alpha * input.f_super_optimal;
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.alpha_ok);
    EXPECT_FALSE(cert.ok());
  }
  {
    CertificateInput input = base;
    input.server_loads = {101.0};
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.budget_ok);
    EXPECT_NEAR(cert.max_overload, 1.0, 1e-12);
    EXPECT_FALSE(cert.ok());
  }
  {
    CertificateInput input = base;
    input.f_alg = input.f_super_optimal + 1.0;  // "better than the bound"
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.upper_bound_ok);
  }
  {
    CertificateInput input = base;
    input.structural_error = "thread 3 on server 9";
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.structural_ok);
  }
  {
    CertificateInput input = base;
    input.concavity_checked = true;
    input.utilities_concave = false;
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.concavity_ok);
  }
  {
    CertificateInput input = base;
    input.c_hat_total = input.pooled_capacity + 1.0;
    const Certificate cert = check_certificate(input);
    EXPECT_FALSE(cert.pooled_ok);
  }
}

TEST(Certificate, RecordingBumpsSessionCounters) {
  Session session;
  CertificateInput good;
  good.alpha = 0.5;
  good.f_alg = 1.0;
  good.f_linearized = 1.0;
  good.f_super_optimal = 1.0;
  good.capacity = 10.0;
  good.server_loads = {1.0};
  good.pooled_capacity = 10.0;
  record_certificate(good);
  CertificateInput bad = good;
  bad.server_loads = {99.0};
  record_certificate(bad);

  const Metrics metrics = session.metrics();
  EXPECT_EQ(metrics.counter("certificate/checks"), 2);
  EXPECT_EQ(metrics.counter("certificate/failures"), 1);
  ASSERT_EQ(session.certificates().size(), 2u);
  EXPECT_TRUE(session.certificates()[0].ok());
  EXPECT_FALSE(session.certificates()[1].ok());
  // The flattened top level reflects the most recent certificate.
  const support::JsonValue blob =
      support::json_parse(session.to_json().dump());
  EXPECT_FALSE(blob.at("certificate_ok").as_bool());
}

}  // namespace
}  // namespace aa::obs
