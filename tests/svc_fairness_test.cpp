// Tests for the cross-tenant fairness policies (svc/fairness.hpp): pinned
// water-filling levels for weighted_max_min (hand-derivable instances, no
// tolerance games), static-quota scaling, and Karma's credit books —
// borrowing order, exact credit conservation by divide(), and conservation
// across tenant churn (create mints, delete retires, nothing leaks).

#include "svc/fairness.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

namespace aa::svc {
namespace {

std::vector<TenantDemand> tenants(
    std::initializer_list<TenantDemand> list) {
  return std::vector<TenantDemand>(list);
}

double sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

TEST(FairnessNames, RoundTrip) {
  for (const FairnessPolicyKind kind :
       {FairnessPolicyKind::kStaticQuota, FairnessPolicyKind::kWeightedMaxMin,
        FairnessPolicyKind::kKarma}) {
    EXPECT_EQ(fairness_policy_from_name(fairness_policy_name(kind)), kind);
    EXPECT_EQ(FairnessPolicy::create(kind)->kind(), kind);
  }
  EXPECT_FALSE(fairness_policy_from_name("round_robin").has_value());
}

TEST(StaticQuota, ExplicitAutoAndScaling) {
  const auto policy = FairnessPolicy::create(FairnessPolicyKind::kStaticQuota);
  // Explicit quotas pass through; auto (0) takes the weight share.
  const std::vector<double> mixed = policy->divide(
      100.0, tenants({{"a", 1.0, 30.0, 0.0}, {"b", 1.0, 0.0, 0.0}}));
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_DOUBLE_EQ(mixed[0], 30.0);
  EXPECT_DOUBLE_EQ(mixed[1], 50.0);  // Weight share of the pool, not of 70.

  // Oversubscribed quotas scale down proportionally: 90+60 -> 60+40.
  const std::vector<double> scaled = policy->divide(
      100.0, tenants({{"a", 1.0, 90.0, 0.0}, {"b", 1.0, 60.0, 0.0}}));
  EXPECT_DOUBLE_EQ(scaled[0], 60.0);
  EXPECT_DOUBLE_EQ(scaled[1], 40.0);
  EXPECT_DOUBLE_EQ(sum(scaled), 100.0);

  // Weights drive the auto split.
  const std::vector<double> weighted = policy->divide(
      100.0, tenants({{"a", 3.0, 0.0, 0.0}, {"b", 1.0, 0.0, 0.0}}));
  EXPECT_DOUBLE_EQ(weighted[0], 75.0);
  EXPECT_DOUBLE_EQ(weighted[1], 25.0);
}

TEST(WaterFill, PinnedLevels) {
  // Unit weights, demands 10/20/40/80, pool 100: 10 and 20 saturate, the
  // remaining 70 split evenly -> level 35.
  EXPECT_DOUBLE_EQ(
      water_fill_level(100.0, tenants({{"a", 1.0, 0.0, 10.0},
                                       {"b", 1.0, 0.0, 20.0},
                                       {"c", 1.0, 0.0, 40.0},
                                       {"d", 1.0, 0.0, 80.0}})),
      35.0);
  // Weighted: w={1,2,1}, d={50,50,10}, pool 60. "c" saturates (10), then
  // lambda = 50/3: a gets 50/3, b gets 100/3.
  EXPECT_DOUBLE_EQ(
      water_fill_level(60.0, tenants({{"a", 1.0, 0.0, 50.0},
                                      {"b", 2.0, 0.0, 50.0},
                                      {"c", 1.0, 0.0, 10.0}})),
      50.0 / 3.0);
  // Nobody saturates: lambda is pool / total weight.
  EXPECT_DOUBLE_EQ(
      water_fill_level(30.0, tenants({{"a", 1.0, 0.0, 40.0},
                                      {"b", 2.0, 0.0, 40.0}})),
      10.0);
}

TEST(WeightedMaxMin, PinnedDivisions) {
  const auto policy =
      FairnessPolicy::create(FairnessPolicyKind::kWeightedMaxMin);

  // Over-demand: slices are min(demand, weight * lambda).
  const std::vector<double> congested = policy->divide(
      100.0, tenants({{"a", 1.0, 0.0, 10.0},
                      {"b", 1.0, 0.0, 20.0},
                      {"c", 1.0, 0.0, 40.0},
                      {"d", 1.0, 0.0, 80.0}}));
  ASSERT_EQ(congested.size(), 4u);
  EXPECT_DOUBLE_EQ(congested[0], 10.0);
  EXPECT_DOUBLE_EQ(congested[1], 20.0);
  EXPECT_DOUBLE_EQ(congested[2], 35.0);
  EXPECT_DOUBLE_EQ(congested[3], 35.0);
  EXPECT_DOUBLE_EQ(sum(congested), 100.0);

  const std::vector<double> weighted = policy->divide(
      60.0, tenants({{"a", 1.0, 0.0, 50.0},
                     {"b", 2.0, 0.0, 50.0},
                     {"c", 1.0, 0.0, 10.0}}));
  EXPECT_DOUBLE_EQ(weighted[0], 50.0 / 3.0);
  EXPECT_DOUBLE_EQ(weighted[1], 100.0 / 3.0);
  EXPECT_DOUBLE_EQ(weighted[2], 10.0);

  // Under-demand: demands met, leftover spread by weight. d={10,10},
  // w={1,3}, pool 100 -> leftover 80 -> slices {30, 70}.
  const std::vector<double> slack = policy->divide(
      100.0, tenants({{"a", 1.0, 0.0, 10.0}, {"b", 3.0, 0.0, 10.0}}));
  EXPECT_DOUBLE_EQ(slack[0], 30.0);
  EXPECT_DOUBLE_EQ(slack[1], 70.0);
}

TEST(Karma, BorrowingMovesCreditsExactly) {
  const auto policy = FairnessPolicy::create(FairnessPolicyKind::kKarma);
  policy->on_tenant_created("a", 25.0);
  policy->on_tenant_created("b", 25.0);

  // Pool 100, auto quotas 50/50. "a" demands 20 (donates 30), "b" demands
  // 90 (wants 40, can afford 25): b borrows 25, slices {25, 75}.
  const std::vector<double> slices = policy->divide(
      100.0, tenants({{"a", 1.0, 0.0, 20.0}, {"b", 1.0, 0.0, 90.0}}));
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_DOUBLE_EQ(slices[1], 75.0);
  EXPECT_DOUBLE_EQ(slices[0], 25.0);
  // One credit per borrowed unit moved from b to a; total conserved.
  EXPECT_DOUBLE_EQ(policy->credits("b"), 0.0);
  EXPECT_DOUBLE_EQ(policy->credits("a"), 50.0);
  EXPECT_DOUBLE_EQ(sum(slices), 100.0);

  // A broke borrower cannot borrow: demand alone grants nothing.
  const std::vector<double> broke = policy->divide(
      100.0, tenants({{"a", 1.0, 0.0, 20.0}, {"b", 1.0, 0.0, 90.0}}));
  EXPECT_DOUBLE_EQ(broke[1], 50.0);   // b spent its credits above.
  EXPECT_DOUBLE_EQ(broke[0], 50.0);   // Donor keeps its unborrowed share.
}

TEST(Karma, DonorKeepsShareWhenNobodyBorrows) {
  const auto policy = FairnessPolicy::create(FairnessPolicyKind::kKarma);
  policy->on_tenant_created("solo", 10.0);
  // A lone under-demanding tenant still owns its whole quota (no supply
  // was taken), so a single-tenant karma service equals static_quota.
  const std::vector<double> slices =
      policy->divide(100.0, tenants({{"solo", 1.0, 0.0, 5.0}}));
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_DOUBLE_EQ(slices[0], 100.0);
  EXPECT_DOUBLE_EQ(policy->credits("solo"), 10.0);
}

TEST(Karma, RicherBorrowerWinsScarceSupply) {
  const auto policy = FairnessPolicy::create(FairnessPolicyKind::kKarma);
  policy->on_tenant_created("donor", 0.0);
  policy->on_tenant_created("rich", 30.0);
  policy->on_tenant_created("poor", 5.0);

  // Quotas 30/30/30 (pool 90). donor demands 0 -> supply 30. rich and
  // poor both want 40 extra; rich (30 credits) drains the supply first,
  // poor gets nothing.
  const std::vector<double> slices = policy->divide(
      90.0, tenants({{"donor", 1.0, 0.0, 0.0},
                     {"poor", 1.0, 0.0, 70.0},
                     {"rich", 1.0, 0.0, 70.0}}));
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_DOUBLE_EQ(slices[0], 0.0);    // Donor lent everything.
  EXPECT_DOUBLE_EQ(slices[2], 60.0);   // rich: quota 30 + borrowed 30.
  EXPECT_DOUBLE_EQ(slices[1], 30.0);   // poor: quota only.
  EXPECT_DOUBLE_EQ(policy->credits("rich"), 0.0);
  EXPECT_DOUBLE_EQ(policy->credits("donor"), 30.0);
  EXPECT_DOUBLE_EQ(policy->credits("poor"), 5.0);
}

TEST(Karma, CreditsConservedAcrossChurn) {
  const auto policy = FairnessPolicy::create(FairnessPolicyKind::kKarma);
  std::vector<std::string> live;
  double minted = 0.0;
  double retired = 0.0;
  const auto total_live = [&] {
    double total = 0.0;
    for (const std::string& id : live) total += policy->credits(id);
    return total;
  };

  // Churn: create/delete tenants between divisions with shifting demands;
  // after every step the live credit total equals minted - retired.
  for (int round = 0; round < 6; ++round) {
    const std::string name = "t" + std::to_string(round);
    const double opening = 10.0 + round;
    policy->on_tenant_created(name, opening);
    minted += opening;
    live.push_back(name);

    std::vector<TenantDemand> demands;
    for (std::size_t i = 0; i < live.size(); ++i) {
      // Alternate hogs and donors so borrowing actually happens.
      demands.push_back(TenantDemand{
          live[i], 1.0, 0.0, (i % 2 == 0) ? 90.0 : 1.0});
    }
    const std::vector<double> slices = policy->divide(120.0, demands);
    EXPECT_LE(sum(slices), 120.0 + 1e-9);
    EXPECT_NEAR(total_live(), minted - retired, 1e-9) << "round " << round;

    if (round % 2 == 1) {
      const std::string victim = live.front();
      retired += policy->credits(victim);
      policy->on_tenant_deleted(victim);
      live.erase(live.begin());
      EXPECT_NEAR(total_live(), minted - retired, 1e-9);
    }
  }
  // Deleted tenants read as zero, and re-creating one starts fresh.
  policy->on_tenant_created("t0", 3.0);
  EXPECT_DOUBLE_EQ(policy->credits("t0"), 3.0);
}

TEST(AllPolicies, NeverOversubscribeThePool) {
  // Property sweep: random-ish demand/weight/quota grids, every policy,
  // sum(slices) <= pool and slices >= 0.
  const std::vector<TenantDemand> grids[] = {
      tenants({{"a", 1.0, 0.0, 0.0}}),
      tenants({{"a", 1.0, 0.0, 500.0}, {"b", 0.5, 0.0, 500.0}}),
      tenants({{"a", 2.0, 40.0, 10.0},
               {"b", 1.0, 0.0, 200.0},
               {"c", 3.0, 90.0, 90.0}}),
      tenants({{"a", 1.0, 300.0, 300.0}, {"b", 1.0, 300.0, 0.0}}),
  };
  for (const FairnessPolicyKind kind :
       {FairnessPolicyKind::kStaticQuota, FairnessPolicyKind::kWeightedMaxMin,
        FairnessPolicyKind::kKarma}) {
    const auto policy = FairnessPolicy::create(kind);
    for (const std::vector<TenantDemand>& grid : grids) {
      for (const TenantDemand& tenant : grid) {
        policy->on_tenant_created(tenant.id, 50.0);
      }
      const std::vector<double> slices = policy->divide(128.0, grid);
      ASSERT_EQ(slices.size(), grid.size());
      EXPECT_LE(sum(slices), 128.0 + 1e-9)
          << fairness_policy_name(kind);
      for (const double slice : slices) EXPECT_GE(slice, -1e-9);
      for (const TenantDemand& tenant : grid) {
        policy->on_tenant_deleted(tenant.id);
      }
    }
  }
}

}  // namespace
}  // namespace aa::svc
