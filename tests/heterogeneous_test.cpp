// Tests for the heterogeneous-capacity extension (aa/heterogeneous.hpp).

#include "aa/heterogeneous.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

HeteroInstance generated_instance(std::size_t n,
                                  std::vector<Resource> capacities,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kUniform;
  HeteroInstance instance;
  instance.capacities = std::move(capacities);
  instance.threads =
      util::generate_utilities(n, instance.max_capacity(), dist, rng);
  return instance;
}

TEST(HeteroInstance, CapacityHelpers) {
  const HeteroInstance instance = generated_instance(2, {10, 30, 20}, 1);
  EXPECT_EQ(instance.max_capacity(), 30);
  EXPECT_EQ(instance.total_capacity(), 60);
  EXPECT_EQ(instance.num_servers(), 3u);
}

TEST(HeteroInstance, ValidationCatchesProblems) {
  HeteroInstance empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  HeteroInstance negative = generated_instance(1, {10, -5}, 2);
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  HeteroInstance undersized = generated_instance(1, {10, 30}, 3);
  undersized.threads[0] = std::make_shared<PowerUtility>(1.0, 0.5, 10);
  EXPECT_THROW(undersized.validate(), std::invalid_argument);
}

TEST(HeteroCheck, OverloadUsesPerServerCapacity) {
  const HeteroInstance instance = generated_instance(2, {10, 30}, 4);
  Assignment a;
  a.server = {0, 1};
  a.alloc = {20.0, 20.0};  // Server 0 can only hold 10.
  EXPECT_NE(check_assignment(instance, a).find("overloaded"),
            std::string::npos);
  a.alloc = {10.0, 30.0};
  EXPECT_TRUE(check_assignment(instance, a).empty());
}

TEST(HeteroAlgorithm2, ValidAssignmentsOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const HeteroInstance instance =
        generated_instance(13, {40, 25, 10}, 100 + seed);
    const SolveResult result = solve_algorithm2_hetero(instance);
    ASSERT_EQ(check_assignment(instance, result.assignment), "");
    ASSERT_LE(result.utility, result.super_optimal_utility + 1e-9);
    ASSERT_GE(result.utility, result.linearized_utility - 1e-9);
  }
}

TEST(HeteroAlgorithm2, ReducesToHomogeneousAlgorithm) {
  // Equal capacities must reproduce plain Algorithm 2's utility.
  const HeteroInstance hetero = generated_instance(12, {20, 20, 20}, 9);
  const SolveResult hetero_result = solve_algorithm2_hetero(hetero);
  ASSERT_EQ(check_assignment(hetero, hetero_result.assignment), "");
  EXPECT_GT(hetero_result.utility, 0.0);
}

TEST(HeteroAlgorithm2, NearOptimalOnSmallInstances) {
  // No formal guarantee is claimed, but the heuristic should stay well
  // above alpha empirically (documented in DESIGN.md).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const HeteroInstance instance =
        generated_instance(6, {24, 12, 6}, 200 + seed);
    const SolveResult result = solve_algorithm2_hetero(instance);
    const double exact = solve_exact_hetero(instance);
    ASSERT_GT(exact, 0.0);
    ASSERT_GE(result.utility, 0.8 * exact) << "seed " << seed;
    ASSERT_LE(result.utility, exact + 1e-7 * (1.0 + exact));
  }
}

TEST(HeteroAlgorithm2, BigThreadGoesToBigServer) {
  // One saturating thread wanting 30 units and servers {30, 10}: the thread
  // must land on the big server with a full allocation.
  HeteroInstance instance;
  instance.capacities = {30, 10};
  instance.threads = {std::make_shared<CappedLinearUtility>(1.0, 30.0, 30)};
  const SolveResult result = solve_algorithm2_hetero(instance);
  EXPECT_EQ(result.assignment.server[0], 0u);
  EXPECT_DOUBLE_EQ(result.assignment.alloc[0], 30.0);
  EXPECT_DOUBLE_EQ(result.utility, 30.0);
}

TEST(HeteroUU, RoundRobinWithPerServerShares) {
  const HeteroInstance instance = generated_instance(4, {40, 20}, 5);
  const Assignment a = heuristic_uu_hetero(instance);
  ASSERT_EQ(check_assignment(instance, a), "");
  EXPECT_DOUBLE_EQ(a.alloc[0], 20.0);  // Server 0: threads 0, 2.
  EXPECT_DOUBLE_EQ(a.alloc[1], 10.0);  // Server 1: threads 1, 3.
}

TEST(HeteroExact, RefusesOversizedSearch) {
  const HeteroInstance instance = generated_instance(11, {10, 10}, 6);
  EXPECT_THROW((void)solve_exact_hetero(instance), std::invalid_argument);
}

TEST(HeteroExact, EmptyInstanceIsZero) {
  HeteroInstance instance;
  instance.capacities = {10};
  EXPECT_DOUBLE_EQ(solve_exact_hetero(instance), 0.0);
}

}  // namespace
}  // namespace aa::core
