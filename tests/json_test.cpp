// Tests for the from-scratch JSON component (support/json.hpp).

#include "support/json.hpp"

#include <gtest/gtest.h>

namespace aa::support {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(json_parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json_parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntAccessorRequiresIntegral) {
  EXPECT_EQ(json_parse("7").as_int(), 7);
  EXPECT_EQ(json_parse("-9").as_int(), -9);
  EXPECT_THROW((void)json_parse("7.5").as_int(), std::runtime_error);
}

TEST(JsonParse, NestedStructures) {
  const JsonValue v = json_parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.at("e").as_string(), "x");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(json_parse(R"("中")").as_string(), "\xe4\xb8\xad");
}

TEST(JsonParse, WhitespaceTolerance) {
  const JsonValue v = json_parse("  {\n\t\"k\" :\r [ 1 , 2 ]\n} ");
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
}

TEST(JsonParse, ErrorsCarryPosition) {
  try {
    (void)json_parse("{\n  \"a\": nope\n}");
    FAIL() << "must throw";
  } catch (const JsonError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_GT(error.column(), 1u);
  }
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json_parse(""), JsonError);
  EXPECT_THROW((void)json_parse("{"), JsonError);
  EXPECT_THROW((void)json_parse("[1,]"), JsonError);
  EXPECT_THROW((void)json_parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)json_parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)json_parse("01"), JsonError);   // Trailing garbage.
  EXPECT_THROW((void)json_parse("1 2"), JsonError);  // Two documents.
  EXPECT_THROW((void)json_parse("nul"), JsonError);
  EXPECT_THROW((void)json_parse("-"), JsonError);
  EXPECT_THROW((void)json_parse("1."), JsonError);
  EXPECT_THROW((void)json_parse("1e"), JsonError);
  EXPECT_THROW((void)json_parse("\"\\u12g4\""), JsonError);
  EXPECT_THROW((void)json_parse("\"\x01\""), JsonError);
}

TEST(JsonValue, TypeMismatchThrows) {
  const JsonValue v = json_parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::runtime_error);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("x"), std::runtime_error);
}

TEST(JsonValue, FindAndAt) {
  const JsonValue v = json_parse(R"({"a": 1})");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW((void)v.at("b"), std::runtime_error);
}

TEST(JsonValue, SetBuildsAndOverwrites) {
  JsonValue v;
  v.set("x", 1);
  v.set("y", "two");
  v.set("x", 3);
  EXPECT_DOUBLE_EQ(v.at("x").as_number(), 3.0);
  EXPECT_EQ(v.at("y").as_string(), "two");
  EXPECT_EQ(v.as_object().size(), 2u);
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,true,null],"b":{"c":"x,\"y\""},"d":-7})";
  const JsonValue parsed = json_parse(doc);
  const JsonValue reparsed = json_parse(parsed.dump());
  EXPECT_DOUBLE_EQ(reparsed.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_EQ(reparsed.at("b").at("c").as_string(), "x,\"y\"");
  EXPECT_EQ(reparsed.at("d").as_int(), -7);
}

TEST(JsonDump, PrettyPrintIsReparsable) {
  JsonValue v;
  v.set("numbers", JsonValue(JsonValue::Array{1, 2, 3}));
  v.set("nested", [] {
    JsonValue inner;
    inner.set("k", true);
    return inner;
  }());
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const JsonValue reparsed = json_parse(pretty);
  EXPECT_TRUE(reparsed.at("nested").at("k").as_bool());
}

TEST(JsonDump, IntegersStayExact) {
  EXPECT_EQ(JsonValue(std::int64_t{1000000007}).dump(), "1000000007");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
}

TEST(JsonDump, PreservesMemberOrder) {
  JsonValue v;
  v.set("zebra", 1);
  v.set("alpha", 2);
  const std::string out = v.dump();
  EXPECT_LT(out.find("zebra"), out.find("alpha"));
}

TEST(JsonDump, DoubleRoundTripsAtFullPrecision) {
  const double value = 0.1234567890123456789;
  const JsonValue parsed = json_parse(JsonValue(value).dump());
  EXPECT_DOUBLE_EQ(parsed.as_number(), value);
}

}  // namespace
}  // namespace aa::support
