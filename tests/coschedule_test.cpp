// Tests for the pair co-scheduling baseline (aa/coschedule.hpp).

#include "aa/coschedule.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "aa/exact.hpp"
#include "aa/refine.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"
#include "utility/utility_function.hpp"

namespace aa::core {
namespace {

using util::CappedLinearUtility;
using util::PowerUtility;

Instance generated_instance(std::size_t n, std::size_t m, Resource capacity,
                            std::uint64_t seed) {
  support::Rng rng(seed);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  Instance instance;
  instance.num_servers = m;
  instance.capacity = capacity;
  instance.threads = util::generate_utilities(n, capacity, dist, rng);
  return instance;
}

TEST(PairValue, MatchesTwoThreadAllocator) {
  Instance instance;
  instance.num_servers = 1;
  instance.capacity = 10;
  instance.threads = {std::make_shared<CappedLinearUtility>(2.0, 6.0, 10),
                      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10)};
  // Optimal: 6 units to thread 0 (12) + 4 to thread 1 (4) = 16.
  EXPECT_DOUBLE_EQ(pair_value(instance, 0, 1), 16.0);
}

TEST(CoscheduleExact, KnownPairingSeparatesRivals) {
  // Two steep threads must not share a server; pairing {steep, shallow}
  // twice is optimal.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10),  // Steep A.
      std::make_shared<CappedLinearUtility>(1.0, 10.0, 10),  // Steep B.
      std::make_shared<CappedLinearUtility>(0.1, 10.0, 10),  // Shallow C.
      std::make_shared<CappedLinearUtility>(0.1, 10.0, 10)}; // Shallow D.
  const CoScheduleResult result = coschedule_exact_pairs(instance);
  EXPECT_EQ(check_assignment(instance, result.assignment), "");
  EXPECT_NE(result.assignment.server[0], result.assignment.server[1]);
  EXPECT_DOUBLE_EQ(result.utility, 20.0);  // Steep threads eat everything.
}

TEST(CoscheduleExact, MatchesGeneralExactSolverRestrictedToPairs) {
  // When the unrestricted optimum happens to use two threads per server,
  // pair co-scheduling reaches it; in general it can only be <=.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = generated_instance(6, 3, 20, seed);
    const CoScheduleResult pairs = coschedule_exact_pairs(instance);
    const ExactResult unrestricted = solve_exact(instance);
    ASSERT_EQ(check_assignment(instance, pairs.assignment), "");
    ASSERT_LE(pairs.utility,
              unrestricted.utility + 1e-7 * (1.0 + unrestricted.utility));
  }
}

TEST(CoscheduleExact, BeatsOrMatchesGreedyPairing) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = generated_instance(10, 5, 30, 50 + seed);
    const CoScheduleResult exact = coschedule_exact_pairs(instance);
    const CoScheduleResult greedy = coschedule_greedy_pairs(instance);
    ASSERT_EQ(check_assignment(instance, greedy.assignment), "");
    ASSERT_GE(exact.utility, greedy.utility - 1e-9) << "seed " << seed;
  }
}

TEST(CoscheduleExact, EveryServerGetsExactlyTwoThreads) {
  const Instance instance = generated_instance(12, 6, 24, 7);
  const CoScheduleResult result = coschedule_exact_pairs(instance);
  std::vector<int> counts(instance.num_servers, 0);
  for (const std::size_t s : result.assignment.server) ++counts[s];
  for (const int c : counts) EXPECT_EQ(c, 2);
}

TEST(Coschedule, RejectsWrongShape) {
  const Instance instance = generated_instance(5, 3, 10, 9);  // 5 != 6.
  EXPECT_THROW((void)coschedule_exact_pairs(instance),
               std::invalid_argument);
  EXPECT_THROW((void)coschedule_greedy_pairs(instance),
               std::invalid_argument);
}

TEST(Coschedule, RejectsOversizedDp) {
  const Instance instance = generated_instance(26, 13, 10, 10);
  EXPECT_THROW((void)coschedule_exact_pairs(instance),
               std::invalid_argument);
  // Greedy still works at this size.
  EXPECT_NO_THROW((void)coschedule_greedy_pairs(instance));
}

TEST(Coschedule, AaCanBeatOptimalPairingByUnevenGroups) {
  // The paper's joint-optimization argument: with one expensive saturating
  // thread and three cheap ones, AA isolates the expensive thread (groups
  // of size 1 and 3) and beats ANY pairing.
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = 10;
  instance.threads = {
      std::make_shared<CappedLinearUtility>(5.0, 10.0, 10),  // Expensive.
      std::make_shared<CappedLinearUtility>(1.0, 2.0, 10),
      std::make_shared<CappedLinearUtility>(1.0, 2.0, 10),
      std::make_shared<CappedLinearUtility>(1.0, 2.0, 10)};
  const CoScheduleResult best_pairing = coschedule_exact_pairs(instance);
  const SolveResult aa = solve_algorithm2_refined(instance);
  // AA: expensive alone -> 50; three cheap share 10 (caps 2) -> 6. Total 56.
  // Any pairing puts a cheap thread with the expensive one: 5*8 + 2 + 4 = 46
  // at best... exact pairing value:
  EXPECT_GT(aa.utility, best_pairing.utility);
  EXPECT_DOUBLE_EQ(aa.utility, 56.0);
}

TEST(Coschedule, GreedyDeterministic) {
  const Instance instance = generated_instance(8, 4, 16, 11);
  const CoScheduleResult a = coschedule_greedy_pairs(instance);
  const CoScheduleResult b = coschedule_greedy_pairs(instance);
  EXPECT_EQ(a.assignment.server, b.assignment.server);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
}

}  // namespace
}  // namespace aa::core
