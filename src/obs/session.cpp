#include "obs/session.hpp"

#include <atomic>
#include <ctime>
#include <utility>

#include "obs/registry.hpp"

namespace aa::obs {

namespace {

std::atomic<Session*> g_current{nullptr};

/// Per-thread phase nesting depth. Each worker starts at 0; strictly nested
/// ScopedPhase scopes keep it balanced.
thread_local int g_depth = 0;

double wall_ms_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

double thread_cpu_ms() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return 1e3 * static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

Session::Session() : start_(std::chrono::steady_clock::now()) {
  previous_ = g_current.exchange(this, std::memory_order_acq_rel);
}

Session::~Session() {
  g_current.store(previous_, std::memory_order_release);
}

Session* Session::current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

void Session::count(std::string_view name, std::int64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_.count(name, delta);
}

void Session::time(std::string_view name, double wall_ms, double cpu_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_.time(name, wall_ms, cpu_ms);
}

void Session::add_trace(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (trace_.size() >= kMaxTraceEvents) {
    metrics_.count(metric::kObsTraceDropped, 1);
    return;
  }
  trace_.push_back(std::move(event));
}

void Session::add_certificate(Certificate certificate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (certificates_.size() >= kMaxCertificates) {
    metrics_.count(metric::kObsCertificatesDropped, 1);
    // The *last* certificate is what to_json flattens, so keep it fresh:
    // overwrite the final slot instead of dropping the newest.
    certificates_.back() = std::move(certificate);
    return;
  }
  certificates_.push_back(std::move(certificate));
}

double Session::elapsed_ms() const noexcept {
  return wall_ms_between(start_, std::chrono::steady_clock::now());
}

Metrics Session::metrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

std::vector<TraceEvent> Session::trace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::vector<Certificate> Session::certificates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return certificates_;
}

support::JsonValue Session::to_json(bool include_timings) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  support::JsonValue out{support::JsonValue::Object{}};
  if (!certificates_.empty()) {
    const Certificate& last = certificates_.back();
    out.set("solver", last.input.solver);
    out.set("f_alg", last.input.f_alg);
    out.set("f_linearized", last.input.f_linearized);
    out.set("f_super_optimal", last.input.f_super_optimal);
    out.set("alpha", last.input.alpha);
    out.set("achieved_ratio", last.achieved_ratio);
    out.set("certificate_ok", last.ok());
  }
  out.set("counters", metrics_.counters_json());
  if (include_timings) {
    out.set("timers", metrics_.timers_json());
    support::JsonValue::Array trace;
    trace.reserve(trace_.size());
    for (const TraceEvent& event : trace_) {
      support::JsonValue entry{support::JsonValue::Object{}};
      entry.set("kind",
                event.kind == TraceEvent::Kind::kEnter ? "enter" : "exit");
      entry.set("name", event.name);
      entry.set("depth", event.depth);
      entry.set("at_ms", event.at_ms);
      if (event.kind == TraceEvent::Kind::kExit) {
        entry.set("wall_ms", event.wall_ms);
        entry.set("cpu_ms", event.cpu_ms);
      }
      trace.push_back(std::move(entry));
    }
    out.set("trace", support::JsonValue(std::move(trace)));
  }
  if (!certificates_.empty()) {
    support::JsonValue::Array list;
    list.reserve(certificates_.size());
    for (const Certificate& certificate : certificates_) {
      list.push_back(certificate.to_json());
    }
    out.set("certificates", support::JsonValue(std::move(list)));
  }
  return out;
}

ScopedPhase::ScopedPhase([[maybe_unused]] std::string_view name)
#if AA_OBS_ENABLED
    : session_(Session::current())
#endif
{
#if AA_OBS_ENABLED
  if (session_ == nullptr) return;
  name_ = std::string(name);
  depth_ = g_depth++;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ms_ = thread_cpu_ms();
  session_->add_trace({TraceEvent::Kind::kEnter, name_, depth_,
                       session_->elapsed_ms(), 0.0, 0.0});
#endif
}

ScopedPhase::~ScopedPhase() {
#if AA_OBS_ENABLED
  if (session_ == nullptr) return;
  --g_depth;
  const double wall =
      wall_ms_between(wall_start_, std::chrono::steady_clock::now());
  const double cpu = thread_cpu_ms() - cpu_start_ms_;
  session_->time(name_, wall, cpu);
  session_->add_trace({TraceEvent::Kind::kExit, name_, depth_,
                       session_->elapsed_ms(), wall, cpu});
#endif
}

}  // namespace aa::obs
