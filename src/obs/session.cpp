#include "obs/session.hpp"

#include <algorithm>
#include <atomic>
#include <ctime>
#include <utility>

#include "obs/registry.hpp"

namespace aa::obs {

namespace {

std::atomic<Session*> g_current{nullptr};

/// Session ids are process-unique and never reused, so a thread-local ring
/// pointer tagged with the id it was issued under can never dangle into a
/// *different* session that happens to occupy the same address.
std::atomic<std::uint64_t> g_next_session_id{1};

/// Per-thread phase nesting depth. Each worker starts at 0; strictly nested
/// ScopedPhase scopes keep it balanced.
thread_local int g_depth = 0;

/// The calling thread's ring cache: valid only while the installed session's
/// id matches. A stale id (session destroyed, or a nested one installed)
/// simply re-registers on the next event.
struct RingCache {
  std::uint64_t session_id = 0;
  TraceRing* ring = nullptr;
};
thread_local RingCache g_ring_cache;

double wall_ms_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

double thread_cpu_ms() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return 1e3 * static_cast<double>(std::clock()) /
         static_cast<double>(CLOCKS_PER_SEC);
}

Session::Session()
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      start_(std::chrono::steady_clock::now()) {
  previous_ = g_current.exchange(this, std::memory_order_acq_rel);
}

Session::~Session() {
  g_current.store(previous_, std::memory_order_release);
}

Session* Session::current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

void Session::count(std::string_view name, std::int64_t delta) {
  const support::MutexLock lock(mutex_);
  metrics_.count(name, delta);
}

void Session::time(std::string_view name, double wall_ms, double cpu_ms) {
  const support::MutexLock lock(mutex_);
  metrics_.time(name, wall_ms, cpu_ms);
}

void Session::sample(std::string_view name, double value) {
  const support::MutexLock lock(mutex_);
  if (!metrics_.sample(name, value)) {
    metrics_.count(metric::kObsHistogramDropped, 1);
  }
}

TraceRing* Session::thread_ring() {
  if (g_ring_cache.session_id != id_) {
    const support::MutexLock lock(rings_mutex_);
    const int tid = static_cast<int>(rings_.size());
    rings_.push_back(std::make_unique<TraceRing>(tid, kMaxTraceEvents));
    g_ring_cache.ring = rings_.back().get();
    g_ring_cache.session_id = id_;
  }
  return g_ring_cache.ring;
}

void Session::add_trace(TraceEvent event) {
  thread_ring()->push(std::move(event));
}

void Session::add_certificate(Certificate certificate) {
  const support::MutexLock lock(mutex_);
  if (certificates_.size() >= kMaxCertificates) {
    metrics_.count(metric::kObsCertificatesDropped, 1);
    // The *last* certificate is what to_json flattens, so keep it fresh:
    // overwrite the final slot instead of dropping the newest.
    certificates_.back() = std::move(certificate);
    return;
  }
  certificates_.push_back(std::move(certificate));
}

double Session::elapsed_ms() const noexcept {
  return wall_ms_between(start_, std::chrono::steady_clock::now());
}

Metrics Session::metrics() const {
  Metrics snapshot;
  {
    const support::MutexLock lock(mutex_);
    snapshot = metrics_;
  }
  std::int64_t trace_dropped = 0;
  for (const TraceRingInfo& info : trace_rings()) {
    trace_dropped += info.dropped;
  }
  // Only materialize the counter when something actually dropped, so the
  // deterministic counter blob stays byte-stable for clean runs.
  if (trace_dropped > 0) {
    snapshot.count(metric::kObsTraceDropped, trace_dropped);
  }
  return snapshot;
}

std::vector<TraceEvent> Session::trace() const {
  std::vector<const TraceRing*> rings;
  {
    const support::MutexLock lock(rings_mutex_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  std::vector<TraceEvent> merged;
  for (const TraceRing* ring : rings) {
    std::vector<TraceEvent> events = ring->snapshot();
    merged.insert(merged.end(), std::make_move_iterator(events.begin()),
                  std::make_move_iterator(events.end()));
  }
  // Per-ring order is already chronological; a stable sort across rings
  // preserves each thread's enter/exit nesting for equal timestamps.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return merged;
}

std::vector<TraceRingInfo> Session::trace_rings() const {
  std::vector<const TraceRing*> rings;
  {
    const support::MutexLock lock(rings_mutex_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  std::vector<TraceRingInfo> infos;
  infos.reserve(rings.size());
  for (const TraceRing* ring : rings) {
    infos.push_back(TraceRingInfo{ring->tid(), ring->size(), ring->dropped()});
  }
  return infos;
}

std::vector<Certificate> Session::certificates() const {
  const support::MutexLock lock(mutex_);
  return certificates_;
}

namespace {

const char* kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kEnter:
      return "enter";
    case TraceEvent::Kind::kExit:
      return "exit";
    case TraceEvent::Kind::kInstant:
      return "instant";
    case TraceEvent::Kind::kComplete:
      return "complete";
  }
  return "enter";
}

}  // namespace

support::JsonValue Session::to_json(bool include_timings) const {
  const Metrics metrics_snapshot = metrics();
  const std::vector<Certificate> certificates_snapshot = certificates();
  support::JsonValue out{support::JsonValue::Object{}};
  if (!certificates_snapshot.empty()) {
    const Certificate& last = certificates_snapshot.back();
    out.set("solver", last.input.solver);
    out.set("f_alg", last.input.f_alg);
    out.set("f_linearized", last.input.f_linearized);
    out.set("f_super_optimal", last.input.f_super_optimal);
    out.set("alpha", last.input.alpha);
    out.set("achieved_ratio", last.achieved_ratio);
    out.set("certificate_ok", last.ok());
  }
  out.set("counters", metrics_snapshot.counters_json());
  if (include_timings) {
    out.set("timers", metrics_snapshot.timers_json());
    out.set("histograms", metrics_snapshot.histograms_json());
    support::JsonValue::Array trace;
    const std::vector<TraceEvent> events = this->trace();
    trace.reserve(events.size());
    for (const TraceEvent& event : events) {
      support::JsonValue entry{support::JsonValue::Object{}};
      entry.set("kind", kind_name(event.kind));
      entry.set("name", event.name);
      entry.set("tid", event.tid);
      entry.set("depth", event.depth);
      entry.set("at_ms", event.at_ms);
      if (event.kind == TraceEvent::Kind::kExit ||
          event.kind == TraceEvent::Kind::kComplete) {
        entry.set("wall_ms", event.wall_ms);
      }
      if (event.kind == TraceEvent::Kind::kExit) {
        entry.set("cpu_ms", event.cpu_ms);
      }
      trace.push_back(std::move(entry));
    }
    out.set("trace", support::JsonValue(std::move(trace)));
  }
  if (!certificates_snapshot.empty()) {
    support::JsonValue::Array list;
    list.reserve(certificates_snapshot.size());
    for (const Certificate& certificate : certificates_snapshot) {
      list.push_back(certificate.to_json());
    }
    out.set("certificates", support::JsonValue(std::move(list)));
  }
  return out;
}

void instant([[maybe_unused]] std::string_view name) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) {
    session->add_trace({TraceEvent::Kind::kInstant, std::string(name), g_depth,
                        session->elapsed_ms(), 0.0, 0.0, 0});
  }
#endif
}

void span_ending_now([[maybe_unused]] std::string_view name,
                     [[maybe_unused]] double wall_ms) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) {
    const double duration = std::max(wall_ms, 0.0);
    const double start = std::max(session->elapsed_ms() - duration, 0.0);
    session->add_trace({TraceEvent::Kind::kComplete, std::string(name),
                        g_depth, start, duration, 0.0, 0});
  }
#endif
}

ScopedPhase::ScopedPhase([[maybe_unused]] std::string_view name)
#if AA_OBS_ENABLED
    : session_(Session::current())
#endif
{
#if AA_OBS_ENABLED
  if (session_ == nullptr) return;
  name_ = std::string(name);
  depth_ = g_depth++;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_ms_ = thread_cpu_ms();
  session_->add_trace({TraceEvent::Kind::kEnter, name_, depth_,
                       session_->elapsed_ms(), 0.0, 0.0, 0});
#endif
}

ScopedPhase::~ScopedPhase() {
#if AA_OBS_ENABLED
  if (session_ == nullptr) return;
  --g_depth;
  const double wall =
      wall_ms_between(wall_start_, std::chrono::steady_clock::now());
  const double cpu = thread_cpu_ms() - cpu_start_ms_;
  session_->time(name_, wall, cpu);
  session_->add_trace({TraceEvent::Kind::kExit, name_, depth_,
                       session_->elapsed_ms(), wall, cpu, 0});
#endif
}

}  // namespace aa::obs
