#pragma once

// Mergeable metrics value type for the observability layer (aa::obs).
//
// A Metrics object is a plain bag of named integer counters, named timer
// statistics (wall + thread-CPU durations accumulated in RunningStats, so
// merging across ThreadPool workers follows the same Chan parallel-update
// rule as the experiment harness), and named log2-bucketed histograms
// (histogram.hpp) for distribution-shaped samples — latencies, queue
// depths, batch sizes. Metrics itself is NOT thread-safe and carries no
// support/sync.hpp annotations: the intended pattern is one Metrics per
// worker, merged at the join point — exactly like RunningStats, and
// histograms merge bucket-wise with zero loss — or a Session
// (session.hpp), which wraps one Metrics behind an annotated
// support::Mutex for ad-hoc cross-thread recording.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"

namespace aa::obs {

/// Accumulated durations of one named timer. Wall and thread-CPU time are
/// tracked separately (milliseconds) so blocked phases are visible.
struct TimerStat {
  support::RunningStats wall_ms;
  support::RunningStats cpu_ms;

  void add(double wall, double cpu) noexcept {
    wall_ms.add(wall);
    cpu_ms.add(cpu);
  }

  void merge(const TimerStat& other) noexcept {
    wall_ms.merge(other.wall_ms);
    cpu_ms.merge(other.cpu_ms);
  }
};

class Metrics {
 public:
  using CounterMap = std::map<std::string, std::int64_t, std::less<>>;
  using TimerMap = std::map<std::string, TimerStat, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  /// Adds `delta` to the named counter (created at zero on first use).
  void count(std::string_view name, std::int64_t delta = 1);

  /// Records one sample of the named timer.
  void time(std::string_view name, double wall_ms, double cpu_ms);

  /// Records one value into the named histogram (created empty on first
  /// use). Returns false — recording nothing — for values the histogram
  /// rejects (negative / non-finite); the caller counts those drops.
  bool sample(std::string_view name, double value);

  /// Element-wise merge: counters add, timer stats merge Chan-style,
  /// histograms merge bucket-wise (exact).
  void merge(const Metrics& other);

  /// Current counter value; 0 when the counter was never touched.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;

  /// Timer statistics, or nullptr when the timer was never recorded.
  [[nodiscard]] const TimerStat* timer(std::string_view name) const;

  /// Histogram contents, or nullptr when the name was never sampled.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const TimerMap& timers() const noexcept { return timers_; }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && timers_.empty() && histograms_.empty();
  }

  /// {"name": value, ...} in lexicographic name order — deterministic for a
  /// deterministic solve, so golden tests can pin the exact string.
  [[nodiscard]] support::JsonValue counters_json() const;

  /// {"name": {"count": n, "wall_ms_total": ..., ...}, ...}. Timings are
  /// wall-clock dependent; never pin these in golden tests.
  [[nodiscard]] support::JsonValue timers_json() const;

  /// {"name": Histogram::to_json(), ...} in lexicographic name order.
  /// Sample values are typically wall-clock dependent; never pin.
  [[nodiscard]] support::JsonValue histograms_json() const;

  /// {"counters": ..., "timers": ..., "histograms": ...}; timers and
  /// histograms omitted when `include_timings` is false (deterministic
  /// export).
  [[nodiscard]] support::JsonValue to_json(bool include_timings = true) const;

 private:
  CounterMap counters_;
  TimerMap timers_;
  HistogramMap histograms_;
};

}  // namespace aa::obs
