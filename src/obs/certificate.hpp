#pragma once

// Self-checking approximation certificates.
//
// Every run of the paper's approximation pipeline produces three numbers —
// F(ALG) on the original concave utilities, G(ALG) on the linearized
// utilities, and the super-optimal bound F_hat (Definition V.1, computed
// with each thread's allocation capped at C, i.e. "SO_capped") — that are
// related by a chain the solver can verify about itself on every solve:
//
//     F(ALG) >= G(ALG) >= alpha * F_hat >= alpha * F* >= alpha * F(ALG)
//
// (Lemma V.4, Lemma V.15 / Theorem VI.1, Lemma V.2 respectively, with
// alpha = 2(sqrt(2)-1).) check_certificate() evaluates the chain plus the
// per-server budget, the pooled c_hat budget and the concavity
// precondition, and reports every violated link instead of silently
// trusting the theorems. The checker works on plain numbers so it has no
// dependency on the solver library; aa/certify.hpp builds the input from an
// (Instance, SolveResult) pair and is what the solvers call.

#include <string>
#include <vector>

#include "support/json.hpp"

namespace aa::obs {

/// Everything the checker needs, as plain data.
struct CertificateInput {
  std::string solver;            ///< e.g. "algorithm2_refined" (label only).
  double alpha = 0.0;            ///< Guarantee to check (2(sqrt(2)-1)).
  double f_alg = 0.0;            ///< F(ALG): objective on the original f_i.
  double f_linearized = 0.0;     ///< G(ALG): objective on the ramps g_i.
  double f_super_optimal = 0.0;  ///< F_hat with per-thread cap C (SO_capped).
  double capacity = 0.0;         ///< Per-server budget C.
  std::vector<double> server_loads;  ///< Sum of allocations per server.
  double c_hat_total = 0.0;          ///< sum_i c_hat_i.
  double pooled_capacity = 0.0;      ///< m * C (super-optimal pool).
  /// First structural violation from core::check_assignment ("" = valid).
  std::string structural_error;
  /// Result of the concavity/monotonicity sweep over every utility. Leave
  /// `concavity_checked` false when the (O(n C)) sweep was skipped; the
  /// certificate then reports concavity as unverified rather than failed.
  bool concavity_checked = false;
  bool utilities_concave = true;
};

/// Verdict of one certificate check. `ok()` is the conjunction of every
/// verdict that was actually evaluated; `violations` holds one
/// human-readable line per failed link.
struct Certificate {
  CertificateInput input;

  bool structural_ok = false;        ///< check_assignment found no violation.
  bool budget_ok = false;            ///< Every server load <= C (+ tol).
  bool alpha_ok = false;             ///< F(ALG) >= alpha * F_hat.
  bool linearized_alpha_ok = false;  ///< G(ALG) >= alpha * F_hat (Lemma V.15).
  bool linearized_below_ok = false;  ///< F(ALG) >= G(ALG) (Lemma V.4).
  bool upper_bound_ok = false;       ///< F(ALG) <= F_hat (Lemma V.2).
  bool pooled_ok = false;            ///< sum c_hat <= m * C.
  bool concavity_ok = false;         ///< Precondition sweep (when checked).

  /// max(load - C) over servers; <= 0 when the budget holds exactly.
  double max_overload = 0.0;
  /// F(ALG) / F_hat: the certified lower bound on the achieved ratio.
  double achieved_ratio = 0.0;

  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// Flat object: solver, f_alg, f_linearized, f_super_optimal, alpha,
  /// achieved_ratio, certificate_ok plus the violation list.
  [[nodiscard]] support::JsonValue to_json() const;
};

/// Evaluates every certificate link with tolerance
/// `rel_tol * (1 + f_super_optimal)` on the utility comparisons (matching
/// the repo's property tests) and `rel_tol * (1 + capacity)` on budgets.
[[nodiscard]] Certificate check_certificate(CertificateInput input,
                                            double rel_tol = 1e-7);

/// check_certificate(), then — when a Session is installed — stores the
/// certificate on the session and bumps the `certificate/checks` and
/// `certificate/failures` counters. Without a session this is exactly
/// check_certificate().
Certificate record_certificate(CertificateInput input, double rel_tol = 1e-7);

}  // namespace aa::obs
