#pragma once

// Prometheus text-exposition helpers (version 0.0.4 format).
//
// Small append-style emitters the service's `metrics` verb composes into
// one exposition body: each helper writes a `# TYPE` header plus sample
// lines into a growing string. Histograms emit the standard cumulative
// `_bucket{le="..."}` series (occupied boundaries plus the mandatory
// `+Inf`) with `_sum`/`_count`; quantile readouts emit a separate
// `summary`-typed family, which must use a *different* family name than
// the histogram so the exposition stays well-formed.
//
// Metric names here are chosen by the caller; prometheus_name() maps the
// registry's slash-style names ("svc/queue_depth") onto the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset Prometheus requires.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace aa::obs {

/// Sanitizes to the Prometheus metric-name charset: every disallowed
/// character becomes '_', and a leading digit gets a '_' prefix.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Shortest round-trip decimal rendering ("+Inf" for infinity), used for
/// every sample value and `le` boundary in the exposition.
[[nodiscard]] std::string prometheus_value(double value);

/// `# TYPE <name> <type>` header. Call once per metric family, before its
/// samples. `type` is one of counter/gauge/histogram/summary.
void prometheus_header(std::string& out, std::string_view name,
                       std::string_view type);

/// One sample line: `name{labels} value` (labels may be empty; when given,
/// pass them fully rendered, e.g. `path="warm"`).
void prometheus_sample(std::string& out, std::string_view name,
                       std::string_view labels, double value);
void prometheus_sample(std::string& out, std::string_view name,
                       std::string_view labels, std::int64_t value);

/// Full counter family with a single unlabelled sample.
void prometheus_counter(std::string& out, std::string_view name,
                        std::int64_t value);

/// Full gauge family with a single unlabelled sample.
void prometheus_gauge(std::string& out, std::string_view name, double value);

/// Full histogram family: cumulative `_bucket` lines for every occupied
/// boundary plus `+Inf`, then `_sum` and `_count`.
void prometheus_histogram(std::string& out, std::string_view name,
                          const Histogram& histogram);

/// Companion summary family (p50/p90/p99/p99.9 as `quantile` labels plus
/// `_sum`/`_count`). `name` must differ from the histogram family's name.
void prometheus_summary(std::string& out, std::string_view name,
                        const Histogram& histogram);

}  // namespace aa::obs
