#include "obs/chrome_trace.hpp"

#include <set>
#include <utility>
#include <vector>

namespace aa::obs {

namespace {

constexpr int kPid = 1;  ///< Single-process trace; any fixed id works.

support::JsonValue event_json(const TraceEvent& event) {
  support::JsonValue entry{support::JsonValue::Object{}};
  entry.set("name", event.name);
  entry.set("cat", "aa");
  entry.set("pid", kPid);
  entry.set("tid", event.tid);
  entry.set("ts", event.at_ms * 1e3);
  switch (event.kind) {
    case TraceEvent::Kind::kEnter:
      entry.set("ph", "B");
      break;
    case TraceEvent::Kind::kExit: {
      entry.set("ph", "E");
      support::JsonValue args{support::JsonValue::Object{}};
      args.set("wall_ms", event.wall_ms);
      args.set("cpu_ms", event.cpu_ms);
      entry.set("args", std::move(args));
      break;
    }
    case TraceEvent::Kind::kInstant:
      entry.set("ph", "i");
      entry.set("s", "t");  // thread-scoped instant
      break;
    case TraceEvent::Kind::kComplete:
      entry.set("ph", "X");
      entry.set("dur", event.wall_ms * 1e3);
      break;
  }
  return entry;
}

support::JsonValue thread_name_json(int tid) {
  support::JsonValue entry{support::JsonValue::Object{}};
  entry.set("name", "thread_name");
  entry.set("ph", "M");
  entry.set("pid", kPid);
  entry.set("tid", tid);
  support::JsonValue args{support::JsonValue::Object{}};
  args.set("name", "ring-" + std::to_string(tid));
  entry.set("args", std::move(args));
  return entry;
}

}  // namespace

support::JsonValue export_chrome_trace(const Session& session) {
  const std::vector<TraceEvent> events = session.trace();
  support::JsonValue::Array trace_events;
  trace_events.reserve(events.size() + 4);
  std::set<int> tids;
  for (const TraceEvent& event : events) tids.insert(event.tid);
  for (const int tid : tids) trace_events.push_back(thread_name_json(tid));
  for (const TraceEvent& event : events) {
    trace_events.push_back(event_json(event));
  }
  support::JsonValue out{support::JsonValue::Object{}};
  out.set("traceEvents", support::JsonValue(std::move(trace_events)));
  out.set("displayTimeUnit", "ms");
  support::JsonValue other{support::JsonValue::Object{}};
  other.set("source", "aa::obs");
  out.set("otherData", std::move(other));
  return out;
}

std::string chrome_trace_json(const Session& session) {
  return export_chrome_trace(session).dump(2);
}

}  // namespace aa::obs
