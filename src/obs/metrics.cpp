#include "obs/metrics.hpp"

namespace aa::obs {

void Metrics::count(std::string_view name, std::int64_t delta) {
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::time(std::string_view name, double wall_ms, double cpu_ms) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  it->second.add(wall_ms, cpu_ms);
}

bool Metrics::sample(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second.sample(value);
}

void Metrics::merge(const Metrics& other) {
  for (const auto& [name, value] : other.counters_) {
    count(name, value);
  }
  for (const auto& [name, stat] : other.timers_) {
    auto it = timers_.find(name);
    if (it == timers_.end()) {
      timers_.emplace(name, stat);
    } else {
      it->second.merge(stat);
    }
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.merge(histogram);
    }
  }
}

std::int64_t Metrics::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const TimerStat* Metrics::timer(std::string_view name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

const Histogram* Metrics::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

support::JsonValue Metrics::counters_json() const {
  support::JsonValue::Object object;
  object.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    object.emplace_back(name, support::JsonValue(value));
  }
  return support::JsonValue(std::move(object));
}

support::JsonValue Metrics::timers_json() const {
  support::JsonValue::Object object;
  object.reserve(timers_.size());
  for (const auto& [name, stat] : timers_) {
    support::JsonValue entry{support::JsonValue::Object{}};
    entry.set("count", support::JsonValue(stat.wall_ms.count()));
    entry.set("wall_ms_total",
              stat.wall_ms.mean() * static_cast<double>(stat.wall_ms.count()));
    entry.set("wall_ms_mean", stat.wall_ms.mean());
    entry.set("wall_ms_max",
              stat.wall_ms.count() == 0 ? 0.0 : stat.wall_ms.max());
    entry.set("cpu_ms_total",
              stat.cpu_ms.mean() * static_cast<double>(stat.cpu_ms.count()));
    entry.set("cpu_ms_mean", stat.cpu_ms.mean());
    object.emplace_back(name, std::move(entry));
  }
  return support::JsonValue(std::move(object));
}

support::JsonValue Metrics::histograms_json() const {
  support::JsonValue::Object object;
  object.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    object.emplace_back(name, histogram.to_json());
  }
  return support::JsonValue(std::move(object));
}

support::JsonValue Metrics::to_json(bool include_timings) const {
  support::JsonValue out{support::JsonValue::Object{}};
  out.set("counters", counters_json());
  if (include_timings) {
    out.set("timers", timers_json());
    out.set("histograms", histograms_json());
  }
  return out;
}

}  // namespace aa::obs
