#pragma once

// Log2-bucketed histogram for latency-style samples.
//
// A Histogram is a fixed array of power-of-two buckets plus exact
// count/sum/min/max, so it is O(1) per sample, allocation-free after
// construction, and *exactly* mergeable: merging per-worker histograms
// bucket-wise gives the same distribution as one histogram fed every
// sample, the same worker-merge discipline Metrics uses for its
// RunningStats timers (build one per worker, merge() at the join point).
// Quantile readout interpolates inside the winning bucket, so p50/p90/
// p99/p99.9 estimates carry at most one bucket width (a factor of 2) of
// error — tests/obs_histogram_test.cpp pins parity against the exact
// support::quantiles of the raw sample stream within that bound.
//
// Bucket b (0-based) covers values in (upper(b-1), upper(b)] with
// upper(b) = kMinUpper * 2^b; values <= kMinUpper land in bucket 0 and
// values above the top boundary saturate into the last bucket (counted,
// never dropped). Negative and non-finite samples are NOT recorded:
// sample() returns false and the caller counts them (the session bumps
// obs/histogram_dropped) so bad data is visible instead of silently
// poisoning the distribution.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/json.hpp"

namespace aa::obs {

class Histogram {
 public:
  /// Number of buckets: upper bounds kMinUpper * 2^b for b in [0, 64).
  static constexpr std::size_t kNumBuckets = 64;
  /// Upper bound of bucket 0, in the caller's unit (ms for latencies):
  /// 2^-20 ms ~ 1 ns, far below anything a steady_clock can resolve.
  static constexpr double kMinUpper = 9.5367431640625e-7;  // 2^-20

  /// Records one sample. Returns false (and records nothing) for negative
  /// or non-finite values; the caller is responsible for counting drops.
  bool sample(double value) noexcept;

  /// Bucket-wise merge; exact (no approximation in the merge itself).
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Inclusive upper bound of bucket `b` (the Prometheus `le` boundary).
  [[nodiscard]] static double bucket_upper(std::size_t b) noexcept;
  /// Count in bucket `b` (not cumulative).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b];
  }
  /// Index of the bucket `value` falls into (the same mapping sample uses).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;

  /// Quantile estimate, q in [0, 1]: finds the bucket holding the q-th
  /// order statistic and interpolates linearly inside it, clamped to the
  /// observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// One estimate per entry of `qs`, in order (single pass).
  [[nodiscard]] std::vector<double> quantiles(
      std::span<const double> qs) const;

  /// {"count": n, "sum": s, "min": ..., "max": ..., "p50": ..., "p90": ...,
  ///  "p99": ..., "p999": ..., "buckets": [{"le": ..., "count": ...}, ...]}
  /// with only occupied buckets listed. Values are wall-clock dependent —
  /// never pin in golden tests.
  [[nodiscard]] support::JsonValue to_json() const;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace aa::obs
