#pragma once

// Observability session: the thread-safe collector behind aa::obs.
//
// Instrumentation in the solver libraries is written against the free
// functions below (obs::count, obs::sample, obs::instant, ...) and the
// RAII ScopedPhase. All resolve the *installed* session at call time:
//
//   - no session installed  -> every call is a cheap no-op (one relaxed
//     atomic load), so the default build pays nothing for instrumentation;
//   - a Session object alive -> counters, timer stats, histograms, trace
//     events and approximation certificates accumulate on it, so
//     ThreadPool workers may record concurrently.
//
// Compiling with AA_OBS_ENABLED=0 (CMake -DAA_OBS=OFF) removes even the
// atomic load: the inline entry points compile to literal no-ops and
// ScopedPhase becomes an empty object.
//
// Counters, timers and histograms live in one Metrics bag behind a mutex.
// Trace events do NOT go through that mutex: each recording thread gets
// its own fixed-capacity TraceRing (trace_ring.hpp), registered with the
// session on the thread's first event and drained only at snapshot /
// teardown time, so phase tracing never contends with the metrics hot
// path or with other tracing threads. trace() merges the rings by
// timestamp; export_chrome_trace (chrome_trace.hpp) turns the merged
// stream into a Perfetto-loadable Chrome trace_event JSON document.
//
// Sessions nest: constructing a Session installs it and remembers the
// previous one; destruction restores it. Install/uninstall must happen on
// one thread while no instrumented work is in flight (the usual pattern:
// create the Session in main() around the whole run). A Session must
// outlive any ScopedPhase that started under it.
//
// Unbounded collections are capped (kMaxTraceEvents per ring /
// kMaxCertificates): beyond the cap, events and certificates are dropped
// but *counted* — per ring and aggregated under obs/trace_dropped, and
// under obs/certificates_dropped — so truncation is never silent.
// Histogram samples that cannot be recorded (negative / non-finite) are
// counted under obs/histogram_dropped. Counters, timers and histograms
// aggregate and never grow with run length.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/certificate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "support/json.hpp"
#include "support/sync.hpp"

#ifndef AA_OBS_ENABLED
#define AA_OBS_ENABLED 1
#endif

namespace aa::obs {

class Session {
 public:
  /// Per-ring trace capacity (one ring per recording thread).
  static constexpr std::size_t kMaxTraceEvents = 4096;
  static constexpr std::size_t kMaxCertificates = 256;

  /// Installs this session as current (stacking on any previous one).
  Session();
  /// Restores the previously installed session.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The installed session, or nullptr. Lock-free.
  [[nodiscard]] static Session* current() noexcept;

  void count(std::string_view name, std::int64_t delta = 1);
  void time(std::string_view name, double wall_ms, double cpu_ms);
  /// Histogram sample; unrecordable values bump obs/histogram_dropped.
  void sample(std::string_view name, double value);
  /// Appends to the calling thread's trace ring (registering one on first
  /// use); ring-full drops are counted per ring and surface aggregated
  /// under obs/trace_dropped in metrics().
  void add_trace(TraceEvent event);
  void add_certificate(Certificate certificate);

  /// Milliseconds since the session was constructed.
  [[nodiscard]] double elapsed_ms() const noexcept;

  /// Counter/timer/histogram snapshot. Trace-ring drops (if any) are
  /// folded into the obs/trace_dropped counter of the returned copy.
  [[nodiscard]] Metrics metrics() const;
  /// All rings merged, ordered by at_ms (stable within a ring).
  [[nodiscard]] std::vector<TraceEvent> trace() const;
  /// Per-ring occupancy and drop counts, in registration (tid) order.
  [[nodiscard]] std::vector<TraceRingInfo> trace_rings() const;
  [[nodiscard]] std::vector<Certificate> certificates() const;

  /// Full export: counters, (optionally) timers + histograms + trace, the
  /// certificate list, and — when at least one certificate was recorded —
  /// the last certificate's fields flattened at top level (f_alg,
  /// f_super_optimal, f_linearized, alpha, achieved_ratio,
  /// certificate_ok), which is the blob `aa_solve --metrics` and the
  /// benches emit.
  [[nodiscard]] support::JsonValue to_json(bool include_timings = true) const;

 private:
  /// The calling thread's ring under this session, registering one (and
  /// assigning the next tid ordinal) on first use.
  [[nodiscard]] TraceRing* thread_ring();

  // Lock order: leaf. Never held together with rings_mutex_ (the trace
  // path and the metrics path are independent); nothing is acquired
  // under it.
  mutable support::Mutex mutex_;
  Metrics metrics_ AA_GUARDED_BY(mutex_);
  std::vector<Certificate> certificates_ AA_GUARDED_BY(mutex_);

  // Lock order: leaf. Guards ring registration/enumeration only — each
  // TraceRing then has its own leaf mutex for its contents.
  mutable support::Mutex rings_mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_ AA_GUARDED_BY(rings_mutex_);

  Session* previous_ = nullptr;
  std::uint64_t id_ = 0;  ///< Process-unique, for thread-local ring lookup.
  std::chrono::steady_clock::time_point start_;
};

/// Thread-CPU time of the calling thread, in milliseconds (falls back to
/// process CPU time on platforms without CLOCK_THREAD_CPUTIME_ID).
[[nodiscard]] double thread_cpu_ms() noexcept;

/// Adds to a named counter on the installed session; no-op without one.
inline void count([[maybe_unused]] std::string_view name,
                  [[maybe_unused]] std::int64_t delta = 1) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) session->count(name, delta);
#endif
}

/// Records one sample of a named timer without a surrounding ScopedPhase —
/// for durations measured elsewhere. No-op without a session.
inline void time_sample([[maybe_unused]] std::string_view name,
                        [[maybe_unused]] double wall_ms,
                        [[maybe_unused]] double cpu_ms = 0.0) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) session->time(name, wall_ms, cpu_ms);
#endif
}

/// Records one value into a named log2-bucketed histogram (gauges sampled
/// over time, latencies, sizes). No-op without a session.
inline void sample([[maybe_unused]] std::string_view name,
                   [[maybe_unused]] double value) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) session->sample(name, value);
#endif
}

/// Marks a point event (e.g. a warm-start path decision) on the calling
/// thread's trace ring. No-op without a session.
void instant(std::string_view name);

/// Records a span that ends now and started `wall_ms` ago on the calling
/// thread's trace ring (e.g. a queue wait measured across threads).
/// No-op without a session.
void span_ending_now(std::string_view name, double wall_ms);

/// RAII phase marker: records an enter/exit trace-event pair and one sample
/// of the timer named after the phase. Copying is disabled; phases must be
/// strictly nested per thread (scopes guarantee this).
class ScopedPhase {
 public:
  explicit ScopedPhase([[maybe_unused]] std::string_view name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#if AA_OBS_ENABLED
  Session* session_;  ///< Captured at entry; nullptr = disabled.
  std::string name_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ms_ = 0.0;
#endif
};

}  // namespace aa::obs
