#pragma once

// Observability session: the thread-safe collector behind aa::obs.
//
// Instrumentation in the solver libraries is written against the free
// functions below (obs::count) and the RAII ScopedPhase. Both resolve the
// *installed* session at call time:
//
//   - no session installed  -> every call is a cheap no-op (one relaxed
//     atomic load), so the default build pays nothing for instrumentation;
//   - a Session object alive -> counters, timer stats, trace events and
//     approximation certificates accumulate on it, behind a mutex, so
//     ThreadPool workers may record concurrently.
//
// Compiling with AA_OBS_ENABLED=0 (CMake -DAA_OBS=OFF) removes even the
// atomic load: the inline entry points compile to literal no-ops and
// ScopedPhase becomes an empty object.
//
// Sessions nest: constructing a Session installs it and remembers the
// previous one; destruction restores it. Install/uninstall must happen on
// one thread while no instrumented work is in flight (the usual pattern:
// create the Session in main() around the whole run). A Session must
// outlive any ScopedPhase that started under it.
//
// Unbounded collections are capped (kMaxTraceEvents / kMaxCertificates):
// beyond the cap, events and certificates are dropped but *counted* under
// obs/trace_dropped and obs/certificates_dropped, so truncation is never
// silent. Counters and timers aggregate and never grow with run length.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/certificate.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"

#ifndef AA_OBS_ENABLED
#define AA_OBS_ENABLED 1
#endif

namespace aa::obs {

/// One phase-boundary record. Enter events carry only the timestamp; exit
/// events additionally carry the phase's wall/CPU durations.
struct TraceEvent {
  enum class Kind : std::uint8_t { kEnter, kExit };
  Kind kind = Kind::kEnter;
  std::string name;
  int depth = 0;       ///< Nesting depth on the recording thread (0 = top).
  double at_ms = 0.0;  ///< Wall offset from session start.
  double wall_ms = 0.0;  ///< Exit only: phase wall duration.
  double cpu_ms = 0.0;   ///< Exit only: phase thread-CPU duration.
};

class Session {
 public:
  static constexpr std::size_t kMaxTraceEvents = 4096;
  static constexpr std::size_t kMaxCertificates = 256;

  /// Installs this session as current (stacking on any previous one).
  Session();
  /// Restores the previously installed session.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The installed session, or nullptr. Lock-free.
  [[nodiscard]] static Session* current() noexcept;

  void count(std::string_view name, std::int64_t delta = 1);
  void time(std::string_view name, double wall_ms, double cpu_ms);
  void add_trace(TraceEvent event);
  void add_certificate(Certificate certificate);

  /// Milliseconds since the session was constructed.
  [[nodiscard]] double elapsed_ms() const noexcept;

  /// Snapshots (copies, taken under the lock).
  [[nodiscard]] Metrics metrics() const;
  [[nodiscard]] std::vector<TraceEvent> trace() const;
  [[nodiscard]] std::vector<Certificate> certificates() const;

  /// Full export: counters, (optionally) timers + trace, the certificate
  /// list, and — when at least one certificate was recorded — the last
  /// certificate's fields flattened at top level (f_alg, f_super_optimal,
  /// f_linearized, alpha, achieved_ratio, certificate_ok), which is the
  /// blob `aa_solve --metrics` and the benches emit.
  [[nodiscard]] support::JsonValue to_json(bool include_timings = true) const;

 private:
  mutable std::mutex mutex_;
  Metrics metrics_;
  std::vector<TraceEvent> trace_;
  std::vector<Certificate> certificates_;
  Session* previous_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-CPU time of the calling thread, in milliseconds (falls back to
/// process CPU time on platforms without CLOCK_THREAD_CPUTIME_ID).
[[nodiscard]] double thread_cpu_ms() noexcept;

/// Adds to a named counter on the installed session; no-op without one.
inline void count([[maybe_unused]] std::string_view name,
                  [[maybe_unused]] std::int64_t delta = 1) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) session->count(name, delta);
#endif
}

/// Records one sample of a named timer without a surrounding ScopedPhase —
/// for durations measured elsewhere (e.g. the allocation service's queue
/// waits and batch sizes) or gauges sampled over time. No-op without a
/// session.
inline void time_sample([[maybe_unused]] std::string_view name,
                        [[maybe_unused]] double wall_ms,
                        [[maybe_unused]] double cpu_ms = 0.0) {
#if AA_OBS_ENABLED
  if (Session* session = Session::current()) session->time(name, wall_ms, cpu_ms);
#endif
}

/// RAII phase marker: records an enter/exit trace-event pair and one sample
/// of the timer named after the phase. Copying is disabled; phases must be
/// strictly nested per thread (scopes guarantee this).
class ScopedPhase {
 public:
  explicit ScopedPhase([[maybe_unused]] std::string_view name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#if AA_OBS_ENABLED
  Session* session_;  ///< Captured at entry; nullptr = disabled.
  std::string name_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ms_ = 0.0;
#endif
};

}  // namespace aa::obs
