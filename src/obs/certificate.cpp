#include "obs/certificate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::obs {

namespace {

std::string describe(const char* what, double lhs, const char* relation,
                     double rhs) {
  std::ostringstream out;
  out.precision(17);
  out << what << ": " << lhs << " " << relation << " " << rhs;
  return out.str();
}

}  // namespace

Certificate check_certificate(CertificateInput input, double rel_tol) {
  Certificate cert;
  const double f_tol = rel_tol * (1.0 + std::abs(input.f_super_optimal));
  const double c_tol = rel_tol * (1.0 + std::abs(input.capacity));

  cert.structural_ok = input.structural_error.empty();
  if (!cert.structural_ok) {
    cert.violations.push_back("structural: " + input.structural_error);
  }

  cert.max_overload = 0.0;
  for (const double load : input.server_loads) {
    cert.max_overload = std::max(cert.max_overload, load - input.capacity);
  }
  cert.budget_ok = cert.max_overload <= c_tol;
  if (!cert.budget_ok) {
    cert.violations.push_back(describe("budget: max server overload",
                                       cert.max_overload, ">", c_tol));
  }

  const double floor = input.alpha * input.f_super_optimal - f_tol;
  cert.alpha_ok = input.f_alg >= floor;
  if (!cert.alpha_ok) {
    cert.violations.push_back(
        describe("alpha: f_alg", input.f_alg, "< alpha * f_super_optimal =",
                 input.alpha * input.f_super_optimal));
  }
  cert.linearized_alpha_ok = input.f_linearized >= floor;
  if (!cert.linearized_alpha_ok) {
    cert.violations.push_back(describe(
        "alpha (Lemma V.15): f_linearized", input.f_linearized,
        "< alpha * f_super_optimal =", input.alpha * input.f_super_optimal));
  }
  cert.linearized_below_ok = input.f_alg >= input.f_linearized - f_tol;
  if (!cert.linearized_below_ok) {
    cert.violations.push_back(describe("Lemma V.4: f_alg", input.f_alg,
                                       "< f_linearized =",
                                       input.f_linearized));
  }
  cert.upper_bound_ok = input.f_alg <= input.f_super_optimal + f_tol;
  if (!cert.upper_bound_ok) {
    cert.violations.push_back(describe("Lemma V.2: f_alg", input.f_alg,
                                       "> f_super_optimal =",
                                       input.f_super_optimal));
  }

  const double pool_tol = rel_tol * (1.0 + std::abs(input.pooled_capacity));
  cert.pooled_ok = input.c_hat_total <= input.pooled_capacity + pool_tol;
  if (!cert.pooled_ok) {
    cert.violations.push_back(describe("pooled budget: sum c_hat",
                                       input.c_hat_total, "> m * C =",
                                       input.pooled_capacity));
  }

  cert.concavity_ok = !input.concavity_checked || input.utilities_concave;
  if (!cert.concavity_ok) {
    cert.violations.emplace_back(
        "concavity: some utility is not nonnegative, nondecreasing and "
        "concave on the integer grid");
  }

  cert.achieved_ratio = input.f_super_optimal > 0.0
                            ? input.f_alg / input.f_super_optimal
                            : 1.0;
  cert.input = std::move(input);
  return cert;
}

Certificate record_certificate(CertificateInput input, double rel_tol) {
  Certificate cert = check_certificate(std::move(input), rel_tol);
  if (Session* session = Session::current()) {
    session->count(metric::kCertificateChecks, 1);
    if (!cert.ok()) session->count(metric::kCertificateFailures, 1);
    session->add_certificate(cert);
  }
  return cert;
}

support::JsonValue Certificate::to_json() const {
  support::JsonValue out{support::JsonValue::Object{}};
  out.set("solver", input.solver);
  out.set("f_alg", input.f_alg);
  out.set("f_linearized", input.f_linearized);
  out.set("f_super_optimal", input.f_super_optimal);
  out.set("alpha", input.alpha);
  out.set("achieved_ratio", achieved_ratio);
  out.set("certificate_ok", ok());
  out.set("concavity_checked", input.concavity_checked);
  if (!violations.empty()) {
    support::JsonValue::Array list;
    list.reserve(violations.size());
    for (const std::string& v : violations) {
      list.emplace_back(v);
    }
    out.set("violations", support::JsonValue(std::move(list)));
  }
  return out;
}

}  // namespace aa::obs
