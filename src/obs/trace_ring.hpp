#pragma once

// Per-thread trace storage for the observability session.
//
// PR 1's session kept one global 4096-entry trace vector behind the same
// mutex as the counters, so every ScopedPhase enter/exit from a service
// worker contended with the metrics hot path. A TraceRing is the
// replacement: each recording thread registers its own fixed-capacity
// buffer with the session on first use (see Session::add_trace), writes
// to it under a *per-ring* mutex — uncontended in steady state, since
// exactly one thread produces into a ring — and the session drains and
// merges all rings only at snapshot/teardown time.
//
// Capacity semantics match the old cap: once full, further events are
// dropped (never overwritten — the front of the trace is what explains
// the run) and counted per ring, so truncation stays visible. The
// aggregate surfaces as obs/trace_dropped; per-ring counts ride along in
// snapshots for the `metrics` exposition.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/sync.hpp"

namespace aa::obs {

/// One phase-boundary record. Enter events carry only the timestamp; exit
/// events additionally carry the phase's wall/CPU durations; instant
/// events mark a point decision; complete events carry an externally
/// measured span (start = at_ms, duration = wall_ms).
struct TraceEvent {
  enum class Kind : std::uint8_t { kEnter, kExit, kInstant, kComplete };
  Kind kind = Kind::kEnter;
  std::string name;
  int depth = 0;       ///< Nesting depth on the recording thread (0 = top).
  double at_ms = 0.0;  ///< Wall offset from session start (span start).
  double wall_ms = 0.0;  ///< Exit/complete: span wall duration.
  double cpu_ms = 0.0;   ///< Exit only: span thread-CPU duration.
  int tid = 0;  ///< Recording ring ordinal (filled in by the session).
};

class TraceRing {
 public:
  explicit TraceRing(int tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity) {
    events_.reserve(capacity);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends one event (stamping it with this ring's tid), or counts a
  /// drop once the ring is full. Cheap: the mutex is only ever contended
  /// against a snapshot in flight.
  void push(TraceEvent event) {
    const support::MutexLock lock(mutex_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    event.tid = tid_;
    events_.push_back(std::move(event));
  }

  /// Copies the recorded events (in recording order).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const support::MutexLock lock(mutex_);
    return events_;
  }

  [[nodiscard]] int tid() const noexcept { return tid_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    const support::MutexLock lock(mutex_);
    return events_.size();
  }

  /// Events rejected because the ring was full.
  [[nodiscard]] std::int64_t dropped() const {
    const support::MutexLock lock(mutex_);
    return dropped_;
  }

 private:
  // Lock order: leaf — only ever contended against a snapshot in flight;
  // nothing else is acquired while held.
  mutable support::Mutex mutex_;
  const int tid_;
  const std::size_t capacity_;
  std::vector<TraceEvent> events_ AA_GUARDED_BY(mutex_);
  std::int64_t dropped_ AA_GUARDED_BY(mutex_) = 0;
};

/// Summary of one ring for drop reporting (the `metrics` verb exposes
/// these as aa_obs_trace_ring_dropped_total{ring="N"}).
struct TraceRingInfo {
  int tid = 0;
  std::size_t recorded = 0;
  std::int64_t dropped = 0;
};

}  // namespace aa::obs
