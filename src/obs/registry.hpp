#pragma once

// Metric-name registry: the single source of truth for every counter,
// phase-timer, and sample name the observability layer records.
//
// Instrumentation sites must use these constants — `tools/aa_lint` (see
// docs/STATIC_ANALYSIS.md) rejects string literals passed to obs::count /
// obs::time_sample / obs::ScopedPhase anywhere under src/ or tools/, and
// cross-checks this table against the metric tables in
// docs/OBSERVABILITY.md in both directions: a name registered here but not
// documented fails, and a documented name that no longer exists here (or
// is never referenced from code) fails. To add a metric: declare the
// constant in the right section below, add it to the matching kAll*
// array, document it in docs/OBSERVABILITY.md, and use it.
//
// The `aa-lint-section:` comments are structural markers the linter keys
// on; keep each constant inside the section that matches how it is
// recorded (count → counters, ScopedPhase / time_sample → timers,
// sample → samples, instant / span_ending_now → events).

#include <string_view>

namespace aa::obs::metric {

// aa-lint-section: counters
// Deterministic for a deterministic solve — golden-testable.

inline constexpr std::string_view kAlg1CandidateEvaluations =
    "alg1/candidate_evaluations";
inline constexpr std::string_view kAlg1FullPicks = "alg1/full_picks";
inline constexpr std::string_view kAlg1Solves = "alg1/solves";
inline constexpr std::string_view kAlg1UnfullPicks = "alg1/unfull_picks";
inline constexpr std::string_view kAlg2Solves = "alg2/solves";
inline constexpr std::string_view kAlg2ThreadsAssigned =
    "alg2/threads_assigned";
inline constexpr std::string_view kCertificateChecks = "certificate/checks";
inline constexpr std::string_view kCertificateFailures =
    "certificate/failures";
inline constexpr std::string_view kExactPartitionsExplored =
    "exact/partitions_explored";
inline constexpr std::string_view kExactSolves = "exact/solves";
inline constexpr std::string_view kExperimentDegenerateTrials =
    "experiment/degenerate_trials";
inline constexpr std::string_view kExperimentTrials = "experiment/trials";
inline constexpr std::string_view kHeuristicsRrSolves = "heuristics/rr_solves";
inline constexpr std::string_view kHeuristicsRuSolves = "heuristics/ru_solves";
inline constexpr std::string_view kHeuristicsUrSolves = "heuristics/ur_solves";
inline constexpr std::string_view kHeuristicsUuSolves = "heuristics/uu_solves";
inline constexpr std::string_view kObsCertificatesDropped =
    "obs/certificates_dropped";
inline constexpr std::string_view kObsHistogramDropped =
    "obs/histogram_dropped";
inline constexpr std::string_view kObsTraceDropped = "obs/trace_dropped";
inline constexpr std::string_view kRefineServersReoptimized =
    "refine/servers_reoptimized";
inline constexpr std::string_view kRefineSolves = "refine/solves";
inline constexpr std::string_view kSuperOptimalBisectIterations =
    "super_optimal/bisect_iterations";
inline constexpr std::string_view kSuperOptimalCalls = "super_optimal/calls";
inline constexpr std::string_view kSuperOptimalParallelCalls =
    "super_optimal/parallel_calls";
inline constexpr std::string_view kSuperOptimalPriceCalls =
    "super_optimal/price_calls";
inline constexpr std::string_view kSuperOptimalThreads =
    "super_optimal/threads";
inline constexpr std::string_view kSvcBatches = "svc/batches";
inline constexpr std::string_view kSvcErrors = "svc/errors";
inline constexpr std::string_view kSvcInternalErrors = "svc/internal_errors";
inline constexpr std::string_view kSvcMigrations = "svc/migrations";
inline constexpr std::string_view kSvcReplyFailures = "svc/reply_failures";
inline constexpr std::string_view kSvcRequests = "svc/requests";
inline constexpr std::string_view kSvcShutdowns = "svc/shutdowns";
inline constexpr std::string_view kSvcSolveCached = "svc/solve_cached";
inline constexpr std::string_view kSvcSolveFull = "svc/solve_full";
inline constexpr std::string_view kSvcSolveWarm = "svc/solve_warm";
inline constexpr std::string_view kSvcTenantCreates = "svc/tenant_creates";
inline constexpr std::string_view kSvcTenantDeletes = "svc/tenant_deletes";
inline constexpr std::string_view kSvcTenantRedivides =
    "svc/tenant_redivides";
inline constexpr std::string_view kSvcTenantUpdates = "svc/tenant_updates";
inline constexpr std::string_view kSvcTimeouts = "svc/timeouts";
inline constexpr std::string_view kSvcWarmCertificateRejects =
    "svc/warm_certificate_rejects";

inline constexpr std::string_view kAllCounters[] = {
    kAlg1CandidateEvaluations,
    kAlg1FullPicks,
    kAlg1Solves,
    kAlg1UnfullPicks,
    kAlg2Solves,
    kAlg2ThreadsAssigned,
    kCertificateChecks,
    kCertificateFailures,
    kExactPartitionsExplored,
    kExactSolves,
    kExperimentDegenerateTrials,
    kExperimentTrials,
    kHeuristicsRrSolves,
    kHeuristicsRuSolves,
    kHeuristicsUrSolves,
    kHeuristicsUuSolves,
    kObsCertificatesDropped,
    kObsHistogramDropped,
    kObsTraceDropped,
    kRefineServersReoptimized,
    kRefineSolves,
    kSuperOptimalBisectIterations,
    kSuperOptimalCalls,
    kSuperOptimalParallelCalls,
    kSuperOptimalPriceCalls,
    kSuperOptimalThreads,
    kSvcBatches,
    kSvcErrors,
    kSvcInternalErrors,
    kSvcMigrations,
    kSvcReplyFailures,
    kSvcRequests,
    kSvcShutdowns,
    kSvcSolveCached,
    kSvcSolveFull,
    kSvcSolveWarm,
    kSvcTenantCreates,
    kSvcTenantDeletes,
    kSvcTenantRedivides,
    kSvcTenantUpdates,
    kSvcTimeouts,
    kSvcWarmCertificateRejects,
};

// aa-lint-section: timers
// Phase names recorded by obs::ScopedPhase (wall + thread-CPU ms).

inline constexpr std::string_view kPhaseAlg1Assign = "alg1/assign";
inline constexpr std::string_view kPhaseAlg1Solve = "alg1/solve";
inline constexpr std::string_view kPhaseAlg1SolveRefined =
    "alg1/solve_refined";
inline constexpr std::string_view kPhaseAlg2Assign = "alg2/assign";
inline constexpr std::string_view kPhaseAlg2Solve = "alg2/solve";
inline constexpr std::string_view kPhaseAlg2SolveRefined =
    "alg2/solve_refined";
inline constexpr std::string_view kPhaseExactSolve = "exact/solve";
inline constexpr std::string_view kPhaseExperimentRunPoint =
    "experiment/run_point";
inline constexpr std::string_view kPhaseLinearize = "linearize";
inline constexpr std::string_view kPhaseRefineReoptimize = "refine/reoptimize";
inline constexpr std::string_view kPhaseSuperOptimal = "super_optimal";
inline constexpr std::string_view kPhaseSuperOptimalParallel =
    "super_optimal/parallel";
inline constexpr std::string_view kPhaseSuperOptimalPrice =
    "super_optimal/price";
inline constexpr std::string_view kPhaseSvcBatch = "svc/batch";
inline constexpr std::string_view kPhaseSvcSolve = "svc/solve";

inline constexpr std::string_view kAllTimers[] = {
    kPhaseAlg1Assign,
    kPhaseAlg1Solve,
    kPhaseAlg1SolveRefined,
    kPhaseAlg2Assign,
    kPhaseAlg2Solve,
    kPhaseAlg2SolveRefined,
    kPhaseExactSolve,
    kPhaseExperimentRunPoint,
    kPhaseLinearize,
    kPhaseRefineReoptimize,
    kPhaseSuperOptimal,
    kPhaseSuperOptimalParallel,
    kPhaseSuperOptimalPrice,
    kPhaseSvcBatch,
    kPhaseSvcSolve,
};

// aa-lint-section: samples
// Histogram-sampled gauges and durations fed through obs::sample
// (log2-bucketed, quantile readout — see obs/histogram.hpp).

inline constexpr std::string_view kSampleSvcBatchSize = "svc/batch_size";
inline constexpr std::string_view kSampleSvcQueueDepth = "svc/queue_depth";
inline constexpr std::string_view kSampleSvcRequest = "svc/request";

inline constexpr std::string_view kAllSamples[] = {
    kSampleSvcBatchSize,
    kSampleSvcQueueDepth,
    kSampleSvcRequest,
};

// aa-lint-section: events
// Point marks and externally measured spans recorded straight onto the
// calling thread's trace ring via obs::instant / obs::span_ending_now.

inline constexpr std::string_view kEventSvcPathCached = "svc/path_cached";
inline constexpr std::string_view kEventSvcPathFull = "svc/path_full";
inline constexpr std::string_view kEventSvcPathWarm = "svc/path_warm";
inline constexpr std::string_view kEventSvcQueueWait = "svc/queue_wait";

inline constexpr std::string_view kAllEvents[] = {
    kEventSvcPathCached,
    kEventSvcPathFull,
    kEventSvcPathWarm,
    kEventSvcQueueWait,
};

// aa-lint-section: end

}  // namespace aa::obs::metric
