#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace aa::obs {

namespace {

/// Lower bound of bucket `b`: 0 for the first bucket, else upper(b - 1).
double bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0.0 : Histogram::bucket_upper(b - 1);
}

}  // namespace

double Histogram::bucket_upper(std::size_t b) noexcept {
  return kMinUpper * std::ldexp(1.0, static_cast<int>(b));
}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (value <= kMinUpper) return 0;
  // Saturate before dividing: value / kMinUpper overflows to infinity for
  // values near DBL_MAX (kMinUpper < 1), and frexp(inf) leaves the
  // exponent unspecified.
  if (value > bucket_upper(kNumBuckets - 1)) return kNumBuckets - 1;
  // frexp(v / kMinUpper) = m * 2^e with m in [0.5, 1): v <= kMinUpper*2^e,
  // and e-1 fails unless v is an exact power-of-two boundary (m == 0.5),
  // which belongs in the lower bucket (upper bounds are inclusive).
  int exponent = 0;
  const double mantissa = std::frexp(value / kMinUpper, &exponent);
  std::size_t index = static_cast<std::size_t>(exponent);
  if (mantissa == 0.5) --index;
  return std::min(index, kNumBuckets - 1);
}

bool Histogram::sample(double value) noexcept {
  if (!std::isfinite(value) || value < 0.0) return false;
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  return true;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (type-7 style position, truncated to
  // a whole sample so the bucket walk is exact).
  const double position = q * static_cast<double>(count_ - 1);
  const auto rank = static_cast<std::uint64_t>(position);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = cumulative + buckets_[b];
    if (rank < next) {
      // Interpolate linearly across the bucket by rank position.
      const double within =
          (static_cast<double>(rank - cumulative) + 0.5) /
          static_cast<double>(buckets_[b]);
      const double lower = bucket_lower(b);
      const double upper = bucket_upper(b);
      const double estimate = lower + within * (upper - lower);
      return std::clamp(estimate, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::vector<double> Histogram::quantiles(std::span<const double> qs) const {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile(q));
  return out;
}

support::JsonValue Histogram::to_json() const {
  support::JsonValue node{support::JsonValue::Object{}};
  node.set("count", count_);
  node.set("sum", sum_);
  node.set("min", min());
  node.set("max", max());
  node.set("p50", quantile(0.50));
  node.set("p90", quantile(0.90));
  node.set("p99", quantile(0.99));
  node.set("p999", quantile(0.999));
  support::JsonValue::Array buckets;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    support::JsonValue entry{support::JsonValue::Object{}};
    entry.set("le", bucket_upper(b));
    entry.set("count", buckets_[b]);
    buckets.push_back(std::move(entry));
  }
  node.set("buckets", support::JsonValue(std::move(buckets)));
  return node;
}

}  // namespace aa::obs
