#pragma once

// Chrome trace_event / Perfetto exporter for a Session's merged trace.
//
// Produces the classic JSON object format — {"traceEvents": [...]} with
// B/E duration pairs, "i" instants and "X" complete spans, timestamps in
// microseconds — which chrome://tracing and https://ui.perfetto.dev load
// directly. Ring ordinals become Perfetto track (tid) numbers, with
// thread_name metadata records so tracks read "ring-0", "ring-1", ... in
// the UI. `aa_serve --trace-out <file>` writes this document at shutdown.

#include <string>

#include "obs/session.hpp"
#include "support/json.hpp"

namespace aa::obs {

/// Trace-event JSON document for everything `session` has recorded so far.
/// Phases still open at snapshot time appear as unmatched "B" events,
/// which the viewers tolerate (rendered to the end of the trace).
[[nodiscard]] support::JsonValue export_chrome_trace(const Session& session);

/// export_chrome_trace rendered to a string (the --trace-out file body).
[[nodiscard]] std::string chrome_trace_json(const Session& session);

}  // namespace aa::obs
