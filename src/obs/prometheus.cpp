#include "obs/prometheus.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <utility>

namespace aa::obs {

namespace {

bool allowed_in_name(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (const char c : name) {
    out.push_back(allowed_in_name(c) ? c : '_');
  }
  return out;
}

std::string prometheus_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  std::array<char, 64> buffer{};
  const auto [end, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer.data(), end);
}

void prometheus_header(std::string& out, std::string_view name,
                       std::string_view type) {
  out.append("# TYPE ");
  out.append(name);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

void prometheus_sample(std::string& out, std::string_view name,
                       std::string_view labels, double value) {
  out.append(name);
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
  out.push_back(' ');
  out.append(prometheus_value(value));
  out.push_back('\n');
}

void prometheus_sample(std::string& out, std::string_view name,
                       std::string_view labels, std::int64_t value) {
  out.append(name);
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
  out.push_back(' ');
  out.append(std::to_string(value));
  out.push_back('\n');
}

void prometheus_counter(std::string& out, std::string_view name,
                        std::int64_t value) {
  prometheus_header(out, name, "counter");
  prometheus_sample(out, name, {}, value);
}

void prometheus_gauge(std::string& out, std::string_view name, double value) {
  prometheus_header(out, name, "gauge");
  prometheus_sample(out, name, {}, value);
}

void prometheus_histogram(std::string& out, std::string_view name,
                          const Histogram& histogram) {
  prometheus_header(out, name, "histogram");
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (histogram.bucket_count(b) == 0) continue;
    cumulative += histogram.bucket_count(b);
    const std::string labels =
        "le=\"" + prometheus_value(Histogram::bucket_upper(b)) + "\"";
    prometheus_sample(out, bucket_name, labels,
                      static_cast<std::int64_t>(cumulative));
  }
  prometheus_sample(out, bucket_name, "le=\"+Inf\"",
                    static_cast<std::int64_t>(histogram.count()));
  prometheus_sample(out, std::string(name) + "_sum", {}, histogram.sum());
  prometheus_sample(out, std::string(name) + "_count", {},
                    static_cast<std::int64_t>(histogram.count()));
}

void prometheus_summary(std::string& out, std::string_view name,
                        const Histogram& histogram) {
  prometheus_header(out, name, "summary");
  constexpr std::array<std::pair<const char*, double>, 4> kQuantiles{{
      {"0.5", 0.50},
      {"0.9", 0.90},
      {"0.99", 0.99},
      {"0.999", 0.999},
  }};
  for (const auto& [label, q] : kQuantiles) {
    const std::string labels = std::string("quantile=\"") + label + "\"";
    prometheus_sample(out, name, labels, histogram.quantile(q));
  }
  prometheus_sample(out, std::string(name) + "_sum", {}, histogram.sum());
  prometheus_sample(out, std::string(name) + "_count", {},
                    static_cast<std::int64_t>(histogram.count()));
}

}  // namespace aa::obs
