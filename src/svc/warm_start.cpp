#include "svc/warm_start.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

#include "aa/algorithm2.hpp"
#include "aa/certify.hpp"
#include "aa/online.hpp"
#include "aa/refine.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "utility/linearized.hpp"

namespace aa::svc {

namespace {

constexpr const char* kFullSolverLabel = "svc_full";
constexpr const char* kWarmSolverLabel = "svc_warm";

/// Orders thread indices by nonincreasing linearized peak (Algorithm 2's
/// primary sort), ties broken by position for determinism.
std::vector<std::size_t> peak_order(
    const std::vector<util::Linearized>& linearized) {
  std::vector<std::size_t> order(linearized.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (linearized[a].peak != linearized[b].peak) {
      return linearized[a].peak > linearized[b].peak;
    }
    return a < b;
  });
  return order;
}

double linearized_total(const std::vector<util::Linearized>& linearized,
                        const core::Assignment& assignment) {
  double total = 0.0;
  for (std::size_t i = 0; i < linearized.size(); ++i) {
    total += linearized[i].value(assignment.alloc[i]);
  }
  return total;
}

}  // namespace

const char* solve_path_name(SolvePath path) noexcept {
  switch (path) {
    case SolvePath::kCached: return "cached";
    case SolvePath::kWarm: return "warm";
    case SolvePath::kFull: return "full";
  }
  return "unknown";
}

WarmStartSolver::WarmStartSolver(WarmStartConfig config)
    : config_(config) {}

void WarmStartSolver::reset() {
  have_previous_ = false;
  solved_version_ = 0;
  previous_server_.clear();
  previous_ = ServiceSolveResult{};
}

bool WarmStartSolver::deltas_exceed_threshold(std::uint64_t deltas,
                                              std::size_t num_threads) const {
  const double fraction_limit =
      config_.resolve_delta_fraction * static_cast<double>(num_threads);
  const double limit =
      std::max(static_cast<double>(config_.resolve_delta_min), fraction_limit);
  return static_cast<double>(deltas) > limit;
}

std::size_t WarmStartSolver::count_id_migrations(
    const std::vector<ThreadId>& ids,
    const core::Assignment& assignment) const {
  std::size_t moves = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = previous_server_.find(ids[i]);
    if (it != previous_server_.end() && it->second != assignment.server[i]) {
      ++moves;
    }
  }
  return moves;
}

void WarmStartSolver::remember(const ServiceSolveResult& solved,
                               std::uint64_t version) {
  previous_server_.clear();
  for (std::size_t i = 0; i < solved.ids.size(); ++i) {
    previous_server_.emplace(solved.ids[i], solved.result.assignment.server[i]);
  }
  previous_ = solved;
  solved_version_ = version;
  have_previous_ = true;
}

ServiceSolveResult WarmStartSolver::solve(const InstanceState& state,
                                          bool force_full) {
  obs::ScopedPhase phase(obs::metric::kPhaseSvcSolve);
  const std::uint64_t version = state.version();

  // Version unchanged: the previous answer (and certificate) still holds.
  if (have_previous_ && !force_full && version == solved_version_) {
    ServiceSolveResult cached = previous_;
    cached.path = SolvePath::kCached;
    cached.migrations = 0;
    obs::count(obs::metric::kSvcSolveCached);
    return cached;
  }

  ServiceSolveResult solved;
  const core::Instance instance = state.to_instance(&solved.ids);
  const std::size_t n = instance.num_threads();
  const core::CertifyOptions certify_options{/*check_concavity=*/false};

  // Empty instance: a trivial (vacuously certified) solution.
  if (n == 0) {
    solved.result = core::SolveResult{};
    solved.path = SolvePath::kFull;
    solved.certificate = core::certify(instance, solved.result,
                                       kFullSolverLabel, certify_options);
    remember(solved, version);
    obs::count(obs::metric::kSvcSolveFull);
    return solved;
  }

  const std::uint64_t deltas =
      have_previous_ ? version - solved_version_ : version;
  const bool must_resolve = force_full || !have_previous_ ||
                            deltas_exceed_threshold(deltas, n);

  if (must_resolve) {
    solved.result = core::solve_algorithm2_refined(instance);
    solved.path = SolvePath::kFull;
    solved.migrations = count_id_migrations(solved.ids,
                                            solved.result.assignment);
    solved.certificate = core::certify(instance, solved.result,
                                       kFullSolverLabel, certify_options);
    obs::count(obs::metric::kSvcSolveFull);
  } else {
    // Shared prefix of both candidates: the super-optimal allocation and
    // the two-segment linearization certify the *current* utilities.
    alloc::SuperOptimalResult super =
        alloc::super_optimal_routed(instance.threads, instance.num_servers,
                                    instance.capacity);
    const std::vector<util::Linearized> linearized =
        util::linearize(instance.threads, super.c_hat);

    // Fresh candidate: Algorithm 2's placement on the shared linearization.
    core::Assignment fresh_raw = assign_algorithm2(instance, linearized);
    const double fresh_linearized = linearized_total(linearized, fresh_raw);
    core::Assignment fresh_refined =
        core::reoptimize_allocations(instance, fresh_raw);
    const double fresh_utility = core::total_utility(instance, fresh_refined);

    // Warm candidate: surviving threads pinned to their previous server in
    // nonincreasing-peak order, each taking min(c_hat_i, remaining); new
    // threads fill the least-loaded servers afterwards.
    core::Assignment warm_raw;
    warm_raw.server.assign(n, 0);
    warm_raw.alloc.assign(n, 0.0);
    std::vector<double> remaining(instance.num_servers,
                                  static_cast<double>(instance.capacity));
    const std::vector<std::size_t> order = peak_order(linearized);
    std::vector<std::size_t> arrivals;  // New threads, still in peak order.
    for (const std::size_t index : order) {
      const auto it = previous_server_.find(solved.ids[index]);
      if (it == previous_server_.end()) {
        arrivals.push_back(index);
        continue;
      }
      const std::size_t server = it->second;
      const double give =
          std::min(static_cast<double>(linearized[index].cap),
                   remaining[server]);
      warm_raw.server[index] = server;
      warm_raw.alloc[index] = give;
      remaining[server] -= give;
    }
    for (const std::size_t index : arrivals) {
      const std::size_t server = static_cast<std::size_t>(
          std::max_element(remaining.begin(), remaining.end()) -
          remaining.begin());
      const double give = std::min(
          static_cast<double>(linearized[index].cap), remaining[server]);
      warm_raw.server[index] = server;
      warm_raw.alloc[index] = give;
      remaining[server] -= give;
    }
    const double warm_linearized = linearized_total(linearized, warm_raw);
    core::Assignment warm_refined =
        core::reoptimize_allocations(instance, warm_raw);
    const double warm_utility = core::total_utility(instance, warm_refined);

    core::SolveResult warm_result;
    warm_result.assignment = std::move(warm_refined);
    warm_result.utility = warm_utility;
    warm_result.linearized_utility = warm_linearized;
    warm_result.super_optimal_utility = super.utility;
    warm_result.c_hat = super.c_hat;
    const obs::Certificate warm_certificate = core::certify(
        instance, warm_result, kWarmSolverLabel, certify_options);

    // kSticky rule: keep the pinned placement unless the fresh one beats it
    // by more than the hysteresis — but only when the warm candidate can
    // certify its own 0.828 bound; otherwise fall back to Algorithm 2,
    // whose bound is Theorem VI.1.
    const bool keep_warm =
        warm_certificate.ok() &&
        !core::sticky_should_migrate(fresh_utility, warm_utility,
                                     config_.hysteresis);
    if (keep_warm) {
      solved.result = std::move(warm_result);
      solved.path = SolvePath::kWarm;
      solved.certificate = warm_certificate;
      obs::count(obs::metric::kSvcSolveWarm);
    } else {
      core::SolveResult fresh_result;
      fresh_result.assignment = std::move(fresh_refined);
      fresh_result.utility = fresh_utility;
      fresh_result.linearized_utility = fresh_linearized;
      fresh_result.super_optimal_utility = super.utility;
      fresh_result.c_hat = std::move(super.c_hat);
      solved.result = std::move(fresh_result);
      solved.path = SolvePath::kFull;
      solved.certificate = core::certify(instance, solved.result,
                                         kFullSolverLabel, certify_options);
      obs::count(obs::metric::kSvcSolveFull);
      if (!warm_certificate.ok()) {
        obs::count(obs::metric::kSvcWarmCertificateRejects);
      }
    }
    solved.migrations = count_id_migrations(solved.ids,
                                            solved.result.assignment);
  }

  // Surface the reply certificate on the installed session (the
  // counters/certificate list behind `aa_serve --metrics`).
  if (obs::Session::current() != nullptr) {
    obs::record_certificate(solved.certificate.input);
  }
  obs::count(obs::metric::kSvcMigrations,
             static_cast<std::int64_t>(solved.migrations));
  remember(solved, version);
  return solved;
}

}  // namespace aa::svc
