#pragma once

// Transports for the allocation service: a Unix-domain-socket server (the
// normal aa_serve mode) and a stdio loop (the `--stdio` test mode). Both
// only move bytes — parsing, validation, batching, and solving live in
// Service.

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/sync.hpp"
#include "svc/channel.hpp"
#include "svc/service.hpp"

namespace aa::svc {

/// Accept loop over a Unix domain stream socket. One reader thread per
/// connection; replies are written back on the worker threads under a
/// per-connection mutex. A request line longer than `max_line_bytes` gets
/// a structured `too_large` error and the connection is closed (the stream
/// cannot be resynchronized); a mid-line EOF is a clean disconnect.
class SocketServer {
 public:
  SocketServer(Service& service, std::string socket_path,
               std::size_t max_line_bytes = kDefaultMaxLineBytes);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Blocks accepting connections until the service reports
  /// shutdown_requested(), then closes every connection and joins the
  /// reader threads.
  void run();

 private:
  struct Connection;

  void connection_loop(std::shared_ptr<Connection> connection);
  void shutdown_connections() AA_EXCLUDES(connections_mutex_);

  Service& service_;
  std::string socket_path_;
  std::size_t max_line_bytes_;
  FdHandle listener_;

  // Lock order: leaf. Guards the connection/thread registries only;
  // each Connection then has its own leaf write_mutex.
  support::Mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_
      AA_GUARDED_BY(connections_mutex_);
  std::vector<std::thread> threads_ AA_GUARDED_BY(connections_mutex_);
};

/// Reads request lines from `in` until EOF (or the first line after a
/// processed shutdown), echoing replies to `out` (one per line, flushed).
/// `out` must stay valid until the service is stopped: replies still in
/// flight when this returns are written during Service::stop().
void serve_stdio(Service& service, std::istream& in, std::ostream& out,
                 std::size_t max_line_bytes = kDefaultMaxLineBytes);

}  // namespace aa::svc
