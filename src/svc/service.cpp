#include "svc/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "support/sync.hpp"

namespace aa::svc {

namespace {

using support::JsonValue;

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Copies every member of `payload` onto `reply`.
void merge_into(JsonValue& reply, const JsonValue& payload) {
  for (const auto& [key, value] : payload.as_object()) {
    reply.set(key, value);
  }
}

}  // namespace

bool Service::tenant_scoped(Op op) noexcept {
  switch (op) {
    case Op::kAddThread:
    case Op::kRemoveThread:
    case Op::kUpdateUtility:
    case Op::kSolve:
      return true;
    case Op::kStats:
    case Op::kMetrics:
    case Op::kShutdown:
    case Op::kTenantCreate:
    case Op::kTenantUpdate:
    case Op::kTenantDelete:
    case Op::kTenantList:
      return false;
  }
  return false;
}

std::string_view Service::tenant_name(const Request& request) noexcept {
  return request.tenant.empty() ? kDefaultTenant
                                : std::string_view(request.tenant);
}

double Service::pool_units() const noexcept {
  return static_cast<double>(config_.num_servers) *
         static_cast<double>(config_.capacity);
}

Service::Service(ServiceConfig config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  policy_ = FairnessPolicy::create(config_.fairness);

  // The default tenant exists from the start (single-tenant clients never
  // name a tenant) and owns the whole pool until others are created.
  // Single-threaded here (no workers yet), so the locks below are
  // uncontended; they are taken anyway to satisfy the declared contracts.
  const std::string name(kDefaultTenant);
  Shard& home = *shards_[shard_of(name, config_.shards)];
  const support::MutexLock home_turn(home.turn_mutex);
  home.tenants.emplace(
      name, std::make_unique<Tenant>(name, TenantQuota{},
                                     config_.num_servers, config_.capacity,
                                     config_.warm));
  all_turns_.acquire();
  policy_->on_tenant_created(name, config_.karma_opening_credits);
  redivide_pool_locked();
  all_turns_.release();
}

Service::~Service() { stop(); }

void Service::start() {
  if (pool_ != nullptr) return;
  // Every shard needs at least one pinned worker.
  const std::size_t total = std::max(config_.workers, config_.shards);
  pool_ = std::make_unique<support::ThreadPool>(total);
  workers_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t shard_index = i % config_.shards;
    workers_.push_back(
        pool_->submit([this, shard_index] { worker_loop(shard_index); }));
  }
}

void Service::stop() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    {
      const support::MutexLock lock(shard->queue_mutex);
      shard->stopping = true;
    }
    shard->queue_cv.notify_all();
  }
  for (std::future<void>& worker : workers_) worker.get();
  workers_.clear();
  pool_.reset();
  shutdown_requested_.store(true, std::memory_order_release);
}

bool Service::shutdown_requested() const noexcept {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void Service::submit_line(const std::string& line, ReplyFn reply) {
  const Clock::time_point now = Clock::now();
  obs::count(obs::metric::kSvcRequests);

  Pending pending;
  pending.reply = std::move(reply);
  pending.enqueued = now;
  pending.deadline = Clock::time_point::max();
  std::optional<Op> op;
  try {
    pending.request = parse_request(line, config_.capacity);
    op = pending.request.op;
    const double deadline_ms =
        pending.request.deadline_ms.value_or(config_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      pending.deadline =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
    }
  } catch (const ProtocolError& error) {
    // Queued, not answered inline: the error reply must not overtake
    // replies to requests submitted before this line.
    obs::count(obs::metric::kSvcErrors);
    pending.error_reply = make_error_reply(error.code(), error.what());
  }

  // Tenant-scoped requests go to their tenant's shard; control requests
  // (and unparseable lines, which name no tenant) go to shard 0.
  const std::size_t shard_index =
      (op.has_value() && tenant_scoped(*op))
          ? shard_of(tenant_name(pending.request), config_.shards)
          : 0;
  Shard& shard = *shards_[shard_index];

  std::size_t depth = 0;
  {
    const support::MutexLock lock(shard.queue_mutex);
    if (shard.stopping || shutdown_requested()) {
      const support::MutexLock stats(stats_mutex_);
      ++requests_total_;
      ++errors_total_;
      pending.reply(
          pending.error_reply
              ? pending.error_reply->dump()
              : make_error_reply(error_code::kShuttingDown,
                                 "service is shutting down",
                                 op_name(pending.request.op),
                                 pending.request.tag)
                    .dump());
      return;
    }
    if (shard.queue.size() >= config_.max_queue) {
      const support::MutexLock stats(stats_mutex_);
      ++requests_total_;
      ++errors_total_;
      pending.reply(
          pending.error_reply
              ? pending.error_reply->dump()
              : make_error_reply(error_code::kOverflow,
                                 "request queue is full",
                                 op_name(pending.request.op),
                                 pending.request.tag)
                    .dump());
      return;
    }
    shard.queue.push_back(std::move(pending));
    depth = shard.queue.size();
  }
  shard.queue_cv.notify_one();

  {
    const support::MutexLock stats(stats_mutex_);
    ++requests_total_;
    if (op) {
      ++op_counts_[static_cast<std::size_t>(*op)];
    } else {
      ++errors_total_;
    }
    queue_peak_ = std::max(queue_peak_, depth);
    queue_depth_.sample(static_cast<double>(depth));
  }
  obs::sample(obs::metric::kSampleSvcQueueDepth, static_cast<double>(depth));
}

std::string Service::request(const std::string& line) {
  auto done = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = done->get_future();
  submit_line(line,
              [done](const std::string& text) { done->set_value(text); });
  return future.get();
}

std::vector<Service::Pending> Service::pop_batch(Shard& shard) {
  // Never blocks indefinitely: the caller already saw work (or stop) and
  // holds the shard's turn lock — an unbounded wait here would hold that
  // lock against cross-shard control ops (tenant churn, stats). A peer
  // worker may have raced us to the queue, in which case return empty.
  const support::MutexLock lock(shard.queue_mutex);
  if (shard.queue.empty()) return {};

  if (config_.batch_linger_ms > 0.0 &&
      shard.queue.size() < config_.batch_max) {
    const auto linger_until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.batch_linger_ms));
    // Manual predicate loop (not a lambda) so the guarded reads stay in
    // this function's analysis context — support/sync.hpp.
    while (!shard.stopping && shard.queue.size() < config_.batch_max) {
      if (shard.queue_cv.wait_until(shard.queue_mutex, linger_until) ==
          std::cv_status::timeout) {
        break;
      }
    }
  }

  std::vector<Pending> batch;
  const std::size_t take = std::min(shard.queue.size(), config_.batch_max);
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(shard.queue.front()));
    shard.queue.pop_front();
  }
  return batch;
}

void Service::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    // Wait for work WITHOUT the turn lock: an idle shard's turn must stay
    // available to the shard-0 worker's cross-shard ops (AllShardsTurnLock
    // would otherwise deadlock against a parked worker).
    {
      const support::MutexLock lock(shard.queue_mutex);
      while (!shard.stopping && shard.queue.empty()) {
        shard.queue_cv.wait(shard.queue_mutex);
      }
      if (shard.queue.empty()) return;  // Stopping and drained.
    }
    std::vector<Pending> batch;
    std::vector<Outgoing> outgoing;
    std::uint64_t seq = 0;
    {
      const support::MutexLock turn(shard.turn_mutex);
      batch = pop_batch(shard);
      if (batch.empty()) continue;  // A peer on this shard raced us to it.
      seq = shard.next_batch_seq++;
      outgoing = process_batch(shard, std::move(batch));
    }
    deliver_in_order(shard, seq, std::move(outgoing));
  }
}

void Service::deliver_in_order(Shard& shard, std::uint64_t seq,
                               std::vector<Outgoing> outgoing) {
  // Render outside both the turn and the delivery lock: serialization of
  // batch k overlaps the processing of batch k+1.
  std::vector<std::pair<ReplyFn, std::string>> rendered;
  rendered.reserve(outgoing.size());
  for (Outgoing& out : outgoing) {
    rendered.emplace_back(std::move(out.reply), out.value.dump());
  }

  support::MutexLock lock(shard.deliver_mutex);
  while (shard.delivered_seq != seq) shard.deliver_cv.wait(shard.deliver_mutex);
  for (auto& [reply, text] : rendered) {
    try {
      reply(text);
    } catch (...) {
      // A dead connection must not take the service down.
      obs::count(obs::metric::kSvcReplyFailures);
    }
  }
  shard.delivered_seq = seq + 1;
  lock.unlock();
  shard.deliver_cv.notify_all();
}

void Service::record_latency(const Pending& pending, Clock::time_point now) {
  const double wall_ms = ms_between(pending.enqueued, now);
  {
    const support::MutexLock stats(stats_mutex_);
    request_latency_ms_.sample(wall_ms);
  }
  obs::sample(obs::metric::kSampleSvcRequest, wall_ms);
}

// The constituent turn locks live behind a dynamic vector the analysis
// cannot enumerate, so the bodies are unanalyzed; the attributes on the
// declarations (acquire/release of the all_turns_ phantom) carry the
// contract to callers.
Service::AllShardsTurnLock::AllShardsTurnLock(Service& service)
    AA_NO_THREAD_SAFETY_ANALYSIS : service_(service) {
  for (std::size_t i = 1; i < service_.shards_.size(); ++i) {
    service_.shards_[i]->turn_mutex.lock();
  }
  service_.all_turns_.acquire();
}

Service::AllShardsTurnLock::~AllShardsTurnLock()
    AA_NO_THREAD_SAFETY_ANALYSIS {
  service_.all_turns_.release();
  // Descending, mirroring acquisition.
  for (std::size_t i = service_.shards_.size(); i-- > 1;) {
    service_.shards_[i]->turn_mutex.unlock();
  }
}

Tenant* Service::find_tenant(std::string_view name) {
  Shard& shard = *shards_[shard_of(name, config_.shards)];
  assert_turn_held(shard);
  const auto it = shard.tenants.find(name);
  return it == shard.tenants.end() ? nullptr : it->second.get();
}

void Service::redivide_pool_locked() {
  std::vector<TenantDemand> demands;
  std::vector<Tenant*> order;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    assert_turn_held(shard);
    for (const auto& [name, tenant] : shard.tenants) {
      TenantDemand demand;
      demand.id = name;
      demand.weight = tenant->quota.weight;
      demand.quota = tenant->quota.quota_units;
      demand.demand = tenant_demand_units(tenant->state);
      demands.push_back(std::move(demand));
      order.push_back(tenant.get());
    }
  }
  const std::vector<double> slices = policy_->divide(pool_units(), demands);
  for (std::size_t i = 0; i < order.size(); ++i) {
    Tenant& tenant = *order[i];
    tenant.slice_units = slices[i];
    tenant.demand_units = demands[i].demand;
    const auto per_server = static_cast<util::Resource>(
        std::floor(slices[i] / static_cast<double>(config_.num_servers)));
    tenant.state.set_solve_capacity(std::max<util::Resource>(1, per_server));
  }
  obs::count(obs::metric::kSvcTenantRedivides);
  const support::MutexLock stats(stats_mutex_);
  ++pool_redivides_;
}

JsonValue Service::tenant_admin(const Request& request) {
  const std::string name = request.tenant;
  Shard& home = *shards_[shard_of(name, config_.shards)];
  assert_turn_held(home);
  switch (request.op) {
    case Op::kTenantCreate: {
      if (home.tenants.find(name) != home.tenants.end()) {
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
        return make_error_reply(error_code::kTenantExists,
                                "tenant '" + name + "' already exists",
                                op_name(request.op), request.tag);
      }
      TenantQuota quota;
      quota.weight = request.weight.value_or(1.0);
      quota.quota_units = request.quota.value_or(0.0);
      quota.max_threads = request.max_threads.value_or(0);
      auto tenant = std::make_unique<Tenant>(name, quota,
                                             config_.num_servers,
                                             config_.capacity, config_.warm);
      Tenant* created = tenant.get();
      home.tenants.emplace(name, std::move(tenant));
      policy_->on_tenant_created(
          name, request.credits.value_or(config_.karma_opening_credits));
      obs::count(obs::metric::kSvcTenantCreates);
      {
        const support::MutexLock stats(stats_mutex_);
        ++tenant_creates_;
      }
      redivide_pool_locked();
      JsonValue reply = make_ok_reply(request.op, request.tag);
      reply.set("tenant", name);
      reply.set("shard", shard_of(name, config_.shards));
      reply.set("weight", created->quota.weight);
      reply.set("quota_units", created->quota.quota_units);
      reply.set("max_threads", created->quota.max_threads);
      reply.set("slice_units", created->slice_units);
      return reply;
    }
    case Op::kTenantUpdate: {
      Tenant* tenant = find_tenant(name);
      if (tenant == nullptr) {
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
        return make_error_reply(error_code::kTenantNotFound,
                                "no tenant '" + name + "'",
                                op_name(request.op), request.tag);
      }
      if (request.weight) tenant->quota.weight = *request.weight;
      if (request.quota) tenant->quota.quota_units = *request.quota;
      if (request.max_threads) tenant->quota.max_threads = *request.max_threads;
      obs::count(obs::metric::kSvcTenantUpdates);
      {
        const support::MutexLock stats(stats_mutex_);
        ++tenant_updates_;
      }
      redivide_pool_locked();
      JsonValue reply = make_ok_reply(request.op, request.tag);
      reply.set("tenant", name);
      reply.set("weight", tenant->quota.weight);
      reply.set("quota_units", tenant->quota.quota_units);
      reply.set("max_threads", tenant->quota.max_threads);
      reply.set("slice_units", tenant->slice_units);
      return reply;
    }
    case Op::kTenantDelete: {
      if (name == kDefaultTenant) {
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
        return make_error_reply(error_code::kBadTenant,
                                "the default tenant cannot be deleted",
                                op_name(request.op), request.tag);
      }
      const auto it = home.tenants.find(name);
      if (it == home.tenants.end()) {
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
        return make_error_reply(error_code::kTenantNotFound,
                                "no tenant '" + name + "'",
                                op_name(request.op), request.tag);
      }
      const std::size_t threads_removed = it->second->state.num_threads();
      home.tenants.erase(it);
      policy_->on_tenant_deleted(name);
      obs::count(obs::metric::kSvcTenantDeletes);
      {
        const support::MutexLock stats(stats_mutex_);
        ++tenant_deletes_;
      }
      redivide_pool_locked();
      JsonValue reply = make_ok_reply(request.op, request.tag);
      reply.set("tenant", name);
      reply.set("threads_removed", threads_removed);
      return reply;
    }
    default:
      return make_error_reply(error_code::kInternal,
                              "not a tenant admin op",
                              op_name(request.op), request.tag);
  }
}

JsonValue Service::tenant_list_json() {
  JsonValue::Array tenants;
  std::size_t count = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    assert_turn_held(shard);
    for (const auto& [name, tenant] : shard.tenants) {
      JsonValue entry;
      entry.set("tenant", name);
      entry.set("shard", s);
      entry.set("weight", tenant->quota.weight);
      entry.set("quota_units", tenant->quota.quota_units);
      entry.set("max_threads", tenant->quota.max_threads);
      entry.set("threads", tenant->state.num_threads());
      entry.set("slice_units", tenant->slice_units);
      entry.set("demand_units", tenant->demand_units);
      entry.set("solve_capacity", tenant->state.solve_capacity());
      entry.set("credits", policy_->credits(name));
      tenants.push_back(std::move(entry));
      ++count;
    }
  }
  JsonValue payload;
  payload.set("policy", fairness_policy_name(policy_->kind()));
  payload.set("pool_units", pool_units());
  payload.set("tenants", JsonValue(std::move(tenants)));
  payload.set("tenant_count", count);
  return payload;
}

std::vector<Service::Outgoing> Service::process_batch(
    Shard& shard, std::vector<Pending> batch) {
  const obs::ScopedPhase phase(obs::metric::kPhaseSvcBatch);
  obs::count(obs::metric::kSvcBatches);
  obs::sample(obs::metric::kSampleSvcBatchSize,
              static_cast<double>(batch.size()));
  {
    const support::MutexLock stats(stats_mutex_);
    ++batches_;
    batch_size_.sample(static_cast<double>(batch.size()));
  }

  std::vector<Outgoing> out;
  out.reserve(batch.size());
  /// Per-tenant deferred solves: every solve in the batch for one tenant
  /// shares one re-solve of that tenant's final state.
  struct SolveGroup {
    std::vector<std::size_t> slots;
    bool force_full = false;
  };
  std::map<std::string, SolveGroup, std::less<>> solve_groups;

  const Clock::time_point started = Clock::now();
  for (Pending& pending : batch) {
    const Request& request = pending.request;
    obs::span_ending_now(obs::metric::kEventSvcQueueWait,
                         ms_between(pending.enqueued, started));
    JsonValue reply;
    try {
      if (pending.error_reply) {
        // Pre-failed at parse time; counted when it was enqueued.
        reply = std::move(*pending.error_reply);
      } else if (shutdown_requested()) {
        reply = make_error_reply(error_code::kShuttingDown,
                                 "service is shutting down",
                                 op_name(request.op), request.tag);
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
      } else if (started > pending.deadline) {
        reply = make_error_reply(error_code::kTimeout,
                                 "deadline expired before processing",
                                 op_name(request.op), request.tag);
        obs::count(obs::metric::kSvcTimeouts);
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
        ++timeouts_;
      } else if (tenant_scoped(request.op)) {
        const std::string_view name = tenant_name(request);
        const auto it = shard.tenants.find(name);
        Tenant* tenant =
            it == shard.tenants.end() ? nullptr : it->second.get();
        if (tenant == nullptr) {
          reply = make_error_reply(
              error_code::kTenantNotFound,
              "no tenant '" + std::string(name) + "'",
              op_name(request.op), request.tag);
          const support::MutexLock stats(stats_mutex_);
          ++errors_total_;
        } else {
          ++tenant->requests;
          switch (request.op) {
            case Op::kAddThread: {
              if (tenant->quota.max_threads > 0 &&
                  static_cast<std::int64_t>(tenant->state.num_threads()) >=
                      tenant->quota.max_threads) {
                reply = make_error_reply(
                    error_code::kQuotaExceeded,
                    "tenant '" + std::string(name) + "' is at its " +
                        std::to_string(tenant->quota.max_threads) +
                        "-thread quota",
                    op_name(request.op), request.tag);
                ++tenant->errors;
                const support::MutexLock stats(stats_mutex_);
                ++errors_total_;
                break;
              }
              const ThreadId id = tenant->state.add_thread(request.utility);
              reply = make_ok_reply(request.op, request.tag);
              reply.set("id", id);
              reply.set("threads", tenant->state.num_threads());
              if (!request.tenant.empty()) {
                reply.set("tenant", request.tenant);
              }
              break;
            }
            case Op::kRemoveThread: {
              if (tenant->state.remove_thread(*request.id)) {
                reply = make_ok_reply(request.op, request.tag);
                reply.set("id", *request.id);
                reply.set("threads", tenant->state.num_threads());
                if (!request.tenant.empty()) {
                  reply.set("tenant", request.tenant);
                }
              } else {
                reply = make_error_reply(
                    error_code::kNotFound,
                    "no thread with id " + std::to_string(*request.id),
                    op_name(request.op), request.tag);
                ++tenant->errors;
                const support::MutexLock stats(stats_mutex_);
                ++errors_total_;
              }
              break;
            }
            case Op::kUpdateUtility: {
              const bool found =
                  request.utility != nullptr
                      ? tenant->state.update_utility(*request.id,
                                                     request.utility)
                      : tenant->state.scale_utility(*request.id,
                                                    *request.factor);
              if (found) {
                reply = make_ok_reply(request.op, request.tag);
                reply.set("id", *request.id);
                if (!request.tenant.empty()) {
                  reply.set("tenant", request.tenant);
                }
              } else {
                reply = make_error_reply(
                    error_code::kNotFound,
                    "no thread with id " + std::to_string(*request.id),
                    op_name(request.op), request.tag);
                ++tenant->errors;
                const support::MutexLock stats(stats_mutex_);
                ++errors_total_;
              }
              break;
            }
            case Op::kSolve: {
              // Deferred: all solves for this tenant in the batch share
              // one re-solve of its final state below.
              SolveGroup& group = solve_groups[std::string(name)];
              group.slots.push_back(out.size());
              group.force_full = group.force_full || request.full_solve;
              break;
            }
            default:
              break;
          }
        }
      } else {
        switch (request.op) {
          case Op::kStats: {
            const AllShardsTurnLock guards(*this);
            reply = make_ok_reply(request.op, request.tag);
            merge_into(reply, stats_json());
            break;
          }
          case Op::kMetrics: {
            const AllShardsTurnLock guards(*this);
            reply = make_ok_reply(request.op, request.tag);
            reply.set("content_type", "text/plain; version=0.0.4");
            reply.set("body", metrics_text());
            break;
          }
          case Op::kShutdown: {
            shutdown_requested_.store(true, std::memory_order_release);
            for (const std::unique_ptr<Shard>& other : shards_) {
              {
                const support::MutexLock lock(other->queue_mutex);
                other->stopping = true;
              }
              other->queue_cv.notify_all();
            }
            obs::count(obs::metric::kSvcShutdowns);
            reply = make_ok_reply(request.op, request.tag);
            break;
          }
          case Op::kTenantCreate:
          case Op::kTenantUpdate:
          case Op::kTenantDelete: {
            const AllShardsTurnLock guards(*this);
            reply = tenant_admin(request);
            break;
          }
          case Op::kTenantList: {
            const AllShardsTurnLock guards(*this);
            reply = make_ok_reply(request.op, request.tag);
            merge_into(reply, tenant_list_json());
            break;
          }
          default:
            break;
        }
      }
    } catch (const std::exception& error) {
      reply = make_error_reply(error_code::kInternal, error.what(),
                               op_name(request.op), request.tag);
      obs::count(obs::metric::kSvcInternalErrors);
      const support::MutexLock stats(stats_mutex_);
      ++errors_total_;
    }
    out.push_back(Outgoing{pending.reply, std::move(reply)});
  }

  for (auto& [name, group] : solve_groups) {
    const auto it = shard.tenants.find(name);
    Tenant* tenant = it == shard.tenants.end() ? nullptr : it->second.get();
    if (tenant == nullptr) {
      // Deleted by an admin op later in this very batch.
      for (const std::size_t slot : group.slots) {
        out[slot].value = make_error_reply(
            error_code::kTenantNotFound, "no tenant '" + name + "'",
            op_name(Op::kSolve), batch[slot].request.tag);
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
      }
      continue;
    }
    try {
      const Clock::time_point solve_start = Clock::now();
      ServiceSolveResult solved =
          tenant->solver.solve(tenant->state, group.force_full);
      const double solve_ms = ms_between(solve_start, Clock::now());
      switch (solved.path) {
        case SolvePath::kCached:
          obs::instant(obs::metric::kEventSvcPathCached);
          break;
        case SolvePath::kWarm:
          obs::instant(obs::metric::kEventSvcPathWarm);
          break;
        case SolvePath::kFull:
          obs::instant(obs::metric::kEventSvcPathFull);
          break;
      }
      ++tenant->solves_by_path[static_cast<std::size_t>(solved.path)];
      {
        const support::MutexLock stats(stats_mutex_);
        ++solves_by_path_[static_cast<std::size_t>(solved.path)];
        solves_coalesced_ +=
            static_cast<std::int64_t>(group.slots.size()) - 1;
        migrations_total_ += static_cast<std::int64_t>(solved.migrations);
        if (solved.certificate.ok()) {
          ++certificates_pass_;
        } else {
          ++certificates_fail_;
        }
        solve_latency_ms_.sample(solve_ms);
      }
      const JsonValue payload = solve_payload(solved, solve_ms);
      for (const std::size_t slot : group.slots) {
        JsonValue reply = make_ok_reply(Op::kSolve, batch[slot].request.tag);
        merge_into(reply, payload);
        if (!batch[slot].request.tenant.empty()) {
          reply.set("tenant", batch[slot].request.tenant);
        }
        out[slot].value = std::move(reply);
      }
    } catch (const std::exception& error) {
      obs::count(obs::metric::kSvcInternalErrors);
      for (const std::size_t slot : group.slots) {
        out[slot].value =
            make_error_reply(error_code::kInternal, error.what(),
                             op_name(Op::kSolve), batch[slot].request.tag);
        const support::MutexLock stats(stats_mutex_);
        ++errors_total_;
      }
    }
  }

  const Clock::time_point finished = Clock::now();
  for (const Pending& pending : batch) record_latency(pending, finished);
  return out;
}

JsonValue Service::solve_payload(const ServiceSolveResult& solved,
                                 double solve_ms) const {
  const obs::Certificate& certificate = solved.certificate;
  JsonValue payload;
  payload.set("path", solve_path_name(solved.path));
  payload.set("threads", solved.ids.size());
  payload.set("utility", solved.result.utility);
  payload.set("super_optimal_utility", solved.result.super_optimal_utility);
  payload.set("linearized_utility", solved.result.linearized_utility);
  payload.set("alpha", certificate.input.alpha);
  payload.set("achieved_ratio", certificate.achieved_ratio);
  payload.set("certificate_ok", certificate.ok());
  if (!certificate.ok()) {
    JsonValue::Array violations;
    for (const std::string& violation : certificate.violations) {
      violations.emplace_back(violation);
    }
    payload.set("violations", JsonValue(std::move(violations)));
  }
  payload.set("migrations", solved.migrations);
  payload.set("solve_ms", solve_ms);
  JsonValue::Array assignment;
  assignment.reserve(solved.ids.size());
  for (std::size_t i = 0; i < solved.ids.size(); ++i) {
    JsonValue entry;
    entry.set("id", solved.ids[i]);
    entry.set("server", solved.result.assignment.server[i]);
    entry.set("alloc", solved.result.assignment.alloc[i]);
    assignment.push_back(std::move(entry));
  }
  payload.set("assignment", JsonValue(std::move(assignment)));
  return payload;
}

std::size_t Service::total_queue_depth() {
  std::size_t depth = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const support::MutexLock lock(shard->queue_mutex);
    depth += shard->queue.size();
  }
  return depth;
}

JsonValue Service::stats_json() {
  const std::size_t depth = total_queue_depth();

  std::size_t threads = 0;
  std::uint64_t version = 0;
  std::size_t tenant_count = 0;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    assert_turn_held(shard);
    for (const auto& [name, tenant] : shard.tenants) {
      threads += tenant->state.num_threads();
      version += tenant->state.version();
      ++tenant_count;
    }
  }

  const auto latency_json = [](const obs::Histogram& histogram) {
    JsonValue node;
    node.set("count", histogram.count());
    if (!histogram.empty()) {
      node.set("p50_ms", histogram.quantile(0.50));
      node.set("p90_ms", histogram.quantile(0.90));
      node.set("p99_ms", histogram.quantile(0.99));
      node.set("p999_ms", histogram.quantile(0.999));
      node.set("mean_ms", histogram.mean());
      node.set("max_ms", histogram.max());
    }
    return node;
  };

  const support::MutexLock stats(stats_mutex_);
  JsonValue payload;
  payload.set("threads", threads);
  payload.set("servers", config_.num_servers);
  payload.set("capacity", config_.capacity);
  payload.set("version", version);
  payload.set("tenants", tenant_count);
  payload.set("shards", shards_.size());
  payload.set("policy", fairness_policy_name(policy_->kind()));
  payload.set("pool_units", pool_units());
  payload.set("queue_depth", depth);
  payload.set("queue_peak", queue_peak_);
  payload.set("requests_total", requests_total_);
  JsonValue ops;
  for (const Op op :
       {Op::kAddThread, Op::kRemoveThread, Op::kUpdateUtility, Op::kSolve,
        Op::kStats, Op::kMetrics, Op::kShutdown, Op::kTenantCreate,
        Op::kTenantUpdate, Op::kTenantDelete, Op::kTenantList}) {
    ops.set(std::string(op_name(op)),
            op_counts_[static_cast<std::size_t>(op)]);
  }
  payload.set("requests", std::move(ops));
  payload.set("errors_total", errors_total_);
  payload.set("timeouts", timeouts_);
  payload.set("batches", batches_);
  JsonValue batching;
  batching.set("mean_size", batch_size_.mean());
  batching.set("max_size", batch_size_.max());
  payload.set("batching", std::move(batching));
  JsonValue solves;
  solves.set("full",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kFull)]);
  solves.set("warm",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kWarm)]);
  solves.set("cached",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kCached)]);
  solves.set("coalesced", solves_coalesced_);
  payload.set("solves", std::move(solves));
  payload.set("migrations", migrations_total_);
  JsonValue tenant_ops;
  tenant_ops.set("creates", tenant_creates_);
  tenant_ops.set("updates", tenant_updates_);
  tenant_ops.set("deletes", tenant_deletes_);
  tenant_ops.set("redivides", pool_redivides_);
  payload.set("tenant_ops", std::move(tenant_ops));
  payload.set("request_latency", latency_json(request_latency_ms_));
  payload.set("solve_latency", latency_json(solve_latency_ms_));
  return payload;
}

std::string Service::metrics_text() {
  const std::size_t depth = total_queue_depth();

  std::string out;
  out.reserve(8192);
  obs::prometheus_gauge(out, "aa_uptime_seconds",
                        ms_between(started_, Clock::now()) / 1e3);

  // Per-tenant labeled families first (tenant ids are [A-Za-z0-9_.-], so
  // label values never need escaping). Cardinality is bounded by the live
  // tenant count — docs/OBSERVABILITY.md "Per-tenant labels".
  std::size_t threads = 0;
  std::uint64_t version = 0;
  std::size_t tenant_count = 0;
  struct Row {
    std::string labels;
    const Tenant* tenant = nullptr;
  };
  std::vector<Row> rows;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    assert_turn_held(shard);
    for (const auto& [name, tenant] : shard.tenants) {
      threads += tenant->state.num_threads();
      version += tenant->state.version();
      ++tenant_count;
      rows.push_back(Row{"tenant=\"" + name + "\"", tenant.get()});
    }
  }
  obs::prometheus_gauge(out, "aa_svc_tenants",
                        static_cast<double>(tenant_count));
  obs::prometheus_gauge(out, "aa_svc_shards",
                        static_cast<double>(shards_.size()));
  obs::prometheus_header(out, "aa_svc_tenant_requests_total", "counter");
  for (const Row& row : rows) {
    obs::prometheus_sample(out, "aa_svc_tenant_requests_total", row.labels,
                           row.tenant->requests);
  }
  obs::prometheus_header(out, "aa_svc_tenant_errors_total", "counter");
  for (const Row& row : rows) {
    obs::prometheus_sample(out, "aa_svc_tenant_errors_total", row.labels,
                           row.tenant->errors);
  }
  obs::prometheus_header(out, "aa_svc_tenant_solves_total", "counter");
  for (const Row& row : rows) {
    obs::prometheus_sample(
        out, "aa_svc_tenant_solves_total", row.labels + ",path=\"full\"",
        row.tenant->solves_by_path[static_cast<std::size_t>(
            SolvePath::kFull)]);
    obs::prometheus_sample(
        out, "aa_svc_tenant_solves_total", row.labels + ",path=\"warm\"",
        row.tenant->solves_by_path[static_cast<std::size_t>(
            SolvePath::kWarm)]);
    obs::prometheus_sample(
        out, "aa_svc_tenant_solves_total", row.labels + ",path=\"cached\"",
        row.tenant->solves_by_path[static_cast<std::size_t>(
            SolvePath::kCached)]);
  }
  obs::prometheus_header(out, "aa_svc_tenant_threads", "gauge");
  for (const Row& row : rows) {
    obs::prometheus_sample(
        out, "aa_svc_tenant_threads", row.labels,
        static_cast<double>(row.tenant->state.num_threads()));
  }
  obs::prometheus_header(out, "aa_svc_tenant_slice_units", "gauge");
  for (const Row& row : rows) {
    obs::prometheus_sample(out, "aa_svc_tenant_slice_units", row.labels,
                           row.tenant->slice_units);
  }
  obs::prometheus_header(out, "aa_svc_tenant_demand_units", "gauge");
  for (const Row& row : rows) {
    obs::prometheus_sample(out, "aa_svc_tenant_demand_units", row.labels,
                           row.tenant->demand_units);
  }
  obs::prometheus_header(out, "aa_svc_tenant_credits", "gauge");
  for (const Row& row : rows) {
    obs::prometheus_sample(out, "aa_svc_tenant_credits", row.labels,
                           policy_->credits(row.tenant->name));
  }

  const support::MutexLock stats(stats_mutex_);
  obs::prometheus_counter(out, "aa_svc_requests_total", requests_total_);
  obs::prometheus_header(out, "aa_svc_requests_by_op_total", "counter");
  for (const Op op :
       {Op::kAddThread, Op::kRemoveThread, Op::kUpdateUtility, Op::kSolve,
        Op::kStats, Op::kMetrics, Op::kShutdown, Op::kTenantCreate,
        Op::kTenantUpdate, Op::kTenantDelete, Op::kTenantList}) {
    const std::string labels =
        "op=\"" + std::string(op_name(op)) + "\"";
    obs::prometheus_sample(out, "aa_svc_requests_by_op_total", labels,
                           op_counts_[static_cast<std::size_t>(op)]);
  }
  obs::prometheus_counter(out, "aa_svc_errors_total", errors_total_);
  obs::prometheus_counter(out, "aa_svc_timeouts_total", timeouts_);
  obs::prometheus_counter(out, "aa_svc_batches_total", batches_);
  obs::prometheus_counter(out, "aa_svc_solves_coalesced_total",
                          solves_coalesced_);
  obs::prometheus_header(out, "aa_svc_solves_total", "counter");
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"full\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kFull)]);
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"warm\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kWarm)]);
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"cached\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kCached)]);
  obs::prometheus_counter(out, "aa_svc_migrations_total", migrations_total_);
  obs::prometheus_header(out, "aa_svc_certificates_total", "counter");
  obs::prometheus_sample(out, "aa_svc_certificates_total",
                         "verdict=\"pass\"", certificates_pass_);
  obs::prometheus_sample(out, "aa_svc_certificates_total",
                         "verdict=\"fail\"", certificates_fail_);
  obs::prometheus_counter(out, "aa_svc_tenant_creates_total",
                          tenant_creates_);
  obs::prometheus_counter(out, "aa_svc_tenant_updates_total",
                          tenant_updates_);
  obs::prometheus_counter(out, "aa_svc_tenant_deletes_total",
                          tenant_deletes_);
  obs::prometheus_counter(out, "aa_svc_pool_redivides_total",
                          pool_redivides_);
  obs::prometheus_gauge(out, "aa_svc_queue_depth",
                        static_cast<double>(depth));
  obs::prometheus_gauge(out, "aa_svc_queue_peak",
                        static_cast<double>(queue_peak_));
  obs::prometheus_gauge(out, "aa_svc_threads",
                        static_cast<double>(threads));
  obs::prometheus_gauge(out, "aa_svc_state_version",
                        static_cast<double>(version));
  obs::prometheus_histogram(out, "aa_svc_request_latency_ms",
                            request_latency_ms_);
  obs::prometheus_summary(out, "aa_svc_request_latency_quantiles_ms",
                          request_latency_ms_);
  obs::prometheus_histogram(out, "aa_svc_solve_latency_ms",
                            solve_latency_ms_);
  obs::prometheus_summary(out, "aa_svc_solve_latency_quantiles_ms",
                          solve_latency_ms_);
  obs::prometheus_histogram(out, "aa_svc_batch_size", batch_size_);
  obs::prometheus_histogram(out, "aa_svc_queue_depth_samples", queue_depth_);

  // Session-side drop accounting, so truncated telemetry is visible from
  // the same scrape that would be misled by it.
  if (const obs::Session* session = obs::Session::current()) {
    const obs::Metrics session_metrics = session->metrics();
    obs::prometheus_counter(
        out, "aa_obs_trace_dropped_total",
        session_metrics.counter(obs::metric::kObsTraceDropped));
    obs::prometheus_counter(
        out, "aa_obs_histogram_dropped_total",
        session_metrics.counter(obs::metric::kObsHistogramDropped));
    obs::prometheus_counter(
        out, "aa_obs_certificates_dropped_total",
        session_metrics.counter(obs::metric::kObsCertificatesDropped));
    obs::prometheus_header(out, "aa_obs_trace_ring_dropped_total", "counter");
    for (const obs::TraceRingInfo& ring : session->trace_rings()) {
      const std::string labels =
          "ring=\"" + std::to_string(ring.tid) + "\"";
      obs::prometheus_sample(out, "aa_obs_trace_ring_dropped_total", labels,
                             ring.dropped);
    }
  }
  return out;
}

}  // namespace aa::svc
