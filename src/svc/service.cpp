#include "svc/service.hpp"

#include <algorithm>
#include <utility>

#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::svc {

namespace {

using support::JsonValue;

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Copies every member of `payload` onto `reply`.
void merge_into(JsonValue& reply, const JsonValue& payload) {
  for (const auto& [key, value] : payload.as_object()) {
    reply.set(key, value);
  }
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      state_(config.num_servers, config.capacity),
      solver_(config.warm) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
}

Service::~Service() { stop(); }

void Service::start() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<support::ThreadPool>(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.push_back(pool_->submit([this] { worker_loop(); }));
  }
}

void Service::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::future<void>& worker : workers_) worker.get();
  workers_.clear();
  pool_.reset();
  shutdown_requested_.store(true, std::memory_order_release);
}

bool Service::shutdown_requested() const noexcept {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void Service::submit_line(const std::string& line, ReplyFn reply) {
  const Clock::time_point now = Clock::now();
  obs::count(obs::metric::kSvcRequests);

  Pending pending;
  pending.reply = std::move(reply);
  pending.enqueued = now;
  pending.deadline = Clock::time_point::max();
  std::optional<Op> op;
  try {
    pending.request = parse_request(line, config_.capacity);
    op = pending.request.op;
    const double deadline_ms =
        pending.request.deadline_ms.value_or(config_.default_deadline_ms);
    if (deadline_ms > 0.0) {
      pending.deadline =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
    }
  } catch (const ProtocolError& error) {
    // Queued, not answered inline: the error reply must not overtake
    // replies to requests submitted before this line.
    obs::count(obs::metric::kSvcErrors);
    pending.error_reply = make_error_reply(error.code(), error.what());
  }

  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_ || shutdown_requested()) {
      std::lock_guard stats(stats_mutex_);
      ++requests_total_;
      ++errors_total_;
      pending.reply(
          pending.error_reply
              ? pending.error_reply->dump()
              : make_error_reply(error_code::kShuttingDown,
                                 "service is shutting down",
                                 op_name(pending.request.op),
                                 pending.request.tag)
                    .dump());
      return;
    }
    if (queue_.size() >= config_.max_queue) {
      std::lock_guard stats(stats_mutex_);
      ++requests_total_;
      ++errors_total_;
      pending.reply(
          pending.error_reply
              ? pending.error_reply->dump()
              : make_error_reply(error_code::kOverflow,
                                 "request queue is full",
                                 op_name(pending.request.op),
                                 pending.request.tag)
                    .dump());
      return;
    }
    queue_.push_back(std::move(pending));
    depth = queue_.size();
  }
  queue_cv_.notify_one();

  {
    std::lock_guard stats(stats_mutex_);
    ++requests_total_;
    if (op) {
      ++op_counts_[static_cast<std::size_t>(*op)];
    } else {
      ++errors_total_;
    }
    queue_peak_ = std::max(queue_peak_, depth);
    queue_depth_.sample(static_cast<double>(depth));
  }
  obs::sample(obs::metric::kSampleSvcQueueDepth, static_cast<double>(depth));
}

std::string Service::request(const std::string& line) {
  auto done = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = done->get_future();
  submit_line(line,
              [done](const std::string& text) { done->set_value(text); });
  return future.get();
}

std::vector<Service::Pending> Service::pop_batch() {
  std::unique_lock lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};

  if (config_.batch_linger_ms > 0.0 && queue_.size() < config_.batch_max) {
    const auto linger_until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.batch_linger_ms));
    queue_cv_.wait_until(lock, linger_until, [this] {
      return stopping_ || queue_.size() >= config_.batch_max;
    });
  }

  std::vector<Pending> batch;
  const std::size_t take = std::min(queue_.size(), config_.batch_max);
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void Service::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Outgoing> outgoing;
    std::uint64_t seq = 0;
    {
      std::lock_guard turn(process_mutex_);
      batch = pop_batch();
      if (batch.empty()) return;
      seq = next_batch_seq_++;
      outgoing = process_batch(std::move(batch));
    }
    deliver_in_order(seq, std::move(outgoing));
  }
}

void Service::deliver_in_order(std::uint64_t seq,
                               std::vector<Outgoing> outgoing) {
  // Render outside both the turn and the delivery lock: serialization of
  // batch k overlaps the processing of batch k+1.
  std::vector<std::pair<ReplyFn, std::string>> rendered;
  rendered.reserve(outgoing.size());
  for (Outgoing& out : outgoing) {
    rendered.emplace_back(std::move(out.reply), out.value.dump());
  }

  std::unique_lock lock(deliver_mutex_);
  deliver_cv_.wait(lock, [&] { return delivered_seq_ == seq; });
  for (auto& [reply, text] : rendered) {
    try {
      reply(text);
    } catch (...) {
      // A dead connection must not take the service down.
      obs::count(obs::metric::kSvcReplyFailures);
    }
  }
  delivered_seq_ = seq + 1;
  lock.unlock();
  deliver_cv_.notify_all();
}

void Service::record_latency(const Pending& pending, Clock::time_point now) {
  const double wall_ms = ms_between(pending.enqueued, now);
  {
    std::lock_guard stats(stats_mutex_);
    request_latency_ms_.sample(wall_ms);
  }
  obs::sample(obs::metric::kSampleSvcRequest, wall_ms);
}

std::vector<Service::Outgoing> Service::process_batch(
    std::vector<Pending> batch) {
  const obs::ScopedPhase phase(obs::metric::kPhaseSvcBatch);
  obs::count(obs::metric::kSvcBatches);
  obs::sample(obs::metric::kSampleSvcBatchSize,
              static_cast<double>(batch.size()));
  {
    std::lock_guard stats(stats_mutex_);
    ++batches_;
    batch_size_.sample(static_cast<double>(batch.size()));
  }

  std::vector<Outgoing> out;
  out.reserve(batch.size());
  std::vector<std::size_t> solve_slots;
  bool force_full = false;

  const Clock::time_point started = Clock::now();
  for (Pending& pending : batch) {
    const Request& request = pending.request;
    obs::span_ending_now(obs::metric::kEventSvcQueueWait,
                         ms_between(pending.enqueued, started));
    JsonValue reply;
    try {
      if (pending.error_reply) {
        // Pre-failed at parse time; counted when it was enqueued.
        reply = std::move(*pending.error_reply);
      } else if (shutdown_requested()) {
        reply = make_error_reply(error_code::kShuttingDown,
                                 "service is shutting down",
                                 op_name(request.op), request.tag);
        std::lock_guard stats(stats_mutex_);
        ++errors_total_;
      } else if (started > pending.deadline) {
        reply = make_error_reply(error_code::kTimeout,
                                 "deadline expired before processing",
                                 op_name(request.op), request.tag);
        obs::count(obs::metric::kSvcTimeouts);
        std::lock_guard stats(stats_mutex_);
        ++errors_total_;
        ++timeouts_;
      } else {
        switch (request.op) {
          case Op::kAddThread: {
            const ThreadId id = state_.add_thread(request.utility);
            reply = make_ok_reply(request.op, request.tag);
            reply.set("id", id);
            reply.set("threads", state_.num_threads());
            break;
          }
          case Op::kRemoveThread: {
            if (state_.remove_thread(*request.id)) {
              reply = make_ok_reply(request.op, request.tag);
              reply.set("id", *request.id);
              reply.set("threads", state_.num_threads());
            } else {
              reply = make_error_reply(
                  error_code::kNotFound,
                  "no thread with id " + std::to_string(*request.id),
                  op_name(request.op), request.tag);
              std::lock_guard stats(stats_mutex_);
              ++errors_total_;
            }
            break;
          }
          case Op::kUpdateUtility: {
            const bool found =
                request.utility != nullptr
                    ? state_.update_utility(*request.id, request.utility)
                    : state_.scale_utility(*request.id, *request.factor);
            if (found) {
              reply = make_ok_reply(request.op, request.tag);
              reply.set("id", *request.id);
            } else {
              reply = make_error_reply(
                  error_code::kNotFound,
                  "no thread with id " + std::to_string(*request.id),
                  op_name(request.op), request.tag);
              std::lock_guard stats(stats_mutex_);
              ++errors_total_;
            }
            break;
          }
          case Op::kSolve:
            // Deferred: all solves in the batch share one re-solve of the
            // final state below.
            solve_slots.push_back(out.size());
            force_full = force_full || request.full_solve;
            break;
          case Op::kStats:
            reply = make_ok_reply(request.op, request.tag);
            merge_into(reply, stats_json());
            break;
          case Op::kMetrics:
            reply = make_ok_reply(request.op, request.tag);
            reply.set("content_type", "text/plain; version=0.0.4");
            reply.set("body", metrics_text());
            break;
          case Op::kShutdown: {
            shutdown_requested_.store(true, std::memory_order_release);
            {
              std::lock_guard lock(queue_mutex_);
              stopping_ = true;
            }
            queue_cv_.notify_all();
            obs::count(obs::metric::kSvcShutdowns);
            reply = make_ok_reply(request.op, request.tag);
            break;
          }
        }
      }
    } catch (const std::exception& error) {
      reply = make_error_reply(error_code::kInternal, error.what(),
                               op_name(request.op), request.tag);
      obs::count(obs::metric::kSvcInternalErrors);
      std::lock_guard stats(stats_mutex_);
      ++errors_total_;
    }
    out.push_back(Outgoing{pending.reply, std::move(reply)});
  }

  if (!solve_slots.empty()) {
    try {
      const Clock::time_point solve_start = Clock::now();
      ServiceSolveResult solved = solver_.solve(state_, force_full);
      const double solve_ms = ms_between(solve_start, Clock::now());
      switch (solved.path) {
        case SolvePath::kCached:
          obs::instant(obs::metric::kEventSvcPathCached);
          break;
        case SolvePath::kWarm:
          obs::instant(obs::metric::kEventSvcPathWarm);
          break;
        case SolvePath::kFull:
          obs::instant(obs::metric::kEventSvcPathFull);
          break;
      }
      {
        std::lock_guard stats(stats_mutex_);
        ++solves_by_path_[static_cast<std::size_t>(solved.path)];
        solves_coalesced_ +=
            static_cast<std::int64_t>(solve_slots.size()) - 1;
        migrations_total_ += static_cast<std::int64_t>(solved.migrations);
        if (solved.certificate.ok()) {
          ++certificates_pass_;
        } else {
          ++certificates_fail_;
        }
        solve_latency_ms_.sample(solve_ms);
      }
      const JsonValue payload = solve_payload(solved, solve_ms);
      for (const std::size_t slot : solve_slots) {
        JsonValue reply = make_ok_reply(Op::kSolve, batch[slot].request.tag);
        merge_into(reply, payload);
        out[slot].value = std::move(reply);
      }
    } catch (const std::exception& error) {
      obs::count(obs::metric::kSvcInternalErrors);
      for (const std::size_t slot : solve_slots) {
        out[slot].value =
            make_error_reply(error_code::kInternal, error.what(),
                             op_name(Op::kSolve), batch[slot].request.tag);
        std::lock_guard stats(stats_mutex_);
        ++errors_total_;
      }
    }
  }

  const Clock::time_point finished = Clock::now();
  for (const Pending& pending : batch) record_latency(pending, finished);
  return out;
}

JsonValue Service::solve_payload(const ServiceSolveResult& solved,
                                 double solve_ms) const {
  const obs::Certificate& certificate = solved.certificate;
  JsonValue payload;
  payload.set("path", solve_path_name(solved.path));
  payload.set("threads", solved.ids.size());
  payload.set("utility", solved.result.utility);
  payload.set("super_optimal_utility", solved.result.super_optimal_utility);
  payload.set("linearized_utility", solved.result.linearized_utility);
  payload.set("alpha", certificate.input.alpha);
  payload.set("achieved_ratio", certificate.achieved_ratio);
  payload.set("certificate_ok", certificate.ok());
  if (!certificate.ok()) {
    JsonValue::Array violations;
    for (const std::string& violation : certificate.violations) {
      violations.emplace_back(violation);
    }
    payload.set("violations", JsonValue(std::move(violations)));
  }
  payload.set("migrations", solved.migrations);
  payload.set("solve_ms", solve_ms);
  JsonValue::Array assignment;
  assignment.reserve(solved.ids.size());
  for (std::size_t i = 0; i < solved.ids.size(); ++i) {
    JsonValue entry;
    entry.set("id", solved.ids[i]);
    entry.set("server", solved.result.assignment.server[i]);
    entry.set("alloc", solved.result.assignment.alloc[i]);
    assignment.push_back(std::move(entry));
  }
  payload.set("assignment", JsonValue(std::move(assignment)));
  return payload;
}

JsonValue Service::stats_json() {
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mutex_);
    depth = queue_.size();
  }

  const auto latency_json = [](const obs::Histogram& histogram) {
    JsonValue node;
    node.set("count", histogram.count());
    if (!histogram.empty()) {
      node.set("p50_ms", histogram.quantile(0.50));
      node.set("p90_ms", histogram.quantile(0.90));
      node.set("p99_ms", histogram.quantile(0.99));
      node.set("p999_ms", histogram.quantile(0.999));
      node.set("mean_ms", histogram.mean());
      node.set("max_ms", histogram.max());
    }
    return node;
  };

  std::lock_guard stats(stats_mutex_);
  JsonValue payload;
  payload.set("threads", state_.num_threads());
  payload.set("servers", state_.num_servers());
  payload.set("capacity", state_.capacity());
  payload.set("version", state_.version());
  payload.set("queue_depth", depth);
  payload.set("queue_peak", queue_peak_);
  payload.set("requests_total", requests_total_);
  JsonValue ops;
  for (const Op op : {Op::kAddThread, Op::kRemoveThread, Op::kUpdateUtility,
                      Op::kSolve, Op::kStats, Op::kMetrics, Op::kShutdown}) {
    ops.set(std::string(op_name(op)),
            op_counts_[static_cast<std::size_t>(op)]);
  }
  payload.set("requests", std::move(ops));
  payload.set("errors_total", errors_total_);
  payload.set("timeouts", timeouts_);
  payload.set("batches", batches_);
  JsonValue batching;
  batching.set("mean_size", batch_size_.mean());
  batching.set("max_size", batch_size_.max());
  payload.set("batching", std::move(batching));
  JsonValue solves;
  solves.set("full",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kFull)]);
  solves.set("warm",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kWarm)]);
  solves.set("cached",
             solves_by_path_[static_cast<std::size_t>(SolvePath::kCached)]);
  solves.set("coalesced", solves_coalesced_);
  payload.set("solves", std::move(solves));
  payload.set("migrations", migrations_total_);
  payload.set("request_latency", latency_json(request_latency_ms_));
  payload.set("solve_latency", latency_json(solve_latency_ms_));
  return payload;
}

std::string Service::metrics_text() {
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mutex_);
    depth = queue_.size();
  }

  std::string out;
  out.reserve(4096);
  obs::prometheus_gauge(out, "aa_uptime_seconds",
                        ms_between(started_, Clock::now()) / 1e3);

  std::lock_guard stats(stats_mutex_);
  obs::prometheus_counter(out, "aa_svc_requests_total", requests_total_);
  obs::prometheus_header(out, "aa_svc_requests_by_op_total", "counter");
  for (const Op op : {Op::kAddThread, Op::kRemoveThread, Op::kUpdateUtility,
                      Op::kSolve, Op::kStats, Op::kMetrics, Op::kShutdown}) {
    const std::string labels =
        "op=\"" + std::string(op_name(op)) + "\"";
    obs::prometheus_sample(out, "aa_svc_requests_by_op_total", labels,
                           op_counts_[static_cast<std::size_t>(op)]);
  }
  obs::prometheus_counter(out, "aa_svc_errors_total", errors_total_);
  obs::prometheus_counter(out, "aa_svc_timeouts_total", timeouts_);
  obs::prometheus_counter(out, "aa_svc_batches_total", batches_);
  obs::prometheus_counter(out, "aa_svc_solves_coalesced_total",
                          solves_coalesced_);
  obs::prometheus_header(out, "aa_svc_solves_total", "counter");
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"full\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kFull)]);
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"warm\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kWarm)]);
  obs::prometheus_sample(
      out, "aa_svc_solves_total", "path=\"cached\"",
      solves_by_path_[static_cast<std::size_t>(SolvePath::kCached)]);
  obs::prometheus_counter(out, "aa_svc_migrations_total", migrations_total_);
  obs::prometheus_header(out, "aa_svc_certificates_total", "counter");
  obs::prometheus_sample(out, "aa_svc_certificates_total",
                         "verdict=\"pass\"", certificates_pass_);
  obs::prometheus_sample(out, "aa_svc_certificates_total",
                         "verdict=\"fail\"", certificates_fail_);
  obs::prometheus_gauge(out, "aa_svc_queue_depth",
                        static_cast<double>(depth));
  obs::prometheus_gauge(out, "aa_svc_queue_peak",
                        static_cast<double>(queue_peak_));
  obs::prometheus_gauge(out, "aa_svc_threads",
                        static_cast<double>(state_.num_threads()));
  obs::prometheus_gauge(out, "aa_svc_state_version",
                        static_cast<double>(state_.version()));
  obs::prometheus_histogram(out, "aa_svc_request_latency_ms",
                            request_latency_ms_);
  obs::prometheus_summary(out, "aa_svc_request_latency_quantiles_ms",
                          request_latency_ms_);
  obs::prometheus_histogram(out, "aa_svc_solve_latency_ms",
                            solve_latency_ms_);
  obs::prometheus_summary(out, "aa_svc_solve_latency_quantiles_ms",
                          solve_latency_ms_);
  obs::prometheus_histogram(out, "aa_svc_batch_size", batch_size_);
  obs::prometheus_histogram(out, "aa_svc_queue_depth_samples", queue_depth_);

  // Session-side drop accounting, so truncated telemetry is visible from
  // the same scrape that would be misled by it.
  if (const obs::Session* session = obs::Session::current()) {
    const obs::Metrics session_metrics = session->metrics();
    obs::prometheus_counter(
        out, "aa_obs_trace_dropped_total",
        session_metrics.counter(obs::metric::kObsTraceDropped));
    obs::prometheus_counter(
        out, "aa_obs_histogram_dropped_total",
        session_metrics.counter(obs::metric::kObsHistogramDropped));
    obs::prometheus_counter(
        out, "aa_obs_certificates_dropped_total",
        session_metrics.counter(obs::metric::kObsCertificatesDropped));
    obs::prometheus_header(out, "aa_obs_trace_ring_dropped_total", "counter");
    for (const obs::TraceRingInfo& ring : session->trace_rings()) {
      const std::string labels =
          "ring=\"" + std::to_string(ring.tid) + "\"";
      obs::prometheus_sample(out, "aa_obs_trace_ring_dropped_total", labels,
                             ring.dropped);
    }
  }
  return out;
}

}  // namespace aa::svc
