#pragma once

// POSIX plumbing for the line-delimited protocol: an owning fd wrapper and
// a buffered line channel used on both sides of the Unix domain socket
// (the server's per-connection loop and aa_loadgen's client). Writes use
// MSG_NOSIGNAL so a vanished peer surfaces as an error return, not
// SIGPIPE.

#include <cstddef>
#include <optional>
#include <string>

namespace aa::svc {

/// Default per-line size limit for both sides of the protocol.
inline constexpr std::size_t kDefaultMaxLineBytes = 1u << 20;

/// Owning file descriptor (move-only RAII).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;
  /// ::shutdown(SHUT_RDWR): unblocks a reader on another thread without
  /// racing the descriptor's reuse the way close() would.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Buffered reader/writer of '\n'-terminated lines over a socket fd.
///
/// Not thread-safe: each LineChannel is owned by exactly one connection
/// loop (server.cpp) or one client worker (aa_loadgen). Cross-thread
/// reply writes go through the connection's annotated write mutex, not
/// through this class — see SocketServer::Connection in server.cpp.
class LineChannel {
 public:
  explicit LineChannel(int fd, std::size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Next line without its terminator. std::nullopt on EOF or read error.
  /// Sets too_large() and returns nullopt when a line exceeds the limit
  /// (the stream cannot be resynchronized after that).
  [[nodiscard]] std::optional<std::string> read_line();

  /// Writes `line` + '\n', looping over partial writes. False on error.
  [[nodiscard]] bool write_line(const std::string& line);

  [[nodiscard]] int fd() const noexcept { return fd_; }

  [[nodiscard]] bool too_large() const noexcept { return too_large_; }

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
  bool too_large_ = false;
};

/// Writes `line` + '\n' to `fd` (MSG_NOSIGNAL, partial writes retried).
/// False on error. Stateless — safe to call without a LineChannel when the
/// writer and reader live on different threads.
[[nodiscard]] bool send_line(int fd, const std::string& line);

/// Creates, binds, and listens on a Unix domain stream socket, replacing
/// any stale socket file at `path`. Throws std::runtime_error on failure.
[[nodiscard]] FdHandle listen_unix(const std::string& path, int backlog = 64);

/// Connects to the Unix domain socket at `path`; retries for up to
/// `retry_ms` milliseconds while the server comes up (0 = single attempt).
/// Throws std::runtime_error on failure.
[[nodiscard]] FdHandle connect_unix(const std::string& path,
                                    int retry_ms = 0);

}  // namespace aa::svc
