#pragma once

// Wire protocol of the allocation service (docs/SERVICE.md).
//
// Framing is line-delimited JSON: one request object per '\n'-terminated
// line in, one reply object per line out, over a Unix domain socket or
// stdio. Requests carry an "op" plus op-specific fields:
//
//   {"op": "add_thread", "thread": {"type": "power", ...}, "tag": "a1"}
//   {"op": "remove_thread", "id": 7}
//   {"op": "update_utility", "id": 7, "factor": 1.25}
//   {"op": "update_utility", "id": 7, "thread": {...}}
//   {"op": "solve", "mode": "auto"}          // mode: auto | full
//   {"op": "stats"}
//   {"op": "metrics"}                        // Prometheus text exposition
//   {"op": "shutdown"}
//   {"op": "tenant_create", "tenant": "web", "weight": 2.0, "quota": 128}
//   {"op": "tenant_update", "tenant": "web", "weight": 1.0}
//   {"op": "tenant_delete", "tenant": "web"}
//   {"op": "tenant_list"}
//
// The service is multi-tenant (docs/SERVICE.md "Multi-tenant sharding"):
// every state-carrying op (add_thread / remove_thread / update_utility /
// solve) may carry "tenant" naming the tenant it addresses; omitting it
// addresses the built-in `default` tenant, so single-tenant clients are
// unchanged. Tenant ids are 1..64 chars of [A-Za-z0-9_.-]; anything else
// is rejected with `bad_tenant` at parse time.
//
// Optional on every request: "tag" (echoed verbatim on the reply, for
// client-side correlation) and "deadline_ms" (relative per-request
// deadline; expired requests get a structured `timeout` error instead of
// being executed). Replies always carry "ok" plus either op-specific
// payload or {"error", "code"}; parse_request() reports malformed input by
// throwing ProtocolError with one of the stable `code` strings below, so
// the transport can answer with a structured error rather than crash or
// disconnect.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "utility/utility_function.hpp"

namespace aa::svc {

/// Stable machine-readable error codes (doc'd in docs/SERVICE.md).
namespace error_code {
inline constexpr std::string_view kParseError = "parse_error";
inline constexpr std::string_view kBadRequest = "bad_request";
inline constexpr std::string_view kUnknownOp = "unknown_op";
inline constexpr std::string_view kNotFound = "not_found";
inline constexpr std::string_view kTimeout = "timeout";
inline constexpr std::string_view kTooLarge = "too_large";
inline constexpr std::string_view kOverflow = "overflow";
inline constexpr std::string_view kShuttingDown = "shutting_down";
inline constexpr std::string_view kInternal = "internal";
inline constexpr std::string_view kBadTenant = "bad_tenant";
inline constexpr std::string_view kTenantNotFound = "tenant_not_found";
inline constexpr std::string_view kTenantExists = "tenant_exists";
inline constexpr std::string_view kQuotaExceeded = "quota_exceeded";
}  // namespace error_code

/// Request rejection with a stable error code; the transport turns these
/// into {"ok": false, "error": ..., "code": ...} replies.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string_view code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

enum class Op {
  kAddThread,
  kRemoveThread,
  kUpdateUtility,
  kSolve,
  kStats,
  kMetrics,
  kShutdown,
  kTenantCreate,
  kTenantUpdate,
  kTenantDelete,
  kTenantList,
};

/// Number of Op enumerators (for per-op count arrays).
inline constexpr std::size_t kNumOps = 11;

/// `op` as it appears on the wire.
[[nodiscard]] std::string_view op_name(Op op) noexcept;

/// One parsed request. `utility` is resolved against the service capacity
/// at parse time so malformed thread specs fail before they are queued.
struct Request {
  Op op = Op::kStats;
  std::optional<std::uint64_t> id;      ///< remove/update target.
  util::UtilityPtr utility;             ///< add_thread / update_utility.
  std::optional<double> factor;         ///< update_utility scaling form.
  std::optional<double> deadline_ms;    ///< Overrides the config default.
  bool full_solve = false;              ///< solve mode=full.
  std::string tag;                      ///< Echoed on the reply.
  /// Tenant addressed by state-carrying ops and named by the tenant_*
  /// admin verbs; empty means "the default tenant was not spelled out".
  std::string tenant;
  std::optional<double> weight;            ///< tenant_create / tenant_update.
  std::optional<double> quota;             ///< Capacity units; 0 = auto.
  std::optional<double> credits;           ///< tenant_create (Karma opening).
  std::optional<std::int64_t> max_threads; ///< Per-tenant thread quota.
};

/// True when `id` is a well-formed wire tenant id: 1..64 characters drawn
/// from [A-Za-z0-9_.-].
[[nodiscard]] bool valid_tenant_id(std::string_view id) noexcept;

/// Parses one request line. Utility specs are validated against `capacity`
/// (the io:: instance thread format). Throws ProtocolError on any problem:
/// kParseError for malformed JSON, kUnknownOp for an unrecognized "op",
/// kBadRequest for missing/ill-typed fields.
[[nodiscard]] Request parse_request(std::string_view line,
                                    util::Resource capacity);

/// {"ok": false, "error": message, "code": code} (+ op/tag when known).
/// `op` may be empty when the request never parsed far enough to know it.
[[nodiscard]] support::JsonValue make_error_reply(std::string_view code,
                                                  std::string_view message,
                                                  std::string_view op = {},
                                                  std::string_view tag = {});

/// {"ok": true, "op": op} (+ tag); payload fields are set by the caller.
[[nodiscard]] support::JsonValue make_ok_reply(Op op, std::string_view tag);

}  // namespace aa::svc
