#include "svc/protocol.hpp"

#include "io/instance_io.hpp"

namespace aa::svc {

namespace {

using support::JsonValue;

Op op_from_name(const std::string& name) {
  if (name == "add_thread") return Op::kAddThread;
  if (name == "remove_thread") return Op::kRemoveThread;
  if (name == "update_utility") return Op::kUpdateUtility;
  if (name == "solve") return Op::kSolve;
  if (name == "stats") return Op::kStats;
  if (name == "metrics") return Op::kMetrics;
  if (name == "shutdown") return Op::kShutdown;
  if (name == "tenant_create") return Op::kTenantCreate;
  if (name == "tenant_update") return Op::kTenantUpdate;
  if (name == "tenant_delete") return Op::kTenantDelete;
  if (name == "tenant_list") return Op::kTenantList;
  throw ProtocolError(error_code::kUnknownOp, "unknown op '" + name + "'");
}

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError(error_code::kBadRequest, message);
}

std::uint64_t parse_id(const JsonValue& node) {
  if (!node.is_number()) bad("'id' must be an integer");
  std::int64_t id = 0;
  try {
    id = node.as_int();
  } catch (const std::exception&) {
    bad("'id' must be an integer");
  }
  if (id < 0) bad("'id' must be nonnegative");
  return static_cast<std::uint64_t>(id);
}

util::UtilityPtr parse_utility(const JsonValue& node,
                               util::Resource capacity) {
  if (!node.is_object()) bad("'thread' must be an object");
  util::UtilityPtr utility;
  try {
    utility = io::utility_from_json(node, capacity);
  } catch (const std::exception& error) {
    bad(std::string("invalid thread spec: ") + error.what());
  }
  if (utility->capacity() < capacity) {
    bad("thread domain " + std::to_string(utility->capacity()) +
        " is smaller than the server capacity " + std::to_string(capacity));
  }
  return utility;
}

}  // namespace

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kAddThread: return "add_thread";
    case Op::kRemoveThread: return "remove_thread";
    case Op::kUpdateUtility: return "update_utility";
    case Op::kSolve: return "solve";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kShutdown: return "shutdown";
    case Op::kTenantCreate: return "tenant_create";
    case Op::kTenantUpdate: return "tenant_update";
    case Op::kTenantDelete: return "tenant_delete";
    case Op::kTenantList: return "tenant_list";
  }
  return "unknown";
}

bool valid_tenant_id(std::string_view id) noexcept {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Request parse_request(std::string_view line, util::Resource capacity) {
  JsonValue document;
  try {
    document = support::json_parse(line);
  } catch (const std::exception& error) {
    throw ProtocolError(error_code::kParseError, error.what());
  }
  if (!document.is_object()) bad("request must be a JSON object");

  Request request;
  const JsonValue* op_node = nullptr;
  const JsonValue* thread_node = nullptr;
  for (const auto& [key, value] : document.as_object()) {
    if (key == "op") {
      op_node = &value;
    } else if (key == "id") {
      request.id = parse_id(value);
    } else if (key == "thread") {
      thread_node = &value;
    } else if (key == "factor") {
      if (!value.is_number()) bad("'factor' must be a number");
      if (value.as_number() < 0.0) bad("'factor' must be nonnegative");
      request.factor = value.as_number();
    } else if (key == "deadline_ms") {
      if (!value.is_number()) bad("'deadline_ms' must be a number");
      if (value.as_number() <= 0.0) bad("'deadline_ms' must be positive");
      request.deadline_ms = value.as_number();
    } else if (key == "mode") {
      if (!value.is_string()) bad("'mode' must be a string");
      const std::string& mode = value.as_string();
      if (mode == "full") {
        request.full_solve = true;
      } else if (mode != "auto") {
        bad("'mode' must be 'auto' or 'full'");
      }
    } else if (key == "tag") {
      if (!value.is_string()) bad("'tag' must be a string");
      request.tag = value.as_string();
    } else if (key == "tenant") {
      if (!value.is_string() || !valid_tenant_id(value.as_string())) {
        throw ProtocolError(error_code::kBadTenant,
                            "'tenant' must be 1..64 chars of [A-Za-z0-9_.-]");
      }
      request.tenant = value.as_string();
    } else if (key == "weight") {
      if (!value.is_number()) bad("'weight' must be a number");
      if (value.as_number() <= 0.0) bad("'weight' must be positive");
      request.weight = value.as_number();
    } else if (key == "quota") {
      if (!value.is_number()) bad("'quota' must be a number");
      if (value.as_number() < 0.0) bad("'quota' must be nonnegative");
      request.quota = value.as_number();
    } else if (key == "credits") {
      if (!value.is_number()) bad("'credits' must be a number");
      if (value.as_number() < 0.0) bad("'credits' must be nonnegative");
      request.credits = value.as_number();
    } else if (key == "max_threads") {
      if (!value.is_number()) bad("'max_threads' must be an integer");
      std::int64_t limit = 0;
      try {
        limit = value.as_int();
      } catch (const std::exception&) {
        bad("'max_threads' must be an integer");
      }
      if (limit < 0) bad("'max_threads' must be nonnegative");
      request.max_threads = limit;
    } else {
      bad("unknown field '" + key + "'");
    }
  }

  if (op_node == nullptr) bad("missing 'op'");
  if (!op_node->is_string()) bad("'op' must be a string");
  request.op = op_from_name(op_node->as_string());

  const bool is_tenant_admin = request.op == Op::kTenantCreate ||
                               request.op == Op::kTenantUpdate ||
                               request.op == Op::kTenantDelete;
  if (!is_tenant_admin &&
      (request.weight.has_value() || request.quota.has_value() ||
       request.credits.has_value() || request.max_threads.has_value())) {
    bad(std::string(op_name(request.op)) +
        " takes no tenant admin fields (weight/quota/credits/max_threads)");
  }

  switch (request.op) {
    case Op::kAddThread:
      if (thread_node == nullptr) bad("add_thread requires 'thread'");
      if (request.id.has_value()) bad("add_thread ids are server-assigned");
      if (request.factor.has_value()) bad("add_thread takes no 'factor'");
      request.utility = parse_utility(*thread_node, capacity);
      break;
    case Op::kRemoveThread:
      if (!request.id.has_value()) bad("remove_thread requires 'id'");
      if (thread_node != nullptr || request.factor.has_value()) {
        bad("remove_thread takes only 'id' (and 'tenant')");
      }
      break;
    case Op::kUpdateUtility:
      if (!request.id.has_value()) bad("update_utility requires 'id'");
      if ((thread_node != nullptr) == request.factor.has_value()) {
        bad("update_utility requires exactly one of 'thread' or 'factor'");
      }
      if (thread_node != nullptr) {
        request.utility = parse_utility(*thread_node, capacity);
      }
      break;
    case Op::kSolve:
      if (thread_node != nullptr || request.id.has_value() ||
          request.factor.has_value()) {
        bad("solve takes only 'mode' (and 'tenant')");
      }
      break;
    case Op::kStats:
    case Op::kMetrics:
    case Op::kShutdown:
    case Op::kTenantList:
      if (thread_node != nullptr || request.id.has_value() ||
          request.factor.has_value() || request.full_solve ||
          !request.tenant.empty()) {
        bad(std::string(op_name(request.op)) + " takes no arguments");
      }
      break;
    case Op::kTenantCreate:
    case Op::kTenantUpdate:
    case Op::kTenantDelete:
      if (request.tenant.empty()) {
        bad(std::string(op_name(request.op)) + " requires 'tenant'");
      }
      if (thread_node != nullptr || request.id.has_value() ||
          request.factor.has_value() || request.full_solve) {
        bad(std::string(op_name(request.op)) +
            " takes only tenant admin fields");
      }
      if (request.op == Op::kTenantDelete &&
          (request.weight.has_value() || request.quota.has_value() ||
           request.credits.has_value() || request.max_threads.has_value())) {
        bad("tenant_delete takes only 'tenant'");
      }
      if (request.op == Op::kTenantUpdate && request.credits.has_value()) {
        bad("'credits' is set at tenant_create only");
      }
      if (request.op == Op::kTenantUpdate && !request.weight.has_value() &&
          !request.quota.has_value() && !request.max_threads.has_value()) {
        bad("tenant_update requires at least one of "
            "'weight'/'quota'/'max_threads'");
      }
      break;
  }
  return request;
}

JsonValue make_error_reply(std::string_view code, std::string_view message,
                           std::string_view op, std::string_view tag) {
  JsonValue reply;
  reply.set("ok", false);
  if (!op.empty()) reply.set("op", std::string(op));
  reply.set("error", std::string(message));
  reply.set("code", std::string(code));
  if (!tag.empty()) reply.set("tag", std::string(tag));
  return reply;
}

JsonValue make_ok_reply(Op op, std::string_view tag) {
  JsonValue reply;
  reply.set("ok", true);
  reply.set("op", std::string(op_name(op)));
  if (!tag.empty()) reply.set("tag", std::string(tag));
  return reply;
}

}  // namespace aa::svc
