#pragma once

// Transport-independent core of the allocation service.
//
// Connections (Unix socket, stdio, or tests) feed raw request lines into
// submit_line(); replies come back through a per-request callback. In
// between sits a bounded FIFO request queue drained by a worker pool
// (support/thread_pool):
//
//   - Workers take strict turns draining: one worker pops a *batch* of up
//     to `batch_max` requests (lingering `batch_linger_ms` after the first
//     so bursts coalesce), applies every delta in arrival order, and
//     answers all solve requests in the batch with ONE re-solve of the
//     final state (coalescing). Reply *rendering* happens outside the
//     turn, so JSON serialization overlaps the next batch's solve; a
//     sequencer then delivers batches in order, preserving global FIFO.
//   - Requests carry optional deadlines (request `deadline_ms` overriding
//     the config default); a request picked up past its deadline gets a
//     structured `timeout` error instead of being executed.
//   - Solves go through WarmStartSolver: cached / warm (placement pinned,
//     zero migrations) / full Algorithm 2, every reply carrying the
//     0.828-approximation certificate verdict.
//
// The service keeps its own counters and log2-bucketed latency histograms
// (obs/histogram.hpp) behind stats_mutex_ — surfaced as quantiles by the
// `stats` op and as a Prometheus text exposition by the `metrics` op
// (metrics_text) — and mirrors them into the installed aa::obs session
// (svc/* counters, svc/batch + svc/solve phase timers, queue-depth /
// batch-size / request-latency histogram samples, queue-wait spans and
// warm-start path instants on the trace rings), so `aa_serve --metrics`
// and `--trace-out` export them through the session paths.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "svc/instance_state.hpp"
#include "svc/protocol.hpp"
#include "svc/warm_start.hpp"

namespace aa::svc {

struct ServiceConfig {
  std::size_t num_servers = 2;
  util::Resource capacity = 64;
  /// Drain workers (each runs one turn-taking batch loop).
  std::size_t workers = 2;
  /// Requests coalesced into one drain turn.
  std::size_t batch_max = 64;
  /// After the first pop, wait this long for stragglers to join the batch.
  double batch_linger_ms = 0.0;
  /// Applied when a request has no deadline_ms of its own; <= 0 disables.
  double default_deadline_ms = 0.0;
  /// Enqueue beyond this depth is answered with an `overflow` error.
  std::size_t max_queue = 4096;
  WarmStartConfig warm;
};

class Service {
 public:
  using ReplyFn = std::function<void(const std::string&)>;

  explicit Service(ServiceConfig config);
  /// stop()s if still running.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns the drain workers. Requests submitted before start() queue up
  /// and are processed once workers run (tests use this for deterministic
  /// batching).
  void start();

  /// Stops accepting requests, drains the queue, and joins the workers.
  /// Safe to call repeatedly; never call from a worker callback.
  void stop();

  /// True once a shutdown request was processed (or stop() was called);
  /// transports use this to leave their accept/read loops.
  [[nodiscard]] bool shutdown_requested() const noexcept;

  /// Parses and enqueues one request line. Exactly one reply line (no
  /// trailing newline) is delivered through `reply`. Protocol errors are
  /// enqueued like any other request so replies keep request order; only
  /// queue overflow and post-shutdown submissions are answered inline
  /// (they cannot join the queue by definition). Thread-safe.
  void submit_line(const std::string& line, ReplyFn reply);

  /// Synchronous round trip (submit_line + wait); used by tests.
  [[nodiscard]] std::string request(const std::string& line);

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    ReplyFn reply;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< Clock::time_point::max() when none.
    /// Set when the line failed to parse: the request carries its error
    /// reply through the queue so delivery stays in request order.
    std::optional<support::JsonValue> error_reply;
  };

  /// Rendered-later reply: the JSON tree plus its destination.
  struct Outgoing {
    ReplyFn reply;
    support::JsonValue value;
  };

  void worker_loop();
  /// Pops the next batch; empty result means "stopping and drained".
  [[nodiscard]] std::vector<Pending> pop_batch();
  /// Applies one batch to the state and builds the reply trees.
  [[nodiscard]] std::vector<Outgoing> process_batch(
      std::vector<Pending> batch);
  void deliver_in_order(std::uint64_t seq, std::vector<Outgoing> outgoing);
  [[nodiscard]] support::JsonValue stats_json();
  /// Prometheus text-format exposition of the service counters, latency
  /// histograms (+ quantile summaries), certificate verdicts, uptime, and
  /// — when an obs session is installed — its drop counters. Served by the
  /// `metrics` op.
  [[nodiscard]] std::string metrics_text();
  [[nodiscard]] support::JsonValue solve_payload(
      const ServiceSolveResult& solved, double solve_ms) const;
  void record_latency(const Pending& pending, Clock::time_point now);

  ServiceConfig config_;

  // Request queue (queue_mutex_): transports enqueue, drain turns pop.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  // Drain turn (process_mutex_): one batch at a time, in pop order. Held
  // across pop + state mutation + solve; rendering happens outside.
  std::mutex process_mutex_;
  std::uint64_t next_batch_seq_ = 0;
  InstanceState state_;
  WarmStartSolver solver_;

  // Ordered delivery of rendered batches.
  std::mutex deliver_mutex_;
  std::condition_variable deliver_cv_;
  std::uint64_t delivered_seq_ = 0;

  // Service-side statistics (stats_mutex_), surfaced by the `stats` and
  // `metrics` ops. Distributions are log2-bucketed histograms: O(1) per
  // sample with no window to age out, at the cost of one-bucket (2x)
  // quantile resolution.
  mutable std::mutex stats_mutex_;
  std::int64_t requests_total_ = 0;
  std::int64_t op_counts_[kNumOps] = {};
  std::int64_t errors_total_ = 0;
  std::int64_t timeouts_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t solves_coalesced_ = 0;
  std::int64_t solves_by_path_[3] = {};  ///< Indexed by SolvePath.
  std::int64_t migrations_total_ = 0;
  std::int64_t certificates_pass_ = 0;
  std::int64_t certificates_fail_ = 0;
  std::size_t queue_peak_ = 0;
  obs::Histogram batch_size_;
  obs::Histogram queue_depth_;
  obs::Histogram request_latency_ms_;
  obs::Histogram solve_latency_ms_;
  const Clock::time_point started_ = Clock::now();

  std::atomic<bool> shutdown_requested_{false};
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace aa::svc
