#pragma once

// Transport-independent core of the allocation service.
//
// Connections (Unix socket, stdio, or tests) feed raw request lines into
// submit_line(); replies come back through a per-request callback. The
// service is multi-tenant and sharded: tenants (svc/tenant.hpp) are
// distributed over `shards` shards by a stable hash of the tenant id, and
// each shard owns a bounded FIFO request queue, its tenants' state, and a
// reply sequencer of its own:
//
//   - Every drain worker is pinned to exactly one shard (worker i drains
//     shard i mod shards), and a shard's state is only ever touched under
//     that shard's turn lock — so steady-state traffic for tenants on
//     different shards never contends on any lock (the acceptance
//     property behind the TSan soak in CI).
//   - Within a shard, workers take strict turns draining: one worker pops
//     a *batch* of up to `batch_max` requests (lingering `batch_linger_ms`
//     after the first so bursts coalesce), applies every delta in arrival
//     order, and answers all solve requests in the batch — per tenant —
//     with ONE re-solve of that tenant's final state (coalescing). Reply
//     *rendering* happens outside the turn, so JSON serialization
//     overlaps the next batch's solve; a per-shard sequencer delivers
//     batches in order, preserving FIFO per shard (and therefore per
//     tenant; requests for different shards may be answered out of
//     submission order).
//   - Tenant-less control requests (stats, metrics, shutdown, and the
//     tenant_* admin verbs) are routed to shard 0; the ones that must see
//     every shard briefly acquire the other shards' turn locks in
//     ascending order — only the shard-0 worker ever holds more than one
//     turn lock, so the ordering is deadlock-free. Tenant churn
//     (create/update/delete) re-divides the global capacity pool across
//     tenants through the configured FairnessPolicy (svc/fairness.hpp)
//     and publishes each tenant's slice as its InstanceState solve
//     capacity, feeding the existing warm-start cached/warm/full paths.
//   - Requests carry optional deadlines (request `deadline_ms` overriding
//     the config default); a request picked up past its deadline gets a
//     structured `timeout` error instead of being executed.
//   - Solves go through the tenant's WarmStartSolver: cached / warm
//     (placement pinned, zero migrations) / full Algorithm 2, every reply
//     carrying the 0.828-approximation certificate verdict for that
//     tenant's sliced instance.
//
// The service keeps its own counters and log2-bucketed latency histograms
// (obs/histogram.hpp) behind stats_mutex_ — surfaced as quantiles by the
// `stats` op and as a Prometheus text exposition by the `metrics` op
// (metrics_text, including per-tenant labeled families) — and mirrors
// them into the installed aa::obs session (svc/* counters, svc/batch +
// svc/solve phase timers, queue-depth / batch-size / request-latency
// histogram samples, queue-wait spans and warm-start path instants on the
// trace rings), so `aa_serve --metrics` and `--trace-out` export them
// through the session paths.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "svc/fairness.hpp"
#include "svc/instance_state.hpp"
#include "svc/protocol.hpp"
#include "svc/tenant.hpp"
#include "svc/warm_start.hpp"

namespace aa::svc {

struct ServiceConfig {
  std::size_t num_servers = 2;
  util::Resource capacity = 64;
  /// Drain workers; each is pinned to shard (index mod shards). Raised to
  /// `shards` when smaller so every shard has at least one worker.
  std::size_t workers = 2;
  /// Requests coalesced into one drain turn.
  std::size_t batch_max = 64;
  /// After the first pop, wait this long for stragglers to join the batch.
  double batch_linger_ms = 0.0;
  /// Applied when a request has no deadline_ms of its own; <= 0 disables.
  double default_deadline_ms = 0.0;
  /// Enqueue beyond this depth (per shard) is answered with `overflow`.
  std::size_t max_queue = 4096;
  WarmStartConfig warm;
  /// Tenant shards; 1 keeps the single-lock behavior of old.
  std::size_t shards = 1;
  /// How the global pool (num_servers * capacity units) is divided across
  /// tenants on churn (svc/fairness.hpp).
  FairnessPolicyKind fairness = FairnessPolicyKind::kStaticQuota;
  /// Karma opening balance for tenants created without "credits".
  double karma_opening_credits = 0.0;
};

class Service {
 public:
  using ReplyFn = std::function<void(const std::string&)>;

  explicit Service(ServiceConfig config);
  /// stop()s if still running.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns the drain workers. Requests submitted before start() queue up
  /// and are processed once workers run (tests use this for deterministic
  /// batching).
  void start();

  /// Stops accepting requests, drains the queues, and joins the workers.
  /// Safe to call repeatedly; never call from a worker callback.
  void stop();

  /// True once a shutdown request was processed (or stop() was called);
  /// transports use this to leave their accept/read loops.
  [[nodiscard]] bool shutdown_requested() const noexcept;

  /// Parses and enqueues one request line. Exactly one reply line (no
  /// trailing newline) is delivered through `reply`. Protocol errors are
  /// enqueued like any other request so replies keep request order; only
  /// queue overflow and post-shutdown submissions are answered inline
  /// (they cannot join the queue by definition). Thread-safe.
  void submit_line(const std::string& line, ReplyFn reply);

  /// Synchronous round trip (submit_line + wait); used by tests.
  [[nodiscard]] std::string request(const std::string& line);

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    ReplyFn reply;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< Clock::time_point::max() when none.
    /// Set when the line failed to parse: the request carries its error
    /// reply through the queue so delivery stays in request order.
    std::optional<support::JsonValue> error_reply;
  };

  /// Rendered-later reply: the JSON tree plus its destination.
  struct Outgoing {
    ReplyFn reply;
    support::JsonValue value;
  };

  /// One tenant shard: its own queue, turn lock, tenants, and sequencer.
  struct Shard {
    std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<Pending> queue;
    bool stopping = false;

    // Drain turn: one batch at a time per shard, in pop order. Held
    // across pop + tenant mutation + solve; rendering happens outside.
    // Guards `tenants` — cross-shard readers (stats/metrics/tenant_list)
    // and tenant churn take every shard's turn lock in ascending order.
    std::mutex turn_mutex;
    std::uint64_t next_batch_seq = 0;
    // Ordered by tenant id: iteration feeds the fairness division and the
    // exposition, both of which must be deterministic.
    std::map<std::string, std::unique_ptr<Tenant>, std::less<>> tenants;

    // Ordered delivery of rendered batches.
    std::mutex deliver_mutex;
    std::condition_variable deliver_cv;
    std::uint64_t delivered_seq = 0;
  };

  /// True for ops that address one tenant's state (routed by tenant id);
  /// everything else is a control op routed to shard 0.
  [[nodiscard]] static bool tenant_scoped(Op op) noexcept;
  /// The tenant a request addresses (kDefaultTenant when unspecified).
  [[nodiscard]] static std::string_view tenant_name(
      const Request& request) noexcept;

  void worker_loop(std::size_t shard_index);
  /// Non-blocking pop of the next batch (plus bounded linger). Caller
  /// holds the shard's turn lock and has already observed work; an empty
  /// result means a same-shard peer raced us to the queue.
  [[nodiscard]] std::vector<Pending> pop_batch(Shard& shard);
  /// Applies one batch to the shard's tenants and builds the reply trees.
  [[nodiscard]] std::vector<Outgoing> process_batch(
      std::size_t shard_index, std::vector<Pending> batch);
  void deliver_in_order(Shard& shard, std::uint64_t seq,
                        std::vector<Outgoing> outgoing);

  /// Locks every shard's turn but shard 0's, ascending. Only called while
  /// the caller (the shard-0 worker) holds shard 0's turn lock, so the
  /// global lock order is strictly ascending and deadlock-free.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>>
  lock_other_shards();

  [[nodiscard]] Tenant* find_tenant(std::string_view name);

  /// Re-divides the global pool across all tenants through the fairness
  /// policy and publishes the slices as per-tenant solve capacities.
  /// Caller must hold every shard's turn lock.
  void redivide_pool_locked();

  /// Handles one tenant_* admin request. Caller holds every turn lock.
  [[nodiscard]] support::JsonValue tenant_admin(const Request& request);
  [[nodiscard]] support::JsonValue tenant_list_json();

  [[nodiscard]] support::JsonValue stats_json();
  /// Prometheus text-format exposition of the service counters, latency
  /// histograms (+ quantile summaries), certificate verdicts, per-tenant
  /// labeled families, uptime, and — when an obs session is installed —
  /// its drop counters. Served by the `metrics` op. Caller must hold
  /// every shard's turn lock.
  [[nodiscard]] std::string metrics_text();
  [[nodiscard]] support::JsonValue solve_payload(
      const ServiceSolveResult& solved, double solve_ms) const;
  void record_latency(const Pending& pending, Clock::time_point now);
  [[nodiscard]] std::size_t total_queue_depth();
  [[nodiscard]] double pool_units() const noexcept;

  ServiceConfig config_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Cross-tenant division policy; its credit books are only touched
  /// under all turn locks (tenant churn), never on the request fast path.
  std::unique_ptr<FairnessPolicy> policy_;

  // Service-side statistics (stats_mutex_), surfaced by the `stats` and
  // `metrics` ops. Distributions are log2-bucketed histograms: O(1) per
  // sample with no window to age out, at the cost of one-bucket (2x)
  // quantile resolution. Brief leaf lock, taken after any turn/queue lock.
  mutable std::mutex stats_mutex_;
  std::int64_t requests_total_ = 0;
  std::int64_t op_counts_[kNumOps] = {};
  std::int64_t errors_total_ = 0;
  std::int64_t timeouts_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t solves_coalesced_ = 0;
  std::int64_t solves_by_path_[3] = {};  ///< Indexed by SolvePath.
  std::int64_t migrations_total_ = 0;
  std::int64_t certificates_pass_ = 0;
  std::int64_t certificates_fail_ = 0;
  std::int64_t tenant_creates_ = 0;
  std::int64_t tenant_updates_ = 0;
  std::int64_t tenant_deletes_ = 0;
  std::int64_t pool_redivides_ = 0;
  std::size_t queue_peak_ = 0;
  obs::Histogram batch_size_;
  obs::Histogram queue_depth_;
  obs::Histogram request_latency_ms_;
  obs::Histogram solve_latency_ms_;
  const Clock::time_point started_ = Clock::now();

  std::atomic<bool> shutdown_requested_{false};
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace aa::svc
