#pragma once

// Transport-independent core of the allocation service.
//
// Connections (Unix socket, stdio, or tests) feed raw request lines into
// submit_line(); replies come back through a per-request callback. The
// service is multi-tenant and sharded: tenants (svc/tenant.hpp) are
// distributed over `shards` shards by a stable hash of the tenant id, and
// each shard owns a bounded FIFO request queue, its tenants' state, and a
// reply sequencer of its own:
//
//   - Every drain worker is pinned to exactly one shard (worker i drains
//     shard i mod shards), and a shard's state is only ever touched under
//     that shard's turn lock — so steady-state traffic for tenants on
//     different shards never contends on any lock (the acceptance
//     property behind the TSan soak in CI).
//   - Within a shard, workers take strict turns draining: one worker pops
//     a *batch* of up to `batch_max` requests (lingering `batch_linger_ms`
//     after the first so bursts coalesce), applies every delta in arrival
//     order, and answers all solve requests in the batch — per tenant —
//     with ONE re-solve of that tenant's final state (coalescing). Reply
//     *rendering* happens outside the turn, so JSON serialization
//     overlaps the next batch's solve; a per-shard sequencer delivers
//     batches in order, preserving FIFO per shard (and therefore per
//     tenant; requests for different shards may be answered out of
//     submission order).
//   - Tenant-less control requests (stats, metrics, shutdown, and the
//     tenant_* admin verbs) are routed to shard 0; the ones that must see
//     every shard briefly acquire the other shards' turn locks in
//     ascending order — only the shard-0 worker ever holds more than one
//     turn lock, so the ordering is deadlock-free. Tenant churn
//     (create/update/delete) re-divides the global capacity pool across
//     tenants through the configured FairnessPolicy (svc/fairness.hpp)
//     and publishes each tenant's slice as its InstanceState solve
//     capacity, feeding the existing warm-start cached/warm/full paths.
//   - Requests carry optional deadlines (request `deadline_ms` overriding
//     the config default); a request picked up past its deadline gets a
//     structured `timeout` error instead of being executed.
//   - Solves go through the tenant's WarmStartSolver: cached / warm
//     (placement pinned, zero migrations) / full Algorithm 2, every reply
//     carrying the 0.828-approximation certificate verdict for that
//     tenant's sliced instance.
//
// The service keeps its own counters and log2-bucketed latency histograms
// (obs/histogram.hpp) behind stats_mutex_ — surfaced as quantiles by the
// `stats` op and as a Prometheus text exposition by the `metrics` op
// (metrics_text, including per-tenant labeled families) — and mirrors
// them into the installed aa::obs session (svc/* counters, svc/batch +
// svc/solve phase timers, queue-depth / batch-size / request-latency
// histogram samples, queue-wait spans and warm-start path instants on the
// trace rings), so `aa_serve --metrics` and `--trace-out` export them
// through the session paths.
//
// Lock hierarchy (machine-checked through the support/sync.hpp
// annotations under Clang -Werror=thread-safety; the table in
// docs/ARCHITECTURE.md mirrors this comment):
//
//   shard.turn_mutex       shard 0's first, then the others ascending
//     -> shard.queue_mutex (AllShardsTurnLock; only the shard-0 worker
//       -> stats_mutex_     ever holds more than one turn lock)
//   shard.deliver_mutex    independent: held alone while replies drain
//
// queue_mutex is also taken on its own by submit_line (producers never
// touch a turn lock), and stats_mutex_ is a brief leaf taken from any
// path. The inexpressible "every shard's turn lock" set is named by the
// all_turns_ phantom capability: AllShardsTurnLock really locks the
// other shards' turns and acquires the phantom, and the cross-shard
// *_locked()/control helpers declare AA_REQUIRES(all_turns_).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "support/json.hpp"
#include "support/sync.hpp"
#include "support/thread_pool.hpp"
#include "svc/fairness.hpp"
#include "svc/instance_state.hpp"
#include "svc/protocol.hpp"
#include "svc/tenant.hpp"
#include "svc/warm_start.hpp"

namespace aa::svc {

struct ServiceConfig {
  std::size_t num_servers = 2;
  util::Resource capacity = 64;
  /// Drain workers; each is pinned to shard (index mod shards). Raised to
  /// `shards` when smaller so every shard has at least one worker.
  std::size_t workers = 2;
  /// Requests coalesced into one drain turn.
  std::size_t batch_max = 64;
  /// After the first pop, wait this long for stragglers to join the batch.
  double batch_linger_ms = 0.0;
  /// Applied when a request has no deadline_ms of its own; <= 0 disables.
  double default_deadline_ms = 0.0;
  /// Enqueue beyond this depth (per shard) is answered with `overflow`.
  std::size_t max_queue = 4096;
  WarmStartConfig warm;
  /// Tenant shards; 1 keeps the single-lock behavior of old.
  std::size_t shards = 1;
  /// How the global pool (num_servers * capacity units) is divided across
  /// tenants on churn (svc/fairness.hpp).
  FairnessPolicyKind fairness = FairnessPolicyKind::kStaticQuota;
  /// Karma opening balance for tenants created without "credits".
  double karma_opening_credits = 0.0;
};

class Service {
 public:
  using ReplyFn = std::function<void(const std::string&)>;

  explicit Service(ServiceConfig config);
  /// stop()s if still running.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns the drain workers. Requests submitted before start() queue up
  /// and are processed once workers run (tests use this for deterministic
  /// batching).
  void start();

  /// Stops accepting requests, drains the queues, and joins the workers.
  /// Safe to call repeatedly; never call from a worker callback.
  void stop();

  /// True once a shutdown request was processed (or stop() was called);
  /// transports use this to leave their accept/read loops.
  [[nodiscard]] bool shutdown_requested() const noexcept;

  /// Parses and enqueues one request line. Exactly one reply line (no
  /// trailing newline) is delivered through `reply`. Protocol errors are
  /// enqueued like any other request so replies keep request order; only
  /// queue overflow and post-shutdown submissions are answered inline
  /// (they cannot join the queue by definition). Thread-safe.
  void submit_line(const std::string& line, ReplyFn reply);

  /// Synchronous round trip (submit_line + wait); used by tests.
  [[nodiscard]] std::string request(const std::string& line);

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    ReplyFn reply;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< Clock::time_point::max() when none.
    /// Set when the line failed to parse: the request carries its error
    /// reply through the queue so delivery stays in request order.
    std::optional<support::JsonValue> error_reply;
  };

  /// Rendered-later reply: the JSON tree plus its destination.
  struct Outgoing {
    ReplyFn reply;
    support::JsonValue value;
  };

  /// One tenant shard: its own queue, turn lock, tenants, and sequencer.
  struct Shard {
    // Drain turn: one batch at a time per shard, in pop order. Held
    // across pop + tenant mutation + solve; rendering happens outside.
    // Guards `tenants` — cross-shard readers (stats/metrics/tenant_list)
    // and tenant churn take every shard's turn lock in ascending order
    // (AllShardsTurnLock + the all_turns_ phantom).
    // Lock order: root — taken before queue_mutex and stats_mutex_.
    support::Mutex turn_mutex;
    std::uint64_t next_batch_seq AA_GUARDED_BY(turn_mutex) = 0;
    // Ordered by tenant id: iteration feeds the fairness division and the
    // exposition, both of which must be deterministic. The map is guarded
    // by turn_mutex; the Tenant objects behind the unique_ptrs are too
    // (the analysis cannot see through the map — svc/tenant.hpp).
    std::map<std::string, std::unique_ptr<Tenant>, std::less<>> tenants
        AA_GUARDED_BY(turn_mutex);

    // Lock order: after this shard's turn_mutex (pop_batch pops under a
    // drain turn; submit_line takes it alone), before stats_mutex_.
    support::Mutex queue_mutex AA_ACQUIRED_AFTER(turn_mutex);
    support::CondVar queue_cv;
    std::deque<Pending> queue AA_GUARDED_BY(queue_mutex);
    bool stopping AA_GUARDED_BY(queue_mutex) = false;

    // Ordered delivery of rendered batches.
    // Lock order: independent — held alone (replies drain outside every
    // other lock).
    support::Mutex deliver_mutex;
    support::CondVar deliver_cv;
    std::uint64_t delivered_seq AA_GUARDED_BY(deliver_mutex) = 0;
  };

  /// True for ops that address one tenant's state (routed by tenant id);
  /// everything else is a control op routed to shard 0.
  [[nodiscard]] static bool tenant_scoped(Op op) noexcept;
  /// The tenant a request addresses (kDefaultTenant when unspecified).
  [[nodiscard]] static std::string_view tenant_name(
      const Request& request) noexcept;

  void worker_loop(std::size_t shard_index);
  /// Non-blocking pop of the next batch (plus bounded linger). Caller
  /// holds the shard's turn lock and has already observed work; an empty
  /// result means a same-shard peer raced us to the queue.
  [[nodiscard]] std::vector<Pending> pop_batch(Shard& shard)
      AA_REQUIRES(shard.turn_mutex);
  /// Applies one batch to the shard's tenants and builds the reply trees.
  [[nodiscard]] std::vector<Outgoing> process_batch(
      Shard& shard, std::vector<Pending> batch)
      AA_REQUIRES(shard.turn_mutex);
  void deliver_in_order(Shard& shard, std::uint64_t seq,
                        std::vector<Outgoing> outgoing)
      AA_EXCLUDES(shard.deliver_mutex);

  /// Scoped "every shard's turn lock" acquisition: locks every shard's
  /// turn but shard 0's, ascending, and acquires the all_turns_ phantom
  /// that names the full set. Only constructed while the caller (the
  /// shard-0 worker) holds shard 0's turn lock, so the global lock order
  /// is strictly ascending and deadlock-free.
  class AA_SCOPED_CAPABILITY AllShardsTurnLock {
   public:
    explicit AllShardsTurnLock(Service& service)
        AA_ACQUIRE(service.all_turns_);
    ~AllShardsTurnLock() AA_RELEASE();

    AllShardsTurnLock(const AllShardsTurnLock&) = delete;
    AllShardsTurnLock& operator=(const AllShardsTurnLock&) = delete;

   private:
    Service& service_;
  };

  /// Re-introduces a dynamically-acquired turn lock to the analysis:
  /// inside a cross-shard loop running under all_turns_, each shard's
  /// turn really is held (by AllShardsTurnLock, or by the shard-0 worker
  /// for its own shard), but only as an element of the phantom set.
  void assert_turn_held([[maybe_unused]] const Shard& shard) const
      AA_ASSERT_CAPABILITY(shard.turn_mutex) {}

  [[nodiscard]] Tenant* find_tenant(std::string_view name)
      AA_REQUIRES(all_turns_);

  /// Re-divides the global pool across all tenants through the fairness
  /// policy and publishes the slices as per-tenant solve capacities.
  void redivide_pool_locked() AA_REQUIRES(all_turns_);

  /// Handles one tenant_* admin request.
  [[nodiscard]] support::JsonValue tenant_admin(const Request& request)
      AA_REQUIRES(all_turns_);
  [[nodiscard]] support::JsonValue tenant_list_json()
      AA_REQUIRES(all_turns_);

  [[nodiscard]] support::JsonValue stats_json() AA_REQUIRES(all_turns_);
  /// Prometheus text-format exposition of the service counters, latency
  /// histograms (+ quantile summaries), certificate verdicts, per-tenant
  /// labeled families, uptime, and — when an obs session is installed —
  /// its drop counters. Served by the `metrics` op.
  [[nodiscard]] std::string metrics_text() AA_REQUIRES(all_turns_);
  [[nodiscard]] support::JsonValue solve_payload(
      const ServiceSolveResult& solved, double solve_ms) const;
  void record_latency(const Pending& pending, Clock::time_point now)
      AA_EXCLUDES(stats_mutex_);
  [[nodiscard]] std::size_t total_queue_depth();
  [[nodiscard]] double pool_units() const noexcept;

  ServiceConfig config_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Names the "every shard's turn lock" set, which the analysis cannot
  /// express over a dynamic shard vector. Really acquired/released by
  /// AllShardsTurnLock (and briefly by the single-threaded constructor).
  // Lock order: stands for the ascending turn-lock sweep — after shard
  // 0's turn_mutex, before stats_mutex_.
  support::PhantomMutex all_turns_;
  /// Cross-tenant division policy; its credit books are only touched
  /// under all turn locks (tenant churn), never on the request fast path.
  std::unique_ptr<FairnessPolicy> policy_ AA_PT_GUARDED_BY(all_turns_);

  // Service-side statistics (stats_mutex_), surfaced by the `stats` and
  // `metrics` ops. Distributions are log2-bucketed histograms: O(1) per
  // sample with no window to age out, at the cost of one-bucket (2x)
  // quantile resolution.
  // Lock order: brief leaf, taken after any turn/queue lock (the
  // AA_ACQUIRED_AFTER edge names the phantom because the per-shard locks
  // live behind a dynamic vector); nothing is acquired under it.
  mutable support::Mutex stats_mutex_ AA_ACQUIRED_AFTER(all_turns_);
  std::int64_t requests_total_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t op_counts_[kNumOps] AA_GUARDED_BY(stats_mutex_) = {};
  std::int64_t errors_total_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t timeouts_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t batches_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t solves_coalesced_ AA_GUARDED_BY(stats_mutex_) = 0;
  /// Indexed by SolvePath.
  std::int64_t solves_by_path_[3] AA_GUARDED_BY(stats_mutex_) = {};
  std::int64_t migrations_total_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t certificates_pass_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t certificates_fail_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t tenant_creates_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t tenant_updates_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t tenant_deletes_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::int64_t pool_redivides_ AA_GUARDED_BY(stats_mutex_) = 0;
  std::size_t queue_peak_ AA_GUARDED_BY(stats_mutex_) = 0;
  obs::Histogram batch_size_ AA_GUARDED_BY(stats_mutex_);
  obs::Histogram queue_depth_ AA_GUARDED_BY(stats_mutex_);
  obs::Histogram request_latency_ms_ AA_GUARDED_BY(stats_mutex_);
  obs::Histogram solve_latency_ms_ AA_GUARDED_BY(stats_mutex_);
  const Clock::time_point started_ = Clock::now();

  std::atomic<bool> shutdown_requested_{false};
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace aa::svc
