#include "svc/tenant.hpp"

#include <vector>

#include "alloc/super_optimal.hpp"

namespace aa::svc {

std::size_t shard_of(std::string_view tenant, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  // FNV-1a, 64-bit: stable across platforms and runs (never std::hash,
  // whose seeding is implementation-defined).
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : tenant) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash % shards);
}

double tenant_demand_units(const InstanceState& state) {
  if (state.num_threads() == 0) return 0.0;
  std::vector<util::UtilityPtr> threads;
  threads.reserve(state.num_threads());
  for (const auto& [id, utility] : state.threads()) {
    threads.push_back(utility);
  }
  const alloc::SuperOptimalResult bound = alloc::super_optimal_routed(
      threads, state.num_servers(), state.capacity());
  double units = 0.0;
  for (const util::Resource c : bound.c_hat) {
    units += static_cast<double>(c);
  }
  return units;
}

}  // namespace aa::svc
