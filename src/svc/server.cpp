#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <istream>
#include <ostream>
#include <utility>

#include "support/sync.hpp"
#include "svc/protocol.hpp"

namespace aa::svc {

namespace {

std::string too_large_message(std::size_t max_line_bytes) {
  return "request line exceeds " + std::to_string(max_line_bytes) + " bytes";
}

}  // namespace

/// Shared between the reader thread and reply callbacks: the callbacks may
/// outlive the connection (a worker can still hold one while the batch
/// drains), so the fd lives here and is only closed once the last
/// shared_ptr drops.
struct SocketServer::Connection {
  FdHandle fd;
  // Lock order: leaf — serializes reply writes; nothing is acquired
  // while held.
  support::Mutex write_mutex;
  bool open AA_GUARDED_BY(write_mutex) = true;

  bool send(const std::string& line) AA_EXCLUDES(write_mutex) {
    const support::MutexLock lock(write_mutex);
    if (!open) return false;
    return send_line(fd.get(), line);
  }

  void close() noexcept AA_EXCLUDES(write_mutex) {
    // Shutdown before taking the mutex: it unblocks a send() stuck on a
    // full socket (which holds the mutex) instead of deadlocking behind it.
    fd.shutdown_both();
    const support::MutexLock lock(write_mutex);
    open = false;
  }
};

SocketServer::SocketServer(Service& service, std::string socket_path,
                           std::size_t max_line_bytes)
    : service_(service),
      socket_path_(std::move(socket_path)),
      max_line_bytes_(max_line_bytes),
      listener_(listen_unix(socket_path_)) {}

SocketServer::~SocketServer() {
  shutdown_connections();
  listener_.reset();
  ::unlink(socket_path_.c_str());
}

void SocketServer::run() {
  pollfd poll_set{};
  poll_set.fd = listener_.get();
  poll_set.events = POLLIN;
  while (!service_.shutdown_requested()) {
    const int ready = ::poll(&poll_set, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    FdHandle client(::accept(listener_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = std::move(client);
    const support::MutexLock lock(connections_mutex_);
    threads_.emplace_back(&SocketServer::connection_loop, this, connection);
    connections_.push_back(std::move(connection));
  }
  shutdown_connections();
}

void SocketServer::connection_loop(std::shared_ptr<Connection> connection) {
  LineChannel channel(connection->fd.get(), max_line_bytes_);
  for (;;) {
    const std::optional<std::string> line = channel.read_line();
    if (!line.has_value()) {
      if (channel.too_large()) {
        (void)connection->send(
            make_error_reply(error_code::kTooLarge,
                             too_large_message(max_line_bytes_))
                .dump());
      }
      break;  // EOF (possibly mid-line) or error: clean disconnect.
    }
    service_.submit_line(*line, [connection](const std::string& reply) {
      (void)connection->send(reply);
    });
  }
  connection->close();
}

void SocketServer::shutdown_connections() {
  std::vector<std::thread> threads;
  {
    const support::MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) connection->close();
    threads.swap(threads_);
    connections_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

namespace {

/// Reply sink for stdio mode; shared so replies still in flight during
/// Service::stop() keep a live mutex.
struct StdioWriter {
  explicit StdioWriter(std::ostream& stream) : out(stream) {}

  void write(const std::string& line) AA_EXCLUDES(mutex) {
    const support::MutexLock lock(mutex);
    out << line << '\n' << std::flush;
  }

  // Lock order: leaf — serializes reply writes to the shared stream.
  support::Mutex mutex;
  std::ostream& out;
};

}  // namespace

void serve_stdio(Service& service, std::istream& in, std::ostream& out,
                 std::size_t max_line_bytes) {
  auto writer = std::make_shared<StdioWriter>(out);
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (line.size() > max_line_bytes) {
      writer->write(make_error_reply(error_code::kTooLarge,
                                     too_large_message(max_line_bytes))
                        .dump());
      break;
    }
    service.submit_line(line, [writer](const std::string& reply) {
      writer->write(reply);
    });
  }
}

}  // namespace aa::svc
