#include "svc/fairness.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace aa::svc {

namespace {

double total_weight(const std::vector<TenantDemand>& tenants) {
  double total = 0.0;
  for (const TenantDemand& tenant : tenants) total += tenant.weight;
  return total;
}

/// Effective quotas: explicit where configured, weight-proportional where
/// auto (0), then scaled down proportionally so they never oversubscribe
/// the pool.
std::vector<double> effective_quotas(
    double pool, const std::vector<TenantDemand>& tenants) {
  const double weights = total_weight(tenants);
  std::vector<double> quotas;
  quotas.reserve(tenants.size());
  double requested = 0.0;
  for (const TenantDemand& tenant : tenants) {
    const double quota = tenant.quota > 0.0
                             ? tenant.quota
                             : pool * tenant.weight / weights;
    quotas.push_back(quota);
    requested += quota;
  }
  if (requested > pool && requested > 0.0) {
    const double scale = pool / requested;
    for (double& quota : quotas) quota *= scale;
  }
  return quotas;
}

class StaticQuotaPolicy final : public FairnessPolicy {
 public:
  [[nodiscard]] FairnessPolicyKind kind() const noexcept override {
    return FairnessPolicyKind::kStaticQuota;
  }

  [[nodiscard]] std::vector<double> divide(
      double pool, const std::vector<TenantDemand>& tenants) override {
    if (tenants.empty()) return {};
    return effective_quotas(pool, tenants);
  }
};

class WeightedMaxMinPolicy final : public FairnessPolicy {
 public:
  [[nodiscard]] FairnessPolicyKind kind() const noexcept override {
    return FairnessPolicyKind::kWeightedMaxMin;
  }

  [[nodiscard]] std::vector<double> divide(
      double pool, const std::vector<TenantDemand>& tenants) override {
    if (tenants.empty()) return {};
    double total_demand = 0.0;
    for (const TenantDemand& tenant : tenants) {
      total_demand += tenant.demand;
    }
    std::vector<double> slices;
    slices.reserve(tenants.size());
    if (total_demand <= pool) {
      // Every demand is met; spread the leftover by weight so tenants
      // keep headroom to grow between division rounds.
      const double leftover = pool - total_demand;
      const double weights = total_weight(tenants);
      for (const TenantDemand& tenant : tenants) {
        slices.push_back(tenant.demand +
                         leftover * tenant.weight / weights);
      }
      return slices;
    }
    const double level = water_fill_level(pool, tenants);
    for (const TenantDemand& tenant : tenants) {
      slices.push_back(std::min(tenant.demand, tenant.weight * level));
    }
    return slices;
  }
};

class KarmaPolicy final : public FairnessPolicy {
 public:
  [[nodiscard]] FairnessPolicyKind kind() const noexcept override {
    return FairnessPolicyKind::kKarma;
  }

  [[nodiscard]] std::vector<double> divide(
      double pool, const std::vector<TenantDemand>& tenants) override {
    if (tenants.empty()) return {};
    const std::vector<double> quotas = effective_quotas(pool, tenants);

    // Donors offer the share they cannot use; borrowers want the excess.
    double supply = 0.0;
    std::vector<double> surplus(tenants.size(), 0.0);
    std::vector<std::size_t> borrowers;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const double spare = quotas[i] - tenants[i].demand;
      if (spare > 0.0) {
        surplus[i] = spare;
        supply += spare;
      } else if (spare < 0.0) {
        borrowers.push_back(i);
      }
    }

    // Richest borrowers first (Karma's credit priority), ties by tenant
    // id for determinism; each takes min(need, credits, remaining supply).
    std::sort(borrowers.begin(), borrowers.end(),
              [&](std::size_t a, std::size_t b) {
                const double ca = balance(tenants[a].id);
                const double cb = balance(tenants[b].id);
                if (ca != cb) return ca > cb;
                return tenants[a].id < tenants[b].id;
              });
    std::vector<double> borrowed(tenants.size(), 0.0);
    double lent = 0.0;
    for (const std::size_t i : borrowers) {
      const double need = tenants[i].demand - quotas[i];
      const double grant =
          std::min({need, balance(tenants[i].id), supply - lent});
      if (grant <= 0.0) continue;
      borrowed[i] = grant;
      lent += grant;
    }

    // Settle: every borrowed unit costs one credit, paid to the donors
    // pro rata by offered surplus. Payments equal earnings exactly, so
    // divide() never changes the credit total.
    std::vector<double> slices(quotas);
    if (lent > 0.0) {
      for (std::size_t i = 0; i < tenants.size(); ++i) {
        if (borrowed[i] > 0.0) {
          slices[i] += borrowed[i];
          credits_[tenants[i].id] -= borrowed[i];
        } else if (surplus[i] > 0.0) {
          const double share = lent * surplus[i] / supply;
          slices[i] -= share;
          credits_[tenants[i].id] += share;
        }
      }
    }
    return slices;
  }

  void on_tenant_created(const std::string& id,
                         double opening_credits) override {
    credits_[id] = opening_credits;
  }

  void on_tenant_deleted(const std::string& id) override {
    credits_.erase(id);
  }

  [[nodiscard]] double credits(const std::string& id) const override {
    const auto it = credits_.find(id);
    return it == credits_.end() ? 0.0 : it->second;
  }

 private:
  [[nodiscard]] double balance(const std::string& id) const {
    return credits(id);
  }

  // Ordered map: credit iteration feeds allocation decisions and must be
  // deterministic across runs.
  std::map<std::string, double> credits_;
};

}  // namespace

const char* fairness_policy_name(FairnessPolicyKind kind) noexcept {
  switch (kind) {
    case FairnessPolicyKind::kStaticQuota: return "static_quota";
    case FairnessPolicyKind::kWeightedMaxMin: return "weighted_max_min";
    case FairnessPolicyKind::kKarma: return "karma";
  }
  return "unknown";
}

std::optional<FairnessPolicyKind> fairness_policy_from_name(
    std::string_view name) noexcept {
  if (name == "static_quota") return FairnessPolicyKind::kStaticQuota;
  if (name == "weighted_max_min") return FairnessPolicyKind::kWeightedMaxMin;
  if (name == "karma") return FairnessPolicyKind::kKarma;
  return std::nullopt;
}

void FairnessPolicy::on_tenant_created(const std::string& /*id*/,
                                       double /*opening_credits*/) {}

void FairnessPolicy::on_tenant_deleted(const std::string& /*id*/) {}

double FairnessPolicy::credits(const std::string& /*id*/) const {
  return 0.0;
}

std::unique_ptr<FairnessPolicy> FairnessPolicy::create(
    FairnessPolicyKind kind) {
  switch (kind) {
    case FairnessPolicyKind::kStaticQuota:
      return std::make_unique<StaticQuotaPolicy>();
    case FairnessPolicyKind::kWeightedMaxMin:
      return std::make_unique<WeightedMaxMinPolicy>();
    case FairnessPolicyKind::kKarma:
      return std::make_unique<KarmaPolicy>();
  }
  throw std::invalid_argument("unknown fairness policy kind");
}

double water_fill_level(double pool,
                        const std::vector<TenantDemand>& tenants) {
  // Saturate tenants in order of demand/weight; once the uniform level
  // lambda = remaining / remaining_weight stops exceeding the next
  // tenant's saturation ratio, everyone left shares at that level.
  std::vector<std::size_t> order(tenants.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = tenants[a].demand / tenants[a].weight;
    const double rb = tenants[b].demand / tenants[b].weight;
    if (ra != rb) return ra < rb;
    return tenants[a].id < tenants[b].id;
  });
  double remaining = pool;
  double remaining_weight = total_weight(tenants);
  double level = 0.0;
  for (const std::size_t i : order) {
    if (remaining_weight <= 0.0) break;
    level = remaining / remaining_weight;
    const double ratio = tenants[i].demand / tenants[i].weight;
    if (level <= ratio) return level;
    remaining -= tenants[i].demand;
    remaining_weight -= tenants[i].weight;
  }
  return level;
}

}  // namespace aa::svc
