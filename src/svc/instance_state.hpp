#pragma once

// Mutable AA instance behind the allocation service.
//
// The batch solvers take an immutable core::Instance; a long-running
// service instead owns a set of threads with stable ids that grows,
// shrinks, and drifts between solves (paper Section VIII). InstanceState
// is that set: delta operations (add / remove / update / scale) mutate it
// and bump a version counter, and to_instance() snapshots it into the
// solver's Instance form together with the id at each position, so solve
// results can be reported per thread id and placements carried across
// versions by id rather than by position.
//
// Not thread-safe by itself, and deliberately free of support/sync.hpp
// vocabulary: every InstanceState lives inside a Tenant owned by exactly
// one Service shard, and the shard's turn_mutex (the root of the lock
// hierarchy in service.hpp) serializes all access — one request batch at
// a time. The thread-safety analysis guards the map that reaches this
// object (Shard::tenants is AA_GUARDED_BY(turn_mutex)); it cannot see
// through the map into these members, which is why the ownership rule is
// stated here instead.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "aa/problem.hpp"
#include "utility/utility_function.hpp"

namespace aa::svc {

using ThreadId = std::uint64_t;

class InstanceState {
 public:
  /// Throws std::invalid_argument on zero servers or capacity < 1.
  InstanceState(std::size_t num_servers, util::Resource capacity);

  [[nodiscard]] std::size_t num_servers() const noexcept {
    return num_servers_;
  }
  [[nodiscard]] util::Resource capacity() const noexcept { return capacity_; }

  /// Per-server capacity snapshots actually solve with. Defaults to
  /// capacity(); the multi-tenant fairness layer lowers it to the tenant's
  /// pool slice (svc/fairness.hpp). Clamped to [1, capacity()]; a change
  /// bumps the version so warm-start caches of the old slice are invalid.
  [[nodiscard]] util::Resource solve_capacity() const noexcept {
    return solve_capacity_;
  }
  void set_solve_capacity(util::Resource solve_capacity);
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return threads_.size();
  }

  /// Bumped by every successful delta; solvers compare versions to count
  /// the deltas applied since their last snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Adds a thread (utility domain must cover the capacity; throws
  /// std::invalid_argument otherwise) and returns its fresh id. Ids are
  /// never reused.
  ThreadId add_thread(util::UtilityPtr utility);

  /// Removes a thread; false when the id is unknown.
  bool remove_thread(ThreadId id);

  /// Replaces a thread's utility; false when the id is unknown. Throws
  /// std::invalid_argument when the new domain is too small.
  bool update_utility(ThreadId id, util::UtilityPtr utility);

  /// Rescales a thread's utility by `factor` >= 0 (drift in the Section
  /// VIII sense). Wraps in util::ScaledUtility, collapsing nested wrappers
  /// so long drift streams stay O(1) deep. False when the id is unknown.
  bool scale_utility(ThreadId id, double factor);

  /// The utility behind an id, or nullptr.
  [[nodiscard]] const util::UtilityPtr* find(ThreadId id) const;

  /// Threads in insertion order as (id, utility) pairs.
  [[nodiscard]] const std::vector<std::pair<ThreadId, util::UtilityPtr>>&
  threads() const noexcept {
    return threads_;
  }

  /// Snapshots the current set into solver form. When `ids` is non-null it
  /// receives the thread id at each instance position.
  [[nodiscard]] core::Instance to_instance(
      std::vector<ThreadId>* ids = nullptr) const;

 private:
  [[nodiscard]] std::optional<std::size_t> index_of(ThreadId id) const;
  void require_domain(const util::UtilityPtr& utility) const;

  std::size_t num_servers_;
  util::Resource capacity_;
  util::Resource solve_capacity_;
  std::vector<std::pair<ThreadId, util::UtilityPtr>> threads_;
  ThreadId next_id_ = 1;
  std::uint64_t version_ = 0;
};

}  // namespace aa::svc
