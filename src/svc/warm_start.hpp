#pragma once

// Warm-start incremental re-solve for the allocation service.
//
// The batch pipeline (Algorithm 2 + per-server refinement) recomputes the
// placement from scratch on every call; in a long-running service that
// migrates threads needlessly whenever utilities drift a little (paper
// Section VIII; cf. OnlinePolicy::kSticky in aa/online.hpp). The
// WarmStartSolver keeps the previous solution keyed by thread id and picks
// one of three paths per solve:
//
//   kCached — the state version is unchanged since the last solve: the
//             previous result (and its certificate) is returned as-is.
//   kWarm   — few deltas: recompute the super-optimal allocation and the
//             Equation-1 linearization (they certify the new utilities),
//             but pin every surviving thread to its previous server, give
//             it min(c_hat_i, remaining) in nonincreasing-peak order, place
//             only new threads on the least-loaded servers, and re-optimize
//             allocations per server. Zero migrations by construction.
//   kFull   — a fresh Algorithm-2 placement. Taken when deltas since the
//             last solve exceed the configured threshold, when there is no
//             previous solution, on mode=full requests, when the warm
//             candidate's approximation certificate fails, or when the
//             fresh candidate beats the warm one by more than the kSticky
//             hysteresis (aa::core::sticky_should_migrate).
//
// Every path's result carries a full aa::obs certificate computed against
// the *current* instance — the super-optimal bound is always recomputed
// after any delta, so the 0.828 guarantee in replies is never claimed from
// stale data. The warm path has no a-priori ratio theorem; it is accepted
// only if its certificate chain verifies, with kFull as the fallback, so
// warm-start utility is never below alpha * F_hat.

#include <cstddef>
#include <map>
#include <vector>

#include "aa/problem.hpp"
#include "aa/solve_result.hpp"
#include "obs/certificate.hpp"
#include "svc/instance_state.hpp"

namespace aa::svc {

struct WarmStartConfig {
  /// Relative fresh-solution improvement required to abandon the warm
  /// placement (the kSticky rule from aa/online.hpp).
  double hysteresis = 0.05;
  /// Full re-solve when deltas since the last solve exceed
  /// max(resolve_delta_min, resolve_delta_fraction * num_threads).
  double resolve_delta_fraction = 0.25;
  std::size_t resolve_delta_min = 8;
};

enum class SolvePath { kCached, kWarm, kFull };

[[nodiscard]] const char* solve_path_name(SolvePath path) noexcept;

struct ServiceSolveResult {
  core::SolveResult result;
  std::vector<ThreadId> ids;  ///< Thread id at each assignment position.
  SolvePath path = SolvePath::kFull;
  /// Surviving threads whose server changed vs. the previous solve.
  std::size_t migrations = 0;
  obs::Certificate certificate;
};

/// Chooses among the cached / warm / full solve paths and carries
/// placements across instance versions by thread id.
///
/// Not thread-safe by itself: like InstanceState, a WarmStartSolver is a
/// Tenant member reached only through Shard::tenants, which is
/// AA_GUARDED_BY the owning shard's turn_mutex (service.hpp). The turn
/// lock serializes every solve() and reset(); no support/sync.hpp
/// annotations appear here because the analysis cannot see through the
/// tenant map to these members.
class WarmStartSolver {
 public:
  explicit WarmStartSolver(WarmStartConfig config = {});

  /// Solves the current state. `force_full` skips the cached and warm
  /// paths (protocol mode=full).
  [[nodiscard]] ServiceSolveResult solve(const InstanceState& state,
                                         bool force_full = false);

  /// Drops all warm state; the next solve takes the full path.
  void reset();

 private:
  [[nodiscard]] bool deltas_exceed_threshold(std::uint64_t deltas,
                                             std::size_t num_threads) const;
  [[nodiscard]] std::size_t count_id_migrations(
      const std::vector<ThreadId>& ids,
      const core::Assignment& assignment) const;
  void remember(const ServiceSolveResult& solved, std::uint64_t version);

  WarmStartConfig config_;
  bool have_previous_ = false;
  std::uint64_t solved_version_ = 0;
  // Ordered map: iteration order must never depend on hash seeding in
  // code that feeds placement decisions (aa_lint bans unordered
  // containers here).
  std::map<ThreadId, std::size_t> previous_server_;
  ServiceSolveResult previous_;  ///< Cached for version-unchanged solves.
};

}  // namespace aa::svc
