#pragma once

// Cross-tenant fairness policies for the multi-tenant allocation service.
//
// Each tenant solves its own AA instance (per-tenant InstanceState +
// WarmStartSolver, see svc/tenant.hpp); the fairness layer sits above
// those solves and decides how the *global* capacity pool
// (num_servers * capacity resource units) is divided into per-tenant
// slices. A tenant's slice becomes its InstanceState solve capacity
// (slice / num_servers per server, floored), so the whole solver zoo —
// warm-start paths, certificates, the super-optimal strategy seam — runs
// unchanged inside the slice and the conservation invariant
// sum(slices) <= pool holds by construction.
//
// Three policies (docs/SERVICE.md "Cross-tenant fairness"):
//
//   static_quota     — every tenant gets its configured quota (or its
//                      weight-proportional share when the quota is 0 =
//                      auto), scaled down proportionally when the quotas
//                      oversubscribe the pool. No demand adaptivity: the
//                      single-tenant service is the degenerate case
//                      (one tenant, quota = pool).
//   weighted_max_min — classic water-filling (PAPERS.md: Restricted
//                      Max-Min Fair Allocation): find the level lambda
//                      with sum_t min(demand_t, weight_t * lambda) = pool
//                      and give each tenant min(demand_t, weight_t *
//                      lambda); when total demand is below the pool every
//                      demand is met and the leftover is spread by
//                      weight so tenants keep headroom to grow. Demands
//                      are read off each tenant's full-capacity
//                      super-optimal value (svc/tenant.hpp).
//   karma            — credit scheme in the spirit of the Karma allocator
//                      (NSDI'23; ROADMAP.md related-repo notes): tenants
//                      own a weight-proportional fair share; a tenant
//                      demanding less *donates* its surplus, a tenant
//                      demanding more *borrows* from the donated supply,
//                      richest-credits-first, paying one credit per
//                      borrowed unit to the donors (split pro rata by
//                      donated surplus). Credits only move between
//                      tenants — divide() conserves their total exactly —
//                      so the books stay balanced under tenant churn:
//                      tenant_create mints the opening balance,
//                      tenant_delete retires whatever the tenant held.
//
// Policies are deterministic: ties are broken by tenant id, never by
// iteration order of a hash map.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aa::svc {

enum class FairnessPolicyKind { kStaticQuota, kWeightedMaxMin, kKarma };

/// Wire/flag spelling: "static_quota" | "weighted_max_min" | "karma".
[[nodiscard]] const char* fairness_policy_name(
    FairnessPolicyKind kind) noexcept;
[[nodiscard]] std::optional<FairnessPolicyKind> fairness_policy_from_name(
    std::string_view name) noexcept;

/// One tenant's inputs to a division round.
struct TenantDemand {
  std::string id;
  double weight = 1.0;  ///< > 0; relative share of the pool.
  double quota = 0.0;   ///< Units; 0 = auto (weight-proportional share).
  double demand = 0.0;  ///< Units the tenant can productively use now.
};

class FairnessPolicy {
 public:
  virtual ~FairnessPolicy() = default;

  [[nodiscard]] virtual FairnessPolicyKind kind() const noexcept = 0;

  /// Divides `pool` units among `tenants`; returns one slice per tenant in
  /// the same order, with sum(slices) <= pool (up to rounding) for any
  /// input. Karma additionally moves credits between tenants here.
  [[nodiscard]] virtual std::vector<double> divide(
      double pool, const std::vector<TenantDemand>& tenants) = 0;

  /// Churn notifications. Only Karma keeps per-tenant state (credits);
  /// the defaults ignore them.
  virtual void on_tenant_created(const std::string& id,
                                 double opening_credits);
  virtual void on_tenant_deleted(const std::string& id);

  /// Current credit balance (0 for credit-less policies).
  [[nodiscard]] virtual double credits(const std::string& id) const;

  [[nodiscard]] static std::unique_ptr<FairnessPolicy> create(
      FairnessPolicyKind kind);
};

/// The water-filling level lambda with
/// sum_t min(demand_t, weight_t * lambda) = pool, for pool <= total
/// demand (exposed for the pinned tests in tests/svc_fairness_test.cpp).
[[nodiscard]] double water_fill_level(
    double pool, const std::vector<TenantDemand>& tenants);

}  // namespace aa::svc
