#pragma once

// Per-tenant sharded state for the multi-tenant allocation service.
//
// The service shards tenants by id (stable FNV-1a hash mod shard count):
// each shard owns its tenants' mutable state behind the shard's own
// processing lock (turn_mutex, the root of the lock hierarchy declared
// in service.hpp with support/sync.hpp annotations), and every drain
// worker is pinned to exactly one shard, so steady-state traffic for
// tenants on different shards never contends on a lock. A Tenant
// bundles everything a single-tenant
// service used to own once: its InstanceState (thread set + version), its
// WarmStartSolver (cached/warm/full paths and certificates warm-start per
// tenant), its quota knobs, the pool slice the fairness layer last granted
// it, and its per-tenant counters for the stats/metrics exposition.

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/instance_state.hpp"
#include "svc/warm_start.hpp"

namespace aa::svc {

/// The tenant addressed by requests that spell no "tenant" field. Exists
/// from service start and cannot be deleted, so single-tenant clients keep
/// working unchanged.
inline constexpr std::string_view kDefaultTenant = "default";

/// Stable shard router (FNV-1a over the id, mod `shards`). Hash-based so
/// tenant placement never depends on creation order.
[[nodiscard]] std::size_t shard_of(std::string_view tenant,
                                   std::size_t shards) noexcept;

/// Admin-settable knobs (tenant_create / tenant_update).
struct TenantQuota {
  double weight = 1.0;          ///< > 0; share of the pool.
  double quota_units = 0.0;     ///< Capacity units; 0 = auto (weight share).
  std::int64_t max_threads = 0; ///< add_thread cap; 0 = unlimited.
};

struct Tenant {
  Tenant(std::string tenant_name, TenantQuota tenant_quota,
         std::size_t num_servers, util::Resource capacity,
         const WarmStartConfig& warm)
      : name(std::move(tenant_name)),
        quota(tenant_quota),
        state(num_servers, capacity),
        solver(warm) {}

  std::string name;
  TenantQuota quota;
  InstanceState state;
  WarmStartSolver solver;

  /// Units of the global pool last granted by the fairness layer; the
  /// state's solve capacity is floor(slice_units / num_servers),
  /// floored at 1 so an empty slice still solves.
  double slice_units = 0.0;
  /// Full-capacity super-optimal value at the last division round.
  double demand_units = 0.0;

  // Per-tenant stats. Like every Tenant member, guarded by the owning
  // shard's turn lock: Shard::tenants is AA_GUARDED_BY(turn_mutex) in
  // service.hpp, and the analysis stops at the map boundary, so the
  // fields themselves carry no annotations.
  std::int64_t requests = 0;
  std::int64_t errors = 0;
  std::int64_t solves_by_path[3] = {};  ///< Indexed by SolvePath.
};

/// The demand curve a tenant presents to the fairness layer: the total
/// super-optimal allocation sum(c_hat_i) of its current thread set at the
/// *full* per-server capacity — what the tenant could productively use if
/// it owned the whole pool (ISSUE: "demand read off its super-optimal
/// value"). 0 for an empty tenant.
[[nodiscard]] double tenant_demand_units(const InstanceState& state);

}  // namespace aa::svc
