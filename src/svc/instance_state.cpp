#include "svc/instance_state.hpp"

#include <memory>
#include <stdexcept>
#include <string>

namespace aa::svc {

InstanceState::InstanceState(std::size_t num_servers, util::Resource capacity)
    : num_servers_(num_servers),
      capacity_(capacity),
      solve_capacity_(capacity) {
  if (num_servers == 0) {
    throw std::invalid_argument("InstanceState: need at least one server");
  }
  if (capacity < 1) {
    throw std::invalid_argument("InstanceState: capacity must be >= 1");
  }
}

void InstanceState::set_solve_capacity(util::Resource solve_capacity) {
  if (solve_capacity < 1) solve_capacity = 1;
  if (solve_capacity > capacity_) solve_capacity = capacity_;
  if (solve_capacity == solve_capacity_) return;
  solve_capacity_ = solve_capacity;
  ++version_;
}

std::optional<std::size_t> InstanceState::index_of(ThreadId id) const {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].first == id) return i;
  }
  return std::nullopt;
}

void InstanceState::require_domain(const util::UtilityPtr& utility) const {
  if (utility == nullptr) {
    throw std::invalid_argument("InstanceState: null utility");
  }
  if (utility->capacity() < capacity_) {
    throw std::invalid_argument(
        "InstanceState: utility domain " +
        std::to_string(utility->capacity()) +
        " does not cover the server capacity " + std::to_string(capacity_));
  }
}

ThreadId InstanceState::add_thread(util::UtilityPtr utility) {
  require_domain(utility);
  const ThreadId id = next_id_++;
  threads_.emplace_back(id, std::move(utility));
  ++version_;
  return id;
}

bool InstanceState::remove_thread(ThreadId id) {
  const auto index = index_of(id);
  if (!index.has_value()) return false;
  threads_.erase(threads_.begin() +
                 static_cast<std::ptrdiff_t>(*index));
  ++version_;
  return true;
}

bool InstanceState::update_utility(ThreadId id, util::UtilityPtr utility) {
  require_domain(utility);
  const auto index = index_of(id);
  if (!index.has_value()) return false;
  threads_[*index].second = std::move(utility);
  ++version_;
  return true;
}

bool InstanceState::scale_utility(ThreadId id, double factor) {
  if (factor < 0.0) {
    throw std::invalid_argument("InstanceState: factor must be >= 0");
  }
  const auto index = index_of(id);
  if (!index.has_value()) return false;
  util::UtilityPtr base = threads_[*index].second;
  double combined = factor;
  if (const auto* scaled =
          dynamic_cast<const util::ScaledUtility*>(base.get())) {
    combined *= scaled->factor();
    base = scaled->base();
  }
  threads_[*index].second =
      std::make_shared<util::ScaledUtility>(std::move(base), combined);
  ++version_;
  return true;
}

const util::UtilityPtr* InstanceState::find(ThreadId id) const {
  const auto index = index_of(id);
  return index.has_value() ? &threads_[*index].second : nullptr;
}

core::Instance InstanceState::to_instance(std::vector<ThreadId>* ids) const {
  core::Instance instance;
  instance.num_servers = num_servers_;
  instance.capacity = solve_capacity_;
  instance.threads.reserve(threads_.size());
  if (ids != nullptr) {
    ids->clear();
    ids->reserve(threads_.size());
  }
  for (const auto& [id, utility] : threads_) {
    instance.threads.push_back(utility);
    if (ids != nullptr) ids->push_back(id);
  }
  return instance;
}

}  // namespace aa::svc
