#include "svc/channel.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace aa::svc {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(address.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FdHandle::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::optional<std::string> LineChannel::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (newline > max_line_bytes_) {
        too_large_ = true;
        return std::nullopt;
      }
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (buffer_.size() > max_line_bytes_) {
      too_large_ = true;
      return std::nullopt;
    }
    if (eof_) {
      // Trailing bytes without a newline: surface them once, then EOF.
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool LineChannel::write_line(const std::string& line) {
  return send_line(fd_, line);
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t wrote = ::send(fd, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

FdHandle listen_unix(const std::string& path, int backlog) {
  const sockaddr_un address = make_address(path);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    throw_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
  return fd;
}

FdHandle connect_unix(const std::string& path, int retry_ms) {
  const sockaddr_un address = make_address(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  for (;;) {
    FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) == 0) {
      return fd;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw_errno("connect " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace aa::svc
