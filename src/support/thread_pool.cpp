#include "support/thread_pool.hpp"

#include <algorithm>

namespace aa::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, pool.worker_count() * 4);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Join every chunk before rethrowing, so a throwing chunk cannot leave
  // later chunks running against the caller's (unwound) stack frame.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace aa::support
