#pragma once

// Streaming statistics used by the experiment harness to aggregate
// Monte-Carlo trials.

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace aa::support {

/// Welford's online mean/variance accumulator with min/max tracking.
/// Numerically stable for long trial streams; mergeable across worker
/// threads (Chan's parallel update).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator into this one (parallel reduction step).
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept {
    return count_ < 2 ? 0.0
                      : stddev() / std::sqrt(static_cast<double>(count_));
  }

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical quantile with linear interpolation between order statistics
/// (the "type 7" estimator used by R and NumPy). `q` in [0, 1]; throws
/// std::invalid_argument on empty input or out-of-range q. Copies and
/// sorts — intended for end-of-run reporting, not hot loops.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Several quantiles of one sample set with a single sort (quantile() copies
/// and sorts per call). Returns one estimate per entry of `qs`, in order;
/// same estimator and error conditions as quantile(). This is what latency
/// summaries (p50/p90/p99 in one pass) should use.
[[nodiscard]] std::vector<double> quantiles(std::vector<double> samples,
                                            std::span<const double> qs);

/// Approximate floating-point comparison with absolute + relative slack.
[[nodiscard]] constexpr bool almost_equal(double a, double b,
                                          double abs_tol = 1e-9,
                                          double rel_tol = 1e-9) noexcept {
  const double diff = a > b ? a - b : b - a;
  const double mag = std::max(a > 0 ? a : -a, b > 0 ? b : -b);
  return diff <= abs_tol || diff <= rel_tol * mag;
}

}  // namespace aa::support
