#include "support/prng.hpp"

#include <cmath>

namespace aa::support {

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling over the top of the range to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = gen_();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential() noexcept {
  // -log(1 - U) with U in [0,1) keeps the argument strictly positive.
  return -std::log1p(-uniform01());
}

}  // namespace aa::support
