#pragma once

// Fenwick (binary indexed) tree over int64 counts. Used by the cache
// simulator's Mattson stack-distance engine to count distinct cache lines
// touched between consecutive accesses to the same line in O(log N).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace aa::support {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return tree_.size() - 1; }

  /// Adds `delta` at 0-based position `pos`.
  void add(std::size_t pos, std::int64_t delta) {
    if (pos >= size()) throw std::out_of_range("fenwick: position");
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of positions [0, pos] (0-based, inclusive).
  [[nodiscard]] std::int64_t prefix_sum(std::size_t pos) const {
    if (pos >= size()) throw std::out_of_range("fenwick: position");
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Sum of positions [lo, hi] (inclusive); 0 when lo > hi.
  [[nodiscard]] std::int64_t range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    const std::int64_t upper = prefix_sum(hi);
    return lo == 0 ? upper : upper - prefix_sum(lo - 1);
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace aa::support
