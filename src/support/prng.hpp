#pragma once

// Deterministic pseudo-random number generation for reproducible experiments.
//
// The experiment harness re-runs the paper's Monte-Carlo trials across many
// worker threads; every trial derives its own Rng from (base_seed, trial_id)
// so results are bit-identical regardless of thread count or scheduling.

#include <array>
#include <cstdint>
#include <limits>

namespace aa::support {

/// SplitMix64 stream; used to expand a single 64-bit seed into full state.
/// Passes BigCrush when used directly; here it seeds Xoshiro256StarStar.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a SplitMix64 stream, per the authors'
  /// recommendation (avoids the all-zero state for any seed).
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Convenience wrapper bundling a generator with the floating-point and
/// integer draws the library needs. All draws are deterministic functions of
/// the seed, independent of platform libm (no std::normal_distribution, whose
/// algorithm is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derives an independent child stream; used for per-trial seeding.
  /// Mixing through SplitMix64 decorrelates (seed, index) pairs.
  [[nodiscard]] static Rng child(std::uint64_t base_seed,
                                 std::uint64_t index) noexcept {
    // Hash the base seed first so that (s, i+1) and (s+1, i) cannot land on
    // the same stream, then mix the index through a second finalizer pass.
    SplitMix64 base_mix(base_seed);
    SplitMix64 combined(base_mix.next() + index);
    return Rng(combined.next());
  }

  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform in [0, 1). 53-bit resolution.
  double uniform01() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style bound).
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with rate 1.
  double exponential() noexcept;

 private:
  Xoshiro256StarStar gen_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace aa::support
