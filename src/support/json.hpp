#pragma once

// Minimal JSON value, parser and serializer (RFC 8259 subset).
//
// Written from scratch for the instance/assignment file formats (io/):
// supports null, bool, finite numbers, strings with \uXXXX escapes (BMP
// only), arrays and objects. Object member order is preserved. Parsing
// errors throw JsonError with line/column context.

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace aa::support {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t line, std::size_t column)
      : std::runtime_error(message + " at line " + std::to_string(line) +
                           ", column " + std::to_string(column)),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Members in document/insertion order.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::size_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< Must be integral.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object lookup; throws if not an object or the key is missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Object lookup; returns nullptr when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Builder helper for objects.
  void set(std::string key, JsonValue value);

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parses a complete JSON document (rejects trailing garbage).
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace aa::support
