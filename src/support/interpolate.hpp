#pragma once

// Monotone cubic interpolation (PCHIP, Fritsch-Carlson 1980) and isotonic
// regression (pool-adjacent-violators).
//
// The paper builds each random utility function by passing Matlab's PCHIP
// through three generated points; this is our from-scratch equivalent. PAV is
// used downstream to repair tiny concavity violations of the interpolant on
// the integer resource grid (see utility/generated.cpp).

#include <cstddef>
#include <span>
#include <vector>

namespace aa::support {

/// Piecewise cubic Hermite interpolant with Fritsch-Carlson slopes.
///
/// Guarantees: passes through every knot; monotone on every interval where
/// the data are monotone; C^1 overall. (It does not guarantee concavity even
/// for concave data, which is why callers that need concavity apply a PAV
/// repair to sampled marginals.)
class PchipInterpolant {
 public:
  /// Builds the interpolant. Requires xs strictly increasing and
  /// xs.size() == ys.size() >= 2; throws std::invalid_argument otherwise.
  PchipInterpolant(std::span<const double> xs, std::span<const double> ys);

  /// Evaluates at x, clamping to the knot range (constant extrapolation of
  /// the end values, which matches how utility functions are used on [0, C]).
  [[nodiscard]] double operator()(double x) const noexcept;

  /// First derivative at x (one-sided at knots, clamped range).
  [[nodiscard]] double derivative(double x) const noexcept;

  [[nodiscard]] std::span<const double> knots_x() const noexcept { return xs_; }
  [[nodiscard]] std::span<const double> knots_y() const noexcept { return ys_; }

 private:
  [[nodiscard]] std::size_t interval_of(double x) const noexcept;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slopes_;  // Hermite endpoint derivatives at each knot.
};

/// Weighted isotonic regression with the pool-adjacent-violators algorithm.
/// Returns the nonincreasing sequence minimizing the (unweighted) L2 distance
/// to `values`. Used to project marginal-gain sequences onto the concave cone.
[[nodiscard]] std::vector<double> pav_nonincreasing(
    std::span<const double> values);

/// Nondecreasing counterpart of pav_nonincreasing.
[[nodiscard]] std::vector<double> pav_nondecreasing(
    std::span<const double> values);

}  // namespace aa::support
