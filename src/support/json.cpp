#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace aa::support {

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("json: expected ") + expected);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  if (d != std::floor(d) || std::abs(d) > 9.007199254740992e15) {
    type_error("integer");
  }
  return static_cast<std::int64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) type_error("object");
  for (const auto& [name, value] : std::get<Object>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (is_null()) value_ = Object{};
  if (!is_object()) type_error("object");
  auto& object = std::get<Object>(value_);
  for (auto& [name, existing] : object) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through.
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    throw std::runtime_error("json: cannot serialize non-finite number");
  }
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  struct Dumper {
    int indent;
    std::string& out;

    void newline(int depth) const {
      if (indent <= 0) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent * depth), ' ');
    }

    void run(const JsonValue& value, int depth) const {
      if (value.is_null()) {
        out += "null";
      } else if (value.is_bool()) {
        out += value.as_bool() ? "true" : "false";
      } else if (value.is_number()) {
        dump_number(value.as_number(), out);
      } else if (value.is_string()) {
        dump_string(value.as_string(), out);
      } else if (value.is_array()) {
        const auto& array = value.as_array();
        if (array.empty()) {
          out += "[]";
          return;
        }
        out += '[';
        for (std::size_t i = 0; i < array.size(); ++i) {
          if (i != 0) out += ',';
          newline(depth + 1);
          run(array[i], depth + 1);
        }
        newline(depth);
        out += ']';
      } else {
        const auto& object = value.as_object();
        if (object.empty()) {
          out += "{}";
          return;
        }
        out += '{';
        bool first = true;
        for (const auto& [key, member] : object) {
          if (!first) out += ',';
          first = false;
          newline(depth + 1);
          dump_string(key, out);
          out += ':';
          if (indent > 0) out += ' ';
          run(member, depth + 1);
        }
        newline(depth);
        out += '}';
      }
    }
  };
  Dumper{indent, out}.run(*this, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError(message, line, column);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char ch = peek();
    ++pos_;
    return ch;
  }

  void expect(char ch) {
    if (advance() != ch) {
      --pos_;
      fail(std::string("expected '") + ch + "'");
    }
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_literal("true"); return JsonValue(true);
      case 'f': expect_literal("false"); return JsonValue(false);
      case 'n': expect_literal("null"); return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char ch = advance();
      if (ch == '}') break;
      if (ch != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(object));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char ch = advance();
      if (ch == ']') break;
      if (ch != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char ch = advance();
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      const char escape = advance();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = advance();
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate pairs are not supported");
          }
          // Encode BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zeros are not allowed");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      fail("number out of range");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace aa::support
