#pragma once

// Random value distributions used by the paper's utility-function generator
// (Section VII) and by the heuristics' random allocations.
//
// The paper draws two values v, w from a distribution H conditioned on
// w <= v; DrawOrderedPair implements that by sorting an i.i.d. pair, which is
// exactly conditioning for continuous H and the natural analogue for the
// discrete one.

#include <utility>
#include <vector>

#include "support/prng.hpp"

namespace aa::support {

/// One of the four H distributions from Section VII.
enum class DistributionKind {
  kUniform,    ///< Uniform on [0, 1).
  kNormal,     ///< Normal(mean, sd) truncated to x >= 0 by resampling.
  kPowerLaw,   ///< Pareto: density ~ x^-alpha on [x_min, inf), alpha > 1.
  kDiscrete,   ///< Two-point: value `low` w.p. gamma, `high = theta*low` else.
};

/// Parameter bundle covering all four families; unused fields are ignored.
struct DistributionParams {
  DistributionKind kind = DistributionKind::kUniform;
  // kNormal
  double mean = 1.0;
  double stddev = 1.0;
  // kPowerLaw
  double alpha = 2.0;
  double x_min = 1.0;
  // kDiscrete
  double gamma = 0.85;  ///< Probability of the low value.
  double theta = 5.0;   ///< Ratio high / low.
  double low = 1.0;
};

/// Draws a single nonnegative value from the configured distribution.
[[nodiscard]] double draw(const DistributionParams& params, Rng& rng);

/// Draws the paper's (v, w) pair: two i.i.d. values, returned with
/// first >= second (i.e. v >= w).
[[nodiscard]] std::pair<double, double> draw_ordered_pair(
    const DistributionParams& params, Rng& rng);

/// Uniform sample from the scaled simplex: k nonnegative values summing to
/// `total`, distributed as the spacings of k-1 i.i.d. uniform order
/// statistics on [0, total]. Used by the UR/RR heuristics' random
/// allocations. Returns an empty vector for k == 0.
[[nodiscard]] std::vector<double> simplex_spacings(std::size_t k, double total,
                                                   Rng& rng);

}  // namespace aa::support
