#pragma once

// Annotated concurrency vocabulary: thin wrappers over the standard
// primitives that carry Clang thread-safety capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), so lock
// contracts that used to live in prose ("caller must hold every turn
// lock", "brief leaf lock") are checked at compile time under
// -Werror=thread-safety (the AA_THREAD_SAFETY CMake toggle, default ON
// for Clang). On non-Clang compilers every macro below expands to
// nothing and the wrappers behave exactly like the std types they wrap.
//
// Conventions (enforced by tools/aa_lint, check `concurrency`):
//   - All lock-holding code in src/ and tools/ uses these wrappers;
//     naked std::mutex / std::lock_guard / std::unique_lock /
//     std::condition_variable are banned outside this header.
//   - Every Mutex/SharedMutex/PhantomMutex declaration carries a
//     "Lock order:" comment naming its place in the lock hierarchy.
//   - Every function named *_locked declares its AA_REQUIRES contract.
//
// The wrapper bodies are AA_NO_THREAD_SAFETY_ANALYSIS: they manipulate
// the unannotated std primitives, which the analysis cannot see through.
// The attributes on the *declarations* are what callers are checked
// against. See docs/STATIC_ANALYSIS.md ("Compiler-checked locking").

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define AA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
/// 1 when the annotations are live attributes (Clang), 0 when they
/// expand to nothing; sync_test uses this for its compile-only guard.
#define AA_THREAD_SAFETY_ANNOTATIONS_ENABLED 1
#else
#define AA_THREAD_ANNOTATION_ATTRIBUTE__(x)
#define AA_THREAD_SAFETY_ANNOTATIONS_ENABLED 0
#endif

/// Declares a class to be a capability (lockable) named `x` in
/// diagnostics, e.g. class AA_CAPABILITY("mutex") Mutex.
#define AA_CAPABILITY(x) AA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define AA_SCOPED_CAPABILITY \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member may only be read/written while holding `x`.
#define AA_GUARDED_BY(x) AA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member: the *pointee* may only be touched while holding `x`
/// (the pointer itself is unguarded).
#define AA_PT_GUARDED_BY(x) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the caller to hold `...` exclusively (and does not
/// release it). The annotated-function analogue of a `_locked` suffix.
#define AA_REQUIRES(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) access to `...`.
#define AA_REQUIRES_SHARED(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and holds it on return.
#define AA_ACQUIRE(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function acquires `...` shared and holds it on return.
#define AA_ACQUIRE_SHARED(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases `...`, which the caller must hold on entry.
#define AA_RELEASE(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function releases shared access to `...`.
#define AA_RELEASE_SHARED(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds the capability iff the
/// return value equals the first argument.
#define AA_TRY_ACQUIRE(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold `...` (deadlock guard for re-entrant paths).
#define AA_EXCLUDES(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Declaration-site lock-order edges: this capability is acquired
/// after/before the listed ones. Checked under -Wthread-safety-beta
/// (documented opt-in; see docs/STATIC_ANALYSIS.md) and always valuable
/// as a machine-readable statement of the hierarchy.
#define AA_ACQUIRED_AFTER(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#define AA_ACQUIRED_BEFORE(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

/// Asserts (without acquiring) that the calling thread holds `...`;
/// re-introduces dynamically-acquired locks to the analysis.
#define AA_ASSERT_CAPABILITY(...) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(__VA_ARGS__))

/// Function returns a reference to the capability `x`.
#define AA_RETURN_CAPABILITY(x) \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: body is not analyzed. Use only for code the analysis
/// cannot express (and say why in a comment).
#define AA_NO_THREAD_SAFETY_ANALYSIS \
  AA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace aa::support {

/// std::mutex with a capability attribute. Lock it through MutexLock
/// (preferred) or the explicit lock()/unlock() pair; CondVar waits on
/// it directly.
class AA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AA_ACQUIRE() AA_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }
  [[nodiscard]] bool try_lock() AA_TRY_ACQUIRE(true)
      AA_NO_THREAD_SAFETY_ANALYSIS {
    return mutex_.try_lock();
  }

  /// The wrapped primitive, for CondVar's adopt/release dance only.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// std::shared_mutex with a capability attribute; pair with
/// MutexLock (writer) or ReaderMutexLock (shared).
class AA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() AA_ACQUIRE() AA_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }
  void lock_shared() AA_ACQUIRE_SHARED() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.lock_shared();
  }
  void unlock_shared() AA_RELEASE_SHARED() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock_shared();
  }

 private:
  std::shared_mutex mutex_;
};

/// A capability with no runtime state: names a lock set the analysis
/// cannot express directly (e.g. "every shard's turn lock"). A scoped
/// guard that really takes the constituent locks acquires the phantom
/// alongside them, and AA_REQUIRES(phantom) then states the contract on
/// downstream functions. Costs nothing on any compiler.
class AA_CAPABILITY("mutex") PhantomMutex {
 public:
  PhantomMutex() = default;
  PhantomMutex(const PhantomMutex&) = delete;
  PhantomMutex& operator=(const PhantomMutex&) = delete;

  void acquire() AA_ACQUIRE() AA_NO_THREAD_SAFETY_ANALYSIS {}
  void release() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {}
};

/// RAII exclusive lock of a Mutex (scoped capability). Supports early
/// release for the unlock-before-notify idiom.
class AA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) AA_ACQUIRE(mutex)
      AA_NO_THREAD_SAFETY_ANALYSIS : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before end of scope (e.g. to notify a CondVar without the
  /// wakee immediately blocking on the mutex).
  void unlock() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
    held_ = false;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// RAII shared (reader) lock of a SharedMutex.
class AA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) AA_ACQUIRE_SHARED(mutex)
      AA_NO_THREAD_SAFETY_ANALYSIS : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() AA_RELEASE() AA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock_shared();
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable that waits on an aa::support::Mutex. The predicate
/// loop stays at the call site (`while (!pred) cv.wait(mutex);`) so the
/// guarded reads inside the predicate are analyzed in the caller's
/// context — lambda predicates would be analyzed as unrelated functions
/// and defeat the checking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and re-acquires before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void wait(Mutex& mutex) AA_REQUIRES(mutex) AA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still holds the mutex.
  }

  /// wait() with a deadline; returns std::cv_status::timeout when the
  /// deadline passed (the mutex is re-acquired either way).
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      AA_REQUIRES(mutex) AA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();  // The caller still holds the mutex.
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aa::support
