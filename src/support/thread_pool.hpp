#pragma once

// Fixed-size worker pool with a blocking task queue, plus a static-chunked
// parallel_for used to fan the Monte-Carlo trials of the experiment harness
// across cores. Determinism is preserved by seeding each loop index
// independently (see support/prng.hpp), so the schedule never affects results.

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "support/sync.hpp"

namespace aa::support {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (with a floor of 1).
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; the returned future reports completion or exception.
  std::future<void> submit(std::function<void()> task) AA_EXCLUDES(mutex_);

 private:
  void worker_loop() AA_EXCLUDES(mutex_);

  // Lock order: leaf — nothing else is acquired while held.
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ AA_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  bool stopping_ AA_GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [begin, end) across the pool with static chunking.
/// Blocks until every index has completed (even when some chunk throws, so
/// no worker can outlive the caller's stack frame); rethrows the first
/// exception in chunk order.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Deterministic chunked map-reduce. Splits [begin, end) into fixed-size
/// chunks whose boundaries depend only on the range and `chunk_size` — never
/// on the worker count — evaluates `map(lo, hi) -> T` for each chunk on the
/// pool, and folds the partials IN CHUNK ORDER with `combine(acc, partial)`.
/// Because both the decomposition and the fold order are schedule-independent,
/// the result is bit-identical across pool sizes even for non-associative
/// combines (e.g. floating-point sums). Blocks until every chunk finished;
/// rethrows the first exception in chunk order.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_chunked_reduce(ThreadPool& pool, std::size_t begin,
                                        std::size_t end,
                                        std::size_t chunk_size, T init,
                                        const MapFn& map,
                                        const CombineFn& combine) {
  if (begin >= end) return init;
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t total = end - begin;
  const std::size_t chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<T> partials(chunks, init);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit(
        [&partials, &map, c, lo, hi] { partials[c] = map(lo, hi); }));
  }
  // Join every chunk before rethrowing: a propagated exception must not leave
  // workers writing into `partials` after this frame unwinds.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

/// Library-wide shared pool (lazily constructed, hardware-sized).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace aa::support
