#pragma once

// Fixed-size worker pool with a blocking task queue, plus a static-chunked
// parallel_for used to fan the Monte-Carlo trials of the experiment harness
// across cores. Determinism is preserved by seeding each loop index
// independently (see support/prng.hpp), so the schedule never affects results.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aa::support {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (with a floor of 1).
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; the returned future reports completion or exception.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool with static chunking.
/// Blocks until every index has completed; rethrows the first exception.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Library-wide shared pool (lazily constructed, hardware-sized).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace aa::support
