#include "support/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace aa::support {

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile: no samples");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  std::sort(samples.begin(), samples.end());
  const double position = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= samples.size()) return samples.back();
  const double fraction = position - static_cast<double>(lower);
  return samples[lower] + fraction * (samples[lower + 1] - samples[lower]);
}

}  // namespace aa::support
