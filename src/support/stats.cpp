#include "support/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace aa::support {

namespace {

/// Type-7 estimate on an already-sorted sample vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  if (lower + 1 >= sorted.size()) return sorted.back();
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

}  // namespace

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile: no samples");
  }
  std::sort(samples.begin(), samples.end());
  return sorted_quantile(samples, q);
}

std::vector<double> quantiles(std::vector<double> samples,
                              std::span<const double> qs) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile: no samples");
  }
  std::sort(samples.begin(), samples.end());
  std::vector<double> estimates;
  estimates.reserve(qs.size());
  for (const double q : qs) {
    estimates.push_back(sorted_quantile(samples, q));
  }
  return estimates;
}

}  // namespace aa::support
