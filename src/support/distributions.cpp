#include "support/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aa::support {

namespace {

double draw_truncated_normal(double mean, double stddev, Rng& rng) {
  // Rejection against x < 0. With mean 1, sd 1 (the paper's setting) the
  // acceptance probability is ~0.84, so resampling is cheap.
  for (;;) {
    const double x = rng.normal(mean, stddev);
    if (x >= 0.0) return x;
  }
}

double draw_pareto(double alpha, double x_min, Rng& rng) {
  // Inverse CDF: x = x_min * (1 - U)^(-1/(alpha-1)) for density ~ x^-alpha.
  // The survival function of a density c*x^-alpha on [x_min, inf) is
  // (x/x_min)^(1-alpha), so F^-1(u) = x_min * (1-u)^(1/(1-alpha)).
  const double u = rng.uniform01();
  return x_min * std::pow(1.0 - u, 1.0 / (1.0 - alpha));
}

}  // namespace

double draw(const DistributionParams& params, Rng& rng) {
  switch (params.kind) {
    case DistributionKind::kUniform:
      return rng.uniform01();
    case DistributionKind::kNormal:
      return draw_truncated_normal(params.mean, params.stddev, rng);
    case DistributionKind::kPowerLaw:
      if (params.alpha <= 1.0) {
        throw std::invalid_argument("power law requires alpha > 1");
      }
      return draw_pareto(params.alpha, params.x_min, rng);
    case DistributionKind::kDiscrete:
      return rng.uniform01() < params.gamma ? params.low
                                            : params.low * params.theta;
  }
  throw std::logic_error("unknown distribution kind");
}

std::pair<double, double> draw_ordered_pair(const DistributionParams& params,
                                            Rng& rng) {
  const double a = draw(params, rng);
  const double b = draw(params, rng);
  return {std::max(a, b), std::min(a, b)};
}

std::vector<double> simplex_spacings(std::size_t k, double total, Rng& rng) {
  if (k == 0) return {};
  if (total < 0.0) throw std::invalid_argument("simplex total must be >= 0");
  if (k == 1) return {total};
  std::vector<double> cuts(k - 1);
  for (auto& c : cuts) c = rng.uniform(0.0, total);
  std::sort(cuts.begin(), cuts.end());
  std::vector<double> parts(k);
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    parts[i] = cuts[i] - prev;
    prev = cuts[i];
  }
  parts[k - 1] = total - prev;
  return parts;
}

}  // namespace aa::support
