#pragma once

// Tiny command-line flag parser used by the aa_gen / aa_solve tools.
// Supports --key value and --key=value; unknown flags are an error so typos
// fail loudly. Non-flag tokens are collected as positional arguments.

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace aa::support {

class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
    for (const std::string& flag : known_flags) known_.insert(flag);
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token = token.substr(2);
      std::string value;
      if (const auto eq = token.find('='); eq != std::string::npos) {
        value = token.substr(eq + 1);
        token = token.substr(0, eq);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("flag --" + token + " needs a value");
      }
      if (known_.find(token) == known_.end()) {
        throw std::runtime_error("unknown flag --" + token);
      }
      flags_[token] = std::move(value);
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> known_;
  std::vector<std::string> positional_;
};

}  // namespace aa::support
