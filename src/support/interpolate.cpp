#include "support/interpolate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aa::support {

namespace {

/// Fritsch-Carlson knot slopes: weighted harmonic mean of adjacent secant
/// slopes when they have the same sign, zero otherwise (preserving
/// monotonicity of the data).
std::vector<double> fritsch_carlson_slopes(std::span<const double> xs,
                                           std::span<const double> ys) {
  const std::size_t n = xs.size();
  std::vector<double> h(n - 1);
  std::vector<double> delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = xs[i + 1] - xs[i];
    delta[i] = (ys[i + 1] - ys[i]) / h[i];
  }
  std::vector<double> d(n, 0.0);
  if (n == 2) {
    d[0] = d[1] = delta[0];
    return d;
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] * delta[i] <= 0.0) {
      d[i] = 0.0;
    } else {
      // Brodlie's weighted harmonic mean, as used by Matlab's pchip.
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // One-sided three-point endpoint formulas with sign/magnitude limiting.
  auto endpoint = [](double h0, double h1, double d0, double d1) {
    double slope = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (slope * d0 <= 0.0) {
      slope = 0.0;
    } else if (d0 * d1 <= 0.0 && std::abs(slope) > 3.0 * std::abs(d0)) {
      slope = 3.0 * d0;
    }
    return slope;
  };
  d[0] = endpoint(h[0], h[1], delta[0], delta[1]);
  d[n - 1] = endpoint(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  return d;
}

}  // namespace

PchipInterpolant::PchipInterpolant(std::span<const double> xs,
                                   std::span<const double> ys)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  if (xs_.size() != ys_.size()) {
    throw std::invalid_argument("pchip: xs and ys size mismatch");
  }
  if (xs_.size() < 2) {
    throw std::invalid_argument("pchip: need at least two knots");
  }
  if (!std::is_sorted(xs_.begin(), xs_.end()) ||
      std::adjacent_find(xs_.begin(), xs_.end()) != xs_.end()) {
    throw std::invalid_argument("pchip: xs must be strictly increasing");
  }
  slopes_ = fritsch_carlson_slopes(xs_, ys_);
}

std::size_t PchipInterpolant::interval_of(double x) const noexcept {
  // Largest i with xs_[i] <= x, clamped to a valid interval start.
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(1, it - xs_.begin()) - 1);
  return std::min(idx, xs_.size() - 2);
}

double PchipInterpolant::operator()(double x) const noexcept {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = interval_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * slopes_[i] + h01 * ys_[i + 1] +
         h11 * h * slopes_[i + 1];
}

double PchipInterpolant::derivative(double x) const noexcept {
  if (x <= xs_.front()) return slopes_.front();
  if (x >= xs_.back()) return slopes_.back();
  const std::size_t i = interval_of(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6.0 * t2 - 6.0 * t) / h;
  const double dh10 = 3.0 * t2 - 4.0 * t + 1.0;
  const double dh01 = (-6.0 * t2 + 6.0 * t) / h;
  const double dh11 = 3.0 * t2 - 2.0 * t;
  return dh00 * ys_[i] + dh10 * slopes_[i] + dh01 * ys_[i + 1] +
         dh11 * slopes_[i + 1];
}

namespace {

std::vector<double> pav_impl(std::span<const double> values, bool increasing) {
  // Blocks of pooled values; each block stores (mean, count).
  struct Block {
    double sum;
    std::size_t count;
    [[nodiscard]] double mean() const {
      return sum / static_cast<double>(count);
    }
  };
  std::vector<Block> blocks;
  blocks.reserve(values.size());
  auto violates = [increasing](const Block& a, const Block& b) {
    return increasing ? a.mean() > b.mean() : a.mean() < b.mean();
  };
  for (const double v : values) {
    blocks.push_back({v, 1});
    while (blocks.size() >= 2 &&
           violates(blocks[blocks.size() - 2], blocks.back())) {
      blocks[blocks.size() - 2].sum += blocks.back().sum;
      blocks[blocks.size() - 2].count += blocks.back().count;
      blocks.pop_back();
    }
  }
  std::vector<double> out;
  out.reserve(values.size());
  for (const Block& b : blocks) {
    out.insert(out.end(), b.count, b.mean());
  }
  return out;
}

}  // namespace

std::vector<double> pav_nonincreasing(std::span<const double> values) {
  return pav_impl(values, /*increasing=*/false);
}

std::vector<double> pav_nondecreasing(std::span<const double> values) {
  return pav_impl(values, /*increasing=*/true);
}

}  // namespace aa::support
