#pragma once

// Minimal fixed-column table builder for the bench harness: prints the same
// rows/series the paper's figures report, in aligned text or CSV.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace aa::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 4);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

  /// Aligned, human-readable rendering.
  [[nodiscard]] std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  /// Writes the text rendering to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace aa::support
