#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aa::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("table needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header count");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v, precision));
  add_row(std::move(formatted));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace aa::support
