#include "sim/experiment.hpp"

#include <stdexcept>
#include <vector>

#include "aa/refine.hpp"
#include "aa/heuristics.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::sim {

TrialUtilities run_trial(const WorkloadConfig& config, std::uint64_t base_seed,
                         std::uint64_t trial_index) {
  obs::count(obs::metric::kExperimentTrials);
  support::Rng rng = support::Rng::child(base_seed, trial_index);
  const core::Instance instance = generate_instance(config, rng);

  TrialUtilities out;
  const core::SolveResult solved = core::solve_algorithm2_refined(instance);
  out.algorithm2 = solved.utility;
  out.super_optimal = solved.super_optimal_utility;
  out.uu = core::total_utility(instance, core::heuristic_uu(instance));
  out.ur = core::total_utility(instance, core::heuristic_ur(instance, rng));
  out.ru = core::total_utility(instance, core::heuristic_ru(instance, rng));
  out.rr = core::total_utility(instance, core::heuristic_rr(instance, rng));
  return out;
}

RatioPoint run_point(const WorkloadConfig& config, std::size_t trials,
                     std::uint64_t base_seed, support::ThreadPool* pool) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseExperimentRunPoint);
  if (trials == 0) throw std::invalid_argument("run_point: zero trials");
  std::vector<TrialUtilities> results(trials);
  support::ThreadPool& workers = pool != nullptr ? *pool
                                                 : support::global_pool();
  support::parallel_for(workers, 0, trials, [&](std::size_t t) {
    results[t] = run_trial(config, base_seed, t);
  });

  RatioPoint point;
  for (const TrialUtilities& r : results) {
    // Every utility is strictly positive with probability 1 for the paper's
    // distributions (f(C/2) = v > 0), but guard the division anyway: a
    // zero-utility competitor contributes the max observed ratio semantics
    // poorly, so we skip such degenerate trials entirely.
    if (r.super_optimal <= 0.0 || r.uu <= 0.0 || r.ur <= 0.0 ||
        r.ru <= 0.0 || r.rr <= 0.0) {
      obs::count(obs::metric::kExperimentDegenerateTrials);
      continue;
    }
    point.ratio[kVsSuperOptimal].add(r.algorithm2 / r.super_optimal);
    point.ratio[kVsUU].add(r.algorithm2 / r.uu);
    point.ratio[kVsUR].add(r.algorithm2 / r.ur);
    point.ratio[kVsRU].add(r.algorithm2 / r.ru);
    point.ratio[kVsRR].add(r.algorithm2 / r.rr);
  }
  return point;
}

}  // namespace aa::sim
