#pragma once

// Workload generation for the paper's evaluation (Section VII): an AA
// instance whose threads carry random concave utilities drawn from one of
// the four distributions, with the paper's defaults m = 8, C = 1000 and
// beta = n / m threads per server.

#include <cstddef>

#include "aa/problem.hpp"
#include "support/distributions.hpp"
#include "support/prng.hpp"
#include "utility/generator.hpp"

namespace aa::sim {

struct WorkloadConfig {
  support::DistributionParams dist;
  std::size_t num_servers = 8;
  util::Resource capacity = 1000;
  double beta = 5.0;  ///< Average threads per server; n = round(beta * m).

  [[nodiscard]] std::size_t num_threads() const;
};

/// Generates one random AA instance according to the config.
[[nodiscard]] core::Instance generate_instance(const WorkloadConfig& config,
                                               support::Rng& rng);

}  // namespace aa::sim
