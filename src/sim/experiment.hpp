#pragma once

// Monte-Carlo experiment runner reproducing the paper's measurement
// protocol (Section VII): for each parameter point, run `trials`
// independent random instances, solve each with Algorithm 2 and the four
// heuristics, and report the mean of Algorithm 2's utility divided by each
// competitor's utility (SO, the super-optimal bound, included — that ratio
// is <= 1 while the heuristic ratios are >= 1 in expectation).
//
// Trials are farmed out to a thread pool; each trial seeds its own Rng from
// (base_seed, trial index), so the numbers are independent of the worker
// count and schedule.

#include <array>
#include <cstddef>

#include "sim/workload.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace aa::sim {

/// Competitor indices within RatioPoint::ratio.
enum CompetitorIndex : std::size_t {
  kVsSuperOptimal = 0,
  kVsUU = 1,
  kVsUR = 2,
  kVsRU = 3,
  kVsRR = 4,
  kNumCompetitors = 5,
};

/// Aggregated ratios for one parameter point.
struct RatioPoint {
  std::array<support::RunningStats, kNumCompetitors> ratio;
};

/// Raw per-trial utilities, exposed for tests and ablations.
struct TrialUtilities {
  double algorithm2 = 0.0;
  double super_optimal = 0.0;
  double uu = 0.0;
  double ur = 0.0;
  double ru = 0.0;
  double rr = 0.0;
};

/// Runs a single trial with the given seed derivation.
[[nodiscard]] TrialUtilities run_trial(const WorkloadConfig& config,
                                       std::uint64_t base_seed,
                                       std::uint64_t trial_index);

/// Runs `trials` trials in parallel on `pool` (nullptr = global pool) and
/// aggregates the ratios.
[[nodiscard]] RatioPoint run_point(const WorkloadConfig& config,
                                   std::size_t trials,
                                   std::uint64_t base_seed,
                                   support::ThreadPool* pool = nullptr);

}  // namespace aa::sim
