#include "sim/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace aa::sim {

std::size_t WorkloadConfig::num_threads() const {
  if (beta <= 0.0) throw std::invalid_argument("workload: beta must be > 0");
  return static_cast<std::size_t>(
      std::llround(beta * static_cast<double>(num_servers)));
}

core::Instance generate_instance(const WorkloadConfig& config,
                                 support::Rng& rng) {
  core::Instance instance;
  instance.num_servers = config.num_servers;
  instance.capacity = config.capacity;
  instance.threads = util::generate_utilities(config.num_threads(),
                                              config.capacity, config.dist,
                                              rng);
  instance.validate();
  return instance;
}

}  // namespace aa::sim
