#include "sim/figures.hpp"

namespace aa::sim {

namespace {

const std::vector<std::string> kHeaders = {
    "param",   "Alg2/SO", "Alg2/UU", "Alg2/UR", "Alg2/RU", "Alg2/RR",
    "se(SO)",  "se(UU)",  "se(UR)",  "se(RU)",  "se(RR)"};

void add_point_row(support::Table& table, double param,
                   const RatioPoint& point) {
  table.add_row_numeric(
      {param, point.ratio[kVsSuperOptimal].mean(), point.ratio[kVsUU].mean(),
       point.ratio[kVsUR].mean(), point.ratio[kVsRU].mean(),
       point.ratio[kVsRR].mean(), point.ratio[kVsSuperOptimal].stderr_mean(),
       point.ratio[kVsUU].stderr_mean(), point.ratio[kVsUR].stderr_mean(),
       point.ratio[kVsRU].stderr_mean(), point.ratio[kVsRR].stderr_mean()});
}

WorkloadConfig base_config(const support::DistributionParams& dist,
                           const SweepOptions& options) {
  WorkloadConfig config;
  config.dist = dist;
  config.num_servers = options.num_servers;
  config.capacity = options.capacity;
  return config;
}

}  // namespace

std::vector<double> default_betas() {
  std::vector<double> betas;
  for (int b = 1; b <= 15; ++b) betas.push_back(static_cast<double>(b));
  return betas;
}

support::Table sweep_beta(const support::DistributionParams& dist,
                          std::vector<double> betas,
                          const SweepOptions& options) {
  if (betas.empty()) betas = default_betas();
  support::Table table(kHeaders);
  WorkloadConfig config = base_config(dist, options);
  for (const double beta : betas) {
    config.beta = beta;
    add_point_row(table, beta,
                  run_point(config, options.trials, options.base_seed));
  }
  return table;
}

support::Table sweep_powerlaw_alpha(std::vector<double> alphas, double beta,
                                    const SweepOptions& options) {
  support::Table table(kHeaders);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kPowerLaw;
  WorkloadConfig config = base_config(dist, options);
  config.beta = beta;
  for (const double alpha : alphas) {
    config.dist.alpha = alpha;
    add_point_row(table, alpha,
                  run_point(config, options.trials, options.base_seed));
  }
  return table;
}

support::Table sweep_discrete_gamma(std::vector<double> gammas, double beta,
                                    double theta,
                                    const SweepOptions& options) {
  support::Table table(kHeaders);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kDiscrete;
  dist.theta = theta;
  WorkloadConfig config = base_config(dist, options);
  config.beta = beta;
  for (const double gamma : gammas) {
    config.dist.gamma = gamma;
    add_point_row(table, gamma,
                  run_point(config, options.trials, options.base_seed));
  }
  return table;
}

support::Table sweep_discrete_theta(std::vector<double> thetas, double beta,
                                    double gamma,
                                    const SweepOptions& options) {
  support::Table table(kHeaders);
  support::DistributionParams dist;
  dist.kind = support::DistributionKind::kDiscrete;
  dist.gamma = gamma;
  WorkloadConfig config = base_config(dist, options);
  config.beta = beta;
  for (const double theta : thetas) {
    config.dist.theta = theta;
    add_point_row(table, theta,
                  run_point(config, options.trials, options.base_seed));
  }
  return table;
}

}  // namespace aa::sim
