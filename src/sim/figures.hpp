#pragma once

// Figure sweep drivers: each function regenerates the series of one paper
// figure as a table (parameter column + one ratio column per competitor).
// The bench binaries print these with the paper's trial count (1000);
// tests run them with small counts for speed.

#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"
#include "support/table.hpp"

namespace aa::sim {

struct SweepOptions {
  std::size_t trials = 1000;
  std::uint64_t base_seed = 20160523;  ///< IPDPS 2016 opening day.
  std::size_t num_servers = 8;
  util::Resource capacity = 1000;
};

/// Figures 1(a), 1(b), 2(a), 3(a): sweep beta = n/m with a fixed
/// distribution. `betas` defaults (empty vector) to the paper's 1..15.
[[nodiscard]] support::Table sweep_beta(
    const support::DistributionParams& dist, std::vector<double> betas,
    const SweepOptions& options);

/// Figure 2(b): power law, fixed beta, sweep alpha.
[[nodiscard]] support::Table sweep_powerlaw_alpha(
    std::vector<double> alphas, double beta, const SweepOptions& options);

/// Figure 3(b): discrete, fixed beta/theta, sweep gamma.
[[nodiscard]] support::Table sweep_discrete_gamma(
    std::vector<double> gammas, double beta, double theta,
    const SweepOptions& options);

/// Figure 3(c): discrete, fixed beta/gamma, sweep theta.
[[nodiscard]] support::Table sweep_discrete_theta(
    std::vector<double> thetas, double beta, double gamma,
    const SweepOptions& options);

/// The paper's default beta grid, 1..15.
[[nodiscard]] std::vector<double> default_betas();

}  // namespace aa::sim
