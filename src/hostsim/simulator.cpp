#include "hostsim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace aa::hostsim {

namespace {

enum class EventType { kArrival, kDeparture };

struct Event {
  double time;
  EventType type;
  std::size_t thread;
  bool operator>(const Event& other) const noexcept {
    if (time != other.time) return time > other.time;
    // Departures before arrivals at identical stamps keeps queues minimal;
    // thread index last for determinism.
    if (type != other.type) return type == EventType::kArrival;
    return thread > other.thread;
  }
};

struct ThreadState {
  double service_rate = 0.0;
  double arrival_rate = 0.0;
  std::deque<double> queue;  ///< Arrival times of waiting/served requests.
  bool busy = false;
  double service_start = 0.0;
};

}  // namespace

SimulationResult simulate_hosting(const core::Instance& instance,
                                  const core::Assignment& assignment,
                                  const ServiceConfig& config) {
  const std::size_t n = instance.num_threads();
  if (assignment.server.size() != n || assignment.alloc.size() != n) {
    throw std::invalid_argument("hostsim: assignment size mismatch");
  }
  if (config.arrival_rates.size() != n) {
    throw std::invalid_argument("hostsim: arrival rate per thread required");
  }
  if (config.horizon <= 0.0 || config.warmup < 0.0 ||
      config.warmup >= config.horizon) {
    throw std::invalid_argument("hostsim: need 0 <= warmup < horizon");
  }
  for (const double rate : config.arrival_rates) {
    if (rate < 0.0) throw std::invalid_argument("hostsim: negative rate");
  }

  support::Rng rng(config.seed);
  std::vector<ThreadState> threads(n);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::size_t i = 0; i < n; ++i) {
    threads[i].service_rate =
        instance.threads[i]->value(assignment.alloc[i]);
    threads[i].arrival_rate = config.arrival_rates[i];
    if (threads[i].arrival_rate > 0.0) {
      events.push({rng.exponential() / threads[i].arrival_rate,
                   EventType::kArrival, i});
    }
  }

  SimulationResult result;
  result.per_thread.resize(n);
  result.measured_span = config.horizon - config.warmup;

  auto measured_overlap = [&](double start, double end) {
    const double lo = std::max(start, config.warmup);
    const double hi = std::min(end, config.horizon);
    return std::max(0.0, hi - lo);
  };

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    if (event.time > config.horizon) break;
    ThreadState& state = threads[event.thread];
    ThreadMetrics& metrics = result.per_thread[event.thread];

    switch (event.type) {
      case EventType::kArrival: {
        if (event.time >= config.warmup) ++metrics.arrivals;
        state.queue.push_back(event.time);
        events.push({event.time + rng.exponential() / state.arrival_rate,
                     EventType::kArrival, event.thread});
        if (!state.busy && state.service_rate > 0.0) {
          state.busy = true;
          state.service_start = event.time;
          events.push({event.time + rng.exponential() / state.service_rate,
                       EventType::kDeparture, event.thread});
        }
        break;
      }
      case EventType::kDeparture: {
        const double arrived = state.queue.front();
        state.queue.pop_front();
        metrics.busy_time += measured_overlap(state.service_start, event.time);
        if (event.time >= config.warmup) {
          ++metrics.completions;
          ++result.total_completions;
          const double sojourn = event.time - arrived;
          metrics.sojourn.add(sojourn);
          result.sojourn_all.add(sojourn);
          if (config.collect_samples) {
            result.sojourn_samples.push_back(sojourn);
          }
        }
        if (!state.queue.empty()) {
          state.service_start = event.time;
          events.push({event.time + rng.exponential() / state.service_rate,
                       EventType::kDeparture, event.thread});
        } else {
          state.busy = false;
        }
        break;
      }
    }
  }

  // Account for services still in flight at the horizon.
  for (std::size_t i = 0; i < n; ++i) {
    if (threads[i].busy) {
      result.per_thread[i].busy_time +=
          measured_overlap(threads[i].service_start, config.horizon);
    }
  }
  return result;
}

}  // namespace aa::hostsim
