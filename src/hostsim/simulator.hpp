#pragma once

// Discrete-event simulation of a hosting center (paper Section I's second
// motivating scenario).
//
// The AA model treats a thread's utility as its *throughput* for a given
// resource share. This module closes the loop: each service thread becomes
// a FIFO queue whose service rate is f_i(c_i) requests per second under the
// chosen assignment; requests arrive as Poisson streams; the simulator
// plays the event timeline and reports completed work, latency and
// utilization. Tests validate the engine against M/M/1 closed forms, and
// bench/domain_hosting compares AA placement against the heuristics on
// tail latency and goodput — the operational quantities the utility
// abstraction is a proxy for.

#include <cstdint>
#include <vector>

#include "aa/problem.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"

namespace aa::hostsim {

struct ServiceConfig {
  std::vector<double> arrival_rates;  ///< Requests/sec per thread.
  double horizon = 1000.0;            ///< Simulated seconds.
  double warmup = 100.0;              ///< Stats ignored before this time.
  std::uint64_t seed = 1;
  bool collect_samples = false;       ///< Keep raw sojourn samples for
                                      ///< quantile reporting.
};

struct ThreadMetrics {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  support::RunningStats sojourn;     ///< Queue + service time per request.
  double busy_time = 0.0;

  [[nodiscard]] double utilization(double measured_span) const {
    return measured_span > 0.0 ? busy_time / measured_span : 0.0;
  }
};

struct SimulationResult {
  std::vector<ThreadMetrics> per_thread;
  std::uint64_t total_completions = 0;
  support::RunningStats sojourn_all;  ///< Pooled sojourn times.
  std::vector<double> sojourn_samples;  ///< Raw, when collect_samples set.
  double measured_span = 0.0;         ///< horizon - warmup.

  /// Pooled sojourn quantile; requires collect_samples and completions.
  [[nodiscard]] double sojourn_quantile(double q) const {
    return support::quantile(sojourn_samples, q);
  }

  [[nodiscard]] double goodput() const {
    return measured_span > 0.0
               ? static_cast<double>(total_completions) / measured_span
               : 0.0;
  }
};

/// Simulates the hosting center: thread i serves requests at rate
/// f_i(assignment.alloc[i]) with exponential service times and Poisson
/// arrivals at config.arrival_rates[i]. Threads with service rate 0 never
/// complete work (their queue just grows).
///
/// Throws std::invalid_argument on size mismatches or invalid rates.
[[nodiscard]] SimulationResult simulate_hosting(
    const core::Instance& instance, const core::Assignment& assignment,
    const ServiceConfig& config);

}  // namespace aa::hostsim
