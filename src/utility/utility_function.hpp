#pragma once

// Utility-function model (paper Section III).
//
// Each thread t_i carries a utility function f_i : [0, C] -> R>=0 that is
// nonnegative, nondecreasing and concave, giving its throughput as a function
// of the resource it receives. Resources are measured in integer units
// (0..C), matching the paper's complexity bounds in log(mC); functions are
// nevertheless defined on the real interval so heuristics may hand out
// fractional allocations.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace aa::util {

/// Integer amount of resource units.
using Resource = std::int64_t;

/// Abstract concave utility function on [0, capacity].
///
/// Implementations must be immutable after construction and safe to share
/// across threads (the experiment harness evaluates instances in parallel).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// f(x). Arguments outside [0, capacity()] are clamped.
  [[nodiscard]] virtual double value(double x) const = 0;

  /// Domain end C: the largest meaningful allocation.
  [[nodiscard]] virtual Resource capacity() const = 0;

  /// Marginal gain of the k-th unit: f(k) - f(k-1), for k in [1, capacity()].
  /// Nonincreasing in k for concave functions (the allocators rely on this).
  [[nodiscard]] virtual double marginal(Resource k) const;

  /// Raw value grid f(0..capacity()) when the representation stores one
  /// (TabulatedUtility), else nullptr. The allocator's structure-of-arrays
  /// fast path (alloc/bisection_soa.cpp) reads marginals straight off the
  /// grid — grid[k] - grid[k-1] must equal marginal(k) bit-for-bit — so a
  /// non-null return is a strict promise, not a hint.
  [[nodiscard]] virtual const double* tabulated_grid() const noexcept {
    return nullptr;
  }
};

/// Shared, immutable handle used throughout the library.
using UtilityPtr = std::shared_ptr<const UtilityFunction>;

/// Checks nonnegativity, monotonicity and concavity of marginals on the
/// integer grid, with tolerance for floating-point noise.
[[nodiscard]] bool is_valid_on_grid(const UtilityFunction& f,
                                    double tol = 1e-9);

// ---------------------------------------------------------------------------
// Analytic families
// ---------------------------------------------------------------------------

/// f(x) = slope * min(x, cap): the family used by the NP-hardness reduction
/// (Section IV) and the tightness example (Theorem V.17).
class CappedLinearUtility final : public UtilityFunction {
 public:
  CappedLinearUtility(double slope, double cap, Resource capacity);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override { return capacity_; }
  [[nodiscard]] double slope() const noexcept { return slope_; }
  [[nodiscard]] double cap() const noexcept { return cap_; }

 private:
  double slope_;
  double cap_;
  Resource capacity_;
};

/// f(x) = scale * x^beta with beta in (0, 1]: the motivating example from the
/// paper's introduction.
class PowerUtility final : public UtilityFunction {
 public:
  PowerUtility(double scale, double beta, Resource capacity);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override { return capacity_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

 private:
  double scale_;
  double beta_;
  Resource capacity_;
};

/// f(x) = scale * log(1 + rate * x): classic diminishing-returns model used
/// by the cloud-provider example (willingness to pay).
class LogUtility final : public UtilityFunction {
 public:
  LogUtility(double scale, double rate, Resource capacity);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override { return capacity_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double scale_;
  double rate_;
  Resource capacity_;
};

/// f(x) = factor * base(x): preserves monotonicity and concavity for
/// factor >= 0. Used by the online extension to model utility drift without
/// re-tabulating curves.
class ScaledUtility final : public UtilityFunction {
 public:
  ScaledUtility(UtilityPtr base, double factor);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override {
    return base_->capacity();
  }
  [[nodiscard]] double marginal(Resource k) const override;
  [[nodiscard]] double factor() const noexcept { return factor_; }
  /// The wrapped function; lets repeated re-scaling (e.g. long drift
  /// streams in the allocation service) collapse to a single wrapper
  /// instead of growing an evaluation chain.
  [[nodiscard]] const UtilityPtr& base() const noexcept { return base_; }

 private:
  UtilityPtr base_;
  double factor_;
};

/// f(x) = min(base(x), ceiling): pointwise saturation, preserving
/// monotonicity and concavity for ceiling >= 0. The canonical use is
/// goodput modeling in the hosting simulator: a service's *useful*
/// throughput is min(arrival rate, service rate), so AA should maximize the
/// saturated utility, not the raw rate (see hostsim/simulator.hpp).
class SaturatedUtility final : public UtilityFunction {
 public:
  SaturatedUtility(UtilityPtr base, double ceiling);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override {
    return base_->capacity();
  }
  [[nodiscard]] double ceiling() const noexcept { return ceiling_; }

 private:
  UtilityPtr base_;
  double ceiling_;
};

// ---------------------------------------------------------------------------
// Data-backed families
// ---------------------------------------------------------------------------

/// Concave piecewise-linear function through validated breakpoints.
class PiecewiseLinearUtility final : public UtilityFunction {
 public:
  /// Breakpoints must start at x = 0, be strictly increasing in x,
  /// nondecreasing in y, with nonincreasing segment slopes, y >= 0.
  /// The last breakpoint defines capacity() (its x must be integral).
  PiecewiseLinearUtility(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override { return capacity_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  Resource capacity_;
};

/// Function tabulated on the full integer grid 0..C; linear between grid
/// points. The workhorse representation for generated (PCHIP) utilities and
/// for cache miss-rate curves.
class TabulatedUtility final : public UtilityFunction {
 public:
  /// `values[k]` is f(k) for k = 0..C (so values.size() == C + 1). Values
  /// must be nonnegative, nondecreasing, with nonincreasing marginals
  /// (within `tol`); small violations are *rejected*, not repaired — use
  /// `from_samples_with_repair` for raw data.
  explicit TabulatedUtility(std::vector<double> values, double tol = 1e-9);

  /// Projects raw grid samples onto the concave nondecreasing cone: clamps
  /// negatives, applies pool-adjacent-violators to the marginal sequence,
  /// and rebuilds the values. The result matches the input exactly when the
  /// input is already concave and nondecreasing.
  [[nodiscard]] static TabulatedUtility from_samples_with_repair(
      std::span<const double> samples);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] Resource capacity() const override {
    return static_cast<Resource>(values_.size()) - 1;
  }
  [[nodiscard]] double marginal(Resource k) const override;
  [[nodiscard]] std::span<const double> grid() const noexcept {
    return values_;
  }
  [[nodiscard]] const double* tabulated_grid() const noexcept override {
    return values_.data();
  }

 private:
  struct RepairTag {};
  TabulatedUtility(RepairTag, std::vector<double> values);

  std::vector<double> values_;
};

}  // namespace aa::util
