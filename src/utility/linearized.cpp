#include "utility/linearized.hpp"

#include <stdexcept>

namespace aa::util {

std::vector<Linearized> linearize(const std::vector<UtilityPtr>& threads,
                                  const std::vector<Resource>& c_hats) {
  if (threads.size() != c_hats.size()) {
    throw std::invalid_argument("linearize: thread/allocation size mismatch");
  }
  std::vector<Linearized> out;
  out.reserve(threads.size());
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (c_hats[i] < 0) {
      throw std::invalid_argument("linearize: negative allocation");
    }
    out.push_back(Linearized{
        .cap = c_hats[i],
        .peak = threads[i]->value(static_cast<double>(c_hats[i]))});
  }
  return out;
}

}  // namespace aa::util
