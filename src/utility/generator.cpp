#include "utility/generator.hpp"

#include <array>
#include <memory>
#include <stdexcept>

#include "support/interpolate.hpp"

namespace aa::util {

UtilityPtr generate_utility(Resource capacity,
                            const support::DistributionParams& dist,
                            support::Rng& rng) {
  if (capacity < 2) {
    throw std::invalid_argument("generate_utility: capacity must be >= 2");
  }
  const auto [v, w] = support::draw_ordered_pair(dist, rng);
  const double c = static_cast<double>(capacity);
  const std::array<double, 3> xs{0.0, c / 2.0, c};
  const std::array<double, 3> ys{0.0, v, v + w};
  const support::PchipInterpolant pchip(xs, ys);
  std::vector<double> samples(static_cast<std::size_t>(capacity) + 1);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    samples[k] = pchip(static_cast<double>(k));
  }
  return std::make_shared<TabulatedUtility>(
      TabulatedUtility::from_samples_with_repair(samples));
}

std::vector<UtilityPtr> generate_utilities(
    std::size_t count, Resource capacity,
    const support::DistributionParams& dist, support::Rng& rng) {
  std::vector<UtilityPtr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(generate_utility(capacity, dist, rng));
  }
  return out;
}

}  // namespace aa::util
