#pragma once

// Utility-curve estimation from noisy performance measurements.
//
// Section VIII (future work): "we would like to integrate online
// performance measurements into our algorithms". In practice a thread's
// utility curve is not given — it is measured by running the thread at a
// few allocation levels (cache ways, memory shares) and observing noisy
// throughput (cf. Qureshi & Patt [4]'s sampled miss-rate curves). This
// module turns such samples into a valid concave AA utility:
//
//   1. samples at the same x are averaged;
//   2. values are linearly interpolated onto the integer grid [0, C]
//      (constant extrapolation beyond the sampled range; an optional
//      anchor pins f(0) = 0, the physically common case);
//   3. the grid marginals are projected onto the nonincreasing cone by
//      pool-adjacent-violators, yielding the concave least-squares fit of
//      the interpolated increments.
//
// bench/ext_measurement quantifies the end-to-end effect: how much AA
// utility is lost when planning on fitted curves instead of true ones, as
// a function of sample count and noise.

#include <span>
#include <vector>

#include "support/prng.hpp"
#include "utility/utility_function.hpp"

namespace aa::util {

/// One measurement: observed performance `y` at allocation `x`.
struct Sample {
  double x = 0.0;
  double y = 0.0;
};

struct FitOptions {
  /// Pin f(0) = 0 even when no sample exists at x = 0 (default). When
  /// false and no sample covers 0, the fit extrapolates the smallest
  /// sampled value leftwards.
  bool anchor_zero = true;
};

/// Fits a concave nondecreasing TabulatedUtility on [0, capacity] from
/// noisy samples. Requires at least one sample with x inside [0, capacity];
/// throws std::invalid_argument otherwise (or on negative capacity).
[[nodiscard]] UtilityPtr fit_concave_utility(std::span<const Sample> samples,
                                             Resource capacity,
                                             const FitOptions& options = {});

/// Simulates a measurement campaign: evaluates `truth` at `levels` with
/// i.i.d. Gaussian relative noise (sd = noise_fraction * f(C)), clamped at
/// zero. One sample per level per repeat.
[[nodiscard]] std::vector<Sample> measure_utility(
    const UtilityFunction& truth, std::span<const Resource> levels,
    std::size_t repeats, double noise_fraction, support::Rng& rng);

/// Convenience: `count` evenly spaced levels covering (0, capacity].
[[nodiscard]] std::vector<Resource> even_levels(Resource capacity,
                                                std::size_t count);

}  // namespace aa::util
