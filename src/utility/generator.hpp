#pragma once

// Random concave utility generator reproducing the paper's Section VII
// recipe:
//
//   1. Fix the server capacity C and set f(0) = 0.
//   2. Draw v, w from the distribution H conditioned on w <= v.
//   3. Set f(C/2) = v and f(C) = v + w. (Because w <= v the secant slopes
//      2v/C and 2w/C are nonincreasing, so the three points are concave.)
//   4. Interpolate with PCHIP to produce a smooth concave utility.
//
// Our PCHIP (Fritsch-Carlson, the same scheme as Matlab's pchip) is sampled
// on the integer grid 0..C and projected onto the concave cone via
// pool-adjacent-violators; for these three-point concave data the projection
// is almost always the identity, and it guarantees the precondition of the
// allocation algorithms regardless.

#include "support/distributions.hpp"
#include "support/prng.hpp"
#include "utility/utility_function.hpp"

namespace aa::util {

/// Generates one random utility function on [0, C] (C >= 2).
[[nodiscard]] UtilityPtr generate_utility(
    Resource capacity, const support::DistributionParams& dist,
    support::Rng& rng);

/// Generates a set of `count` independent utility functions.
[[nodiscard]] std::vector<UtilityPtr> generate_utilities(
    std::size_t count, Resource capacity,
    const support::DistributionParams& dist, support::Rng& rng);

}  // namespace aa::util
