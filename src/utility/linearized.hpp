#pragma once

// Two-segment linearization (paper Section V-A, Equation 1).
//
// Given a super-optimal allocation c_hat_i, each concave f_i is replaced by
//
//     g_i(x) = (x / c_hat_i) * f_i(c_hat_i)   for x <= c_hat_i
//     g_i(x) = f_i(c_hat_i)                   for x >  c_hat_i
//
// which satisfies g_i <= f_i (Lemma V.4: the ramp lies below the concave
// chord through (0, f_i(0)) and (c_hat_i, f_i(c_hat_i)) because f_i(0) >= 0).
// Threads with c_hat_i = 0 degenerate to the constant g_i(x) = f_i(0).

#include <vector>

#include "utility/utility_function.hpp"

namespace aa::util {

/// One linearized utility: a ramp of the given slope up to `cap`, flat at
/// `peak` beyond. Plain value type — Algorithms 1 and 2 operate on these.
struct Linearized {
  Resource cap = 0;   ///< c_hat_i (super-optimal allocation).
  double peak = 0.0;  ///< g_i(c_hat_i) = f_i(c_hat_i).

  /// g_i(x).
  [[nodiscard]] double value(double x) const noexcept {
    if (cap == 0 || x >= static_cast<double>(cap)) return peak;
    if (x <= 0.0) return 0.0;
    return peak * (x / static_cast<double>(cap));
  }

  /// Slope of the ramp segment, g_i(c_hat_i) / c_hat_i. Zero-cap threads
  /// report 0 (they never compete for resources).
  [[nodiscard]] double density() const noexcept {
    return cap == 0 ? 0.0 : peak / static_cast<double>(cap);
  }
};

/// Builds the linearized problem from the original utilities and a
/// super-optimal allocation (c_hats[i] = c_hat_i).
[[nodiscard]] std::vector<Linearized> linearize(
    const std::vector<UtilityPtr>& threads,
    const std::vector<Resource>& c_hats);

}  // namespace aa::util
