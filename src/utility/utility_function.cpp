#include "utility/utility_function.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "support/interpolate.hpp"

namespace aa::util {

double UtilityFunction::marginal(Resource k) const {
  return value(static_cast<double>(k)) - value(static_cast<double>(k - 1));
}

bool is_valid_on_grid(const UtilityFunction& f, double tol) {
  const Resource cap = f.capacity();
  if (cap < 0) return false;
  if (f.value(0.0) < -tol) return false;
  double prev_marginal = std::numeric_limits<double>::infinity();
  for (Resource k = 1; k <= cap; ++k) {
    const double m = f.marginal(k);
    if (m < -tol) return false;                // must be nondecreasing
    if (m > prev_marginal + tol) return false; // marginals must not grow
    prev_marginal = m;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CappedLinearUtility
// ---------------------------------------------------------------------------

CappedLinearUtility::CappedLinearUtility(double slope, double cap,
                                         Resource capacity)
    : slope_(slope), cap_(cap), capacity_(capacity) {
  if (slope < 0.0 || cap < 0.0 || capacity < 0) {
    throw std::invalid_argument("capped linear: negative parameter");
  }
}

double CappedLinearUtility::value(double x) const {
  x = std::clamp(x, 0.0, static_cast<double>(capacity_));
  return slope_ * std::min(x, cap_);
}

// ---------------------------------------------------------------------------
// PowerUtility
// ---------------------------------------------------------------------------

PowerUtility::PowerUtility(double scale, double beta, Resource capacity)
    : scale_(scale), beta_(beta), capacity_(capacity) {
  if (scale < 0.0 || capacity < 0) {
    throw std::invalid_argument("power utility: negative parameter");
  }
  if (beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("power utility: beta must be in (0, 1]");
  }
}

double PowerUtility::value(double x) const {
  x = std::clamp(x, 0.0, static_cast<double>(capacity_));
  return scale_ * std::pow(x, beta_);
}

// ---------------------------------------------------------------------------
// LogUtility
// ---------------------------------------------------------------------------

LogUtility::LogUtility(double scale, double rate, Resource capacity)
    : scale_(scale), rate_(rate), capacity_(capacity) {
  if (scale < 0.0 || rate < 0.0 || capacity < 0) {
    throw std::invalid_argument("log utility: negative parameter");
  }
}

double LogUtility::value(double x) const {
  x = std::clamp(x, 0.0, static_cast<double>(capacity_));
  return scale_ * std::log1p(rate_ * x);
}

// ---------------------------------------------------------------------------
// ScaledUtility
// ---------------------------------------------------------------------------

ScaledUtility::ScaledUtility(UtilityPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  if (base_ == nullptr) {
    throw std::invalid_argument("scaled utility: null base");
  }
  if (factor < 0.0) {
    throw std::invalid_argument("scaled utility: negative factor");
  }
}

double ScaledUtility::value(double x) const { return factor_ * base_->value(x); }

double ScaledUtility::marginal(Resource k) const {
  return factor_ * base_->marginal(k);
}

// ---------------------------------------------------------------------------
// SaturatedUtility
// ---------------------------------------------------------------------------

SaturatedUtility::SaturatedUtility(UtilityPtr base, double ceiling)
    : base_(std::move(base)), ceiling_(ceiling) {
  if (base_ == nullptr) {
    throw std::invalid_argument("saturated utility: null base");
  }
  if (ceiling < 0.0) {
    throw std::invalid_argument("saturated utility: negative ceiling");
  }
}

double SaturatedUtility::value(double x) const {
  return std::min(base_->value(x), ceiling_);
}

// ---------------------------------------------------------------------------
// PiecewiseLinearUtility
// ---------------------------------------------------------------------------

PiecewiseLinearUtility::PiecewiseLinearUtility(std::vector<double> xs,
                                               std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)), capacity_(0) {
  if (xs_.size() != ys_.size() || xs_.size() < 2) {
    throw std::invalid_argument("piecewise linear: need >= 2 matched points");
  }
  if (xs_.front() != 0.0) {
    throw std::invalid_argument("piecewise linear: first breakpoint at x=0");
  }
  if (ys_.front() < 0.0) {
    throw std::invalid_argument("piecewise linear: negative utility");
  }
  double prev_slope = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    const double dx = xs_[i + 1] - xs_[i];
    const double dy = ys_[i + 1] - ys_[i];
    if (dx <= 0.0) {
      throw std::invalid_argument("piecewise linear: xs not increasing");
    }
    if (dy < 0.0) {
      throw std::invalid_argument("piecewise linear: not nondecreasing");
    }
    const double slope = dy / dx;
    if (slope > prev_slope + 1e-12) {
      throw std::invalid_argument("piecewise linear: not concave");
    }
    prev_slope = slope;
  }
  const double cap = xs_.back();
  if (cap != std::floor(cap)) {
    throw std::invalid_argument("piecewise linear: capacity must be integral");
  }
  capacity_ = static_cast<Resource>(cap);
}

double PiecewiseLinearUtility::value(double x) const {
  x = std::clamp(x, 0.0, xs_.back());
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto hi = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(it - xs_.begin(), 1,
                                 static_cast<std::ptrdiff_t>(xs_.size()) - 1));
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

// ---------------------------------------------------------------------------
// TabulatedUtility
// ---------------------------------------------------------------------------

TabulatedUtility::TabulatedUtility(std::vector<double> values, double tol)
    : values_(std::move(values)) {
  if (values_.empty()) {
    throw std::invalid_argument("tabulated: need at least f(0)");
  }
  if (values_.front() < -tol) {
    throw std::invalid_argument("tabulated: negative utility at 0");
  }
  double prev_marginal = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k < values_.size(); ++k) {
    const double m = values_[k] - values_[k - 1];
    if (m < -tol) throw std::invalid_argument("tabulated: not nondecreasing");
    if (m > prev_marginal + tol) {
      throw std::invalid_argument("tabulated: not concave");
    }
    prev_marginal = m;
  }
}

TabulatedUtility::TabulatedUtility(RepairTag, std::vector<double> values)
    : values_(std::move(values)) {}

TabulatedUtility TabulatedUtility::from_samples_with_repair(
    std::span<const double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("tabulated: need at least f(0)");
  }
  std::vector<double> marginals;
  marginals.reserve(samples.size() - 1);
  for (std::size_t k = 1; k < samples.size(); ++k) {
    marginals.push_back(std::max(0.0, samples[k] - samples[k - 1]));
  }
  const std::vector<double> repaired =
      support::pav_nonincreasing(marginals);
  std::vector<double> values(samples.size());
  values[0] = std::max(0.0, samples[0]);
  for (std::size_t k = 1; k < samples.size(); ++k) {
    values[k] = values[k - 1] + std::max(0.0, repaired[k - 1]);
  }
  return TabulatedUtility(RepairTag{}, std::move(values));
}

double TabulatedUtility::value(double x) const {
  const double cap = static_cast<double>(values_.size() - 1);
  x = std::clamp(x, 0.0, cap);
  const double lo = std::floor(x);
  const auto k = static_cast<std::size_t>(lo);
  if (k + 1 >= values_.size()) return values_.back();
  const double t = x - lo;
  return values_[k] + t * (values_[k + 1] - values_[k]);
}

double TabulatedUtility::marginal(Resource k) const {
  if (k < 1 || static_cast<std::size_t>(k) >= values_.size()) return 0.0;
  const auto idx = static_cast<std::size_t>(k);
  return values_[idx] - values_[idx - 1];
}

}  // namespace aa::util
