#include "utility/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

namespace aa::util {

UtilityPtr fit_concave_utility(std::span<const Sample> samples,
                               Resource capacity, const FitOptions& options) {
  if (capacity < 0) {
    throw std::invalid_argument("fit: negative capacity");
  }
  // Average repeated measurements per distinct x (clamped into domain).
  std::map<double, std::pair<double, std::size_t>> by_x;
  for (const Sample& s : samples) {
    if (s.x < 0.0 || s.x > static_cast<double>(capacity)) continue;
    auto& [sum, count] = by_x[s.x];
    sum += s.y;
    ++count;
  }
  if (by_x.empty()) {
    throw std::invalid_argument("fit: no samples inside [0, capacity]");
  }

  std::vector<double> xs;
  std::vector<double> ys;
  if (options.anchor_zero && by_x.begin()->first > 0.0) {
    xs.push_back(0.0);
    ys.push_back(0.0);
  }
  for (const auto& [x, acc] : by_x) {
    xs.push_back(x);
    ys.push_back(acc.first / static_cast<double>(acc.second));
  }

  // Piecewise-linear interpolation of the averaged points onto the grid,
  // constant beyond the last sample.
  std::vector<double> grid(static_cast<std::size_t>(capacity) + 1);
  std::size_t segment = 0;
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const double x = static_cast<double>(k);
    while (segment + 1 < xs.size() && xs[segment + 1] < x) ++segment;
    if (x <= xs.front()) {
      grid[k] = ys.front();
    } else if (x >= xs.back()) {
      grid[k] = ys.back();
    } else {
      const double t = (x - xs[segment]) / (xs[segment + 1] - xs[segment]);
      grid[k] = ys[segment] + t * (ys[segment + 1] - ys[segment]);
    }
  }

  return std::make_shared<TabulatedUtility>(
      TabulatedUtility::from_samples_with_repair(grid));
}

std::vector<Sample> measure_utility(const UtilityFunction& truth,
                                    std::span<const Resource> levels,
                                    std::size_t repeats, double noise_fraction,
                                    support::Rng& rng) {
  if (noise_fraction < 0.0) {
    throw std::invalid_argument("measure: negative noise");
  }
  const double scale =
      truth.value(static_cast<double>(truth.capacity())) * noise_fraction;
  std::vector<Sample> samples;
  samples.reserve(levels.size() * repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const Resource level : levels) {
      const double x = static_cast<double>(level);
      const double y = truth.value(x) + rng.normal(0.0, scale);
      samples.push_back({x, std::max(0.0, y)});
    }
  }
  return samples;
}

std::vector<Resource> even_levels(Resource capacity, std::size_t count) {
  if (capacity <= 0 || count == 0) {
    throw std::invalid_argument("even_levels: degenerate request");
  }
  std::vector<Resource> levels;
  levels.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    const auto level = static_cast<Resource>(std::llround(
        static_cast<double>(capacity) * static_cast<double>(i) /
        static_cast<double>(count)));
    levels.push_back(std::max<Resource>(1, level));
  }
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return levels;
}

}  // namespace aa::util
