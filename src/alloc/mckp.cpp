#include "alloc/mckp.hpp"

#include <algorithm>
#include <stdexcept>

namespace aa::alloc {

namespace {

using util::Resource;

void check_classes(std::span<const MckpClass> classes, Resource capacity) {
  if (capacity < 0) throw std::invalid_argument("mckp: negative capacity");
  for (const MckpClass& cls : classes) {
    for (const MckpItem& item : cls) {
      if (item.weight < 0) {
        throw std::invalid_argument("mckp: negative item weight");
      }
    }
  }
}

}  // namespace

MckpResult mckp_dp_exact(std::span<const MckpClass> classes,
                         Resource capacity) {
  check_classes(classes, capacity);
  const auto cap = static_cast<std::size_t>(capacity);
  const std::size_t n = classes.size();

  std::vector<double> dp(cap + 1, 0.0);
  // choice[i][c]: item picked for class i when the first i+1 classes use
  // exactly budget c (kZeroChoice = the implicit zero item).
  std::vector<std::vector<std::size_t>> choice(
      n, std::vector<std::size_t>(cap + 1, kZeroChoice));

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> next = dp;  // Zero item by default.
    for (std::size_t j = 0; j < classes[i].size(); ++j) {
      const MckpItem& item = classes[i][j];
      if (item.weight > capacity) continue;
      const auto w = static_cast<std::size_t>(item.weight);
      for (std::size_t c = cap; c >= w; --c) {
        const double candidate = dp[c - w] + item.value;
        if (candidate > next[c]) {
          next[c] = candidate;
          choice[i][c] = j;
        }
        if (c == 0) break;  // Unsigned guard (w == 0).
      }
    }
    dp = std::move(next);
  }

  MckpResult result;
  result.choice.assign(n, kZeroChoice);
  std::size_t budget = cap;
  // dp is nondecreasing in budget, so the optimum sits at full budget.
  result.total_value = dp[cap];
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t j = choice[i][budget];
    result.choice[i] = j;
    if (j != kZeroChoice) {
      const auto w = static_cast<std::size_t>(classes[i][j].weight);
      result.total_weight += classes[i][j].weight;
      budget -= w;
    }
  }
  return result;
}

namespace {

/// Upper-convex-hull of a class, including the implicit (0, 0) item.
/// Returns indices into the class (kZeroChoice marks the origin).
struct HullPoint {
  Resource weight;
  double value;
  std::size_t item;  // Original index, kZeroChoice for the origin.
};

std::vector<HullPoint> upper_hull(const MckpClass& cls) {
  std::vector<HullPoint> points;
  points.push_back({0, 0.0, kZeroChoice});
  std::vector<std::size_t> order(cls.size());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cls[a].weight != cls[b].weight) return cls[a].weight < cls[b].weight;
    return cls[a].value > cls[b].value;
  });
  for (const std::size_t j : order) {
    const MckpItem& item = cls[j];
    if (item.value <= points.back().value) continue;  // Dominated.
    HullPoint candidate{item.weight, item.value, j};
    // Pop hull points that make the slope sequence non-decreasing.
    while (points.size() >= 2) {
      const HullPoint& b = points.back();
      const HullPoint& a = points[points.size() - 2];
      if (candidate.weight == b.weight) break;  // Same weight, b has >= value.
      const double slope_ab =
          (b.value - a.value) / static_cast<double>(b.weight - a.weight);
      const double slope_bc = (candidate.value - b.value) /
                              static_cast<double>(candidate.weight - b.weight);
      if (slope_bc > slope_ab) {
        points.pop_back();
      } else {
        break;
      }
    }
    if (candidate.weight > points.back().weight) {
      points.push_back(candidate);
    } else if (candidate.weight == points.back().weight &&
               candidate.value > points.back().value) {
      // Zero-weight item with positive value supersedes the origin.
      points.back() = candidate;
    }
  }
  return points;
}

}  // namespace

MckpResult mckp_greedy(std::span<const MckpClass> classes, Resource capacity) {
  check_classes(classes, capacity);
  const std::size_t n = classes.size();

  struct Increment {
    double density;
    Resource dw;
    double dv;
    std::size_t cls;
    std::size_t step;  // Position within the class hull (1-based).
    std::size_t item;  // Original item index reached by this increment.
  };

  std::vector<std::vector<HullPoint>> hulls(n);
  std::vector<Increment> increments;
  for (std::size_t i = 0; i < n; ++i) {
    hulls[i] = upper_hull(classes[i]);
    for (std::size_t p = 1; p < hulls[i].size(); ++p) {
      const Resource dw = hulls[i][p].weight - hulls[i][p - 1].weight;
      const double dv = hulls[i][p].value - hulls[i][p - 1].value;
      increments.push_back({dv / static_cast<double>(dw), dw, dv, i, p,
                            hulls[i][p].item});
    }
  }
  // Density order; ties keep per-class step order (lower step first).
  std::sort(increments.begin(), increments.end(),
            [](const Increment& a, const Increment& b) {
              if (a.density != b.density) return a.density > b.density;
              if (a.cls != b.cls) return a.cls < b.cls;
              return a.step < b.step;
            });

  MckpResult greedy;
  greedy.choice.assign(n, kZeroChoice);
  std::vector<std::size_t> hull_pos(n, 0);
  Resource remaining = capacity;
  for (const Increment& inc : increments) {
    if (hull_pos[inc.cls] + 1 != inc.step) continue;  // Out-of-order tie.
    if (inc.dw > remaining) break;  // LP would split here; greedy stops.
    remaining -= inc.dw;
    hull_pos[inc.cls] = inc.step;
    greedy.choice[inc.cls] = inc.item;
    greedy.total_value += inc.dv;
    greedy.total_weight += inc.dw;
  }

  // Gens-Levner safeguard: the best feasible single item alone.
  MckpResult best_single;
  best_single.choice.assign(n, kZeroChoice);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < classes[i].size(); ++j) {
      const MckpItem& item = classes[i][j];
      if (item.weight <= capacity && item.value > best_single.total_value) {
        best_single.choice.assign(n, kZeroChoice);
        best_single.choice[i] = j;
        best_single.total_value = item.value;
        best_single.total_weight = item.weight;
      }
    }
  }
  return best_single.total_value > greedy.total_value ? best_single : greedy;
}

MckpClass class_from_utility(const util::UtilityFunction& f,
                             std::span<const Resource> levels) {
  MckpClass cls;
  Resource prev = -1;
  std::vector<Resource> sorted(levels.begin(), levels.end());
  std::sort(sorted.begin(), sorted.end());
  for (Resource level : sorted) {
    level = std::clamp<Resource>(level, 0, f.capacity());
    if (level == prev || level == 0) continue;
    prev = level;
    cls.push_back({level, f.value(static_cast<double>(level))});
  }
  return cls;
}

MckpClass class_from_utility_uniform(const util::UtilityFunction& f,
                                     Resource step) {
  if (step <= 0) throw std::invalid_argument("mckp: step must be positive");
  std::vector<Resource> levels;
  for (Resource level = step; level <= f.capacity(); level += step) {
    levels.push_back(level);
  }
  if (levels.empty() || levels.back() != f.capacity()) {
    levels.push_back(f.capacity());
  }
  return class_from_utility(f, levels);
}

}  // namespace aa::alloc
