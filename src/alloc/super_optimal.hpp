#pragma once

// Super-optimal allocation (paper Definition V.1): relax the m per-server
// capacity constraints to the single pooled constraint sum c_hat_i <= m*C
// (with each thread still capped at C, the domain of its utility function).
// Its utility F_hat upper-bounds the optimal AA utility F* (Lemma V.2), and
// both approximation algorithms take it as input.

#include <span>

#include "alloc/allocator.hpp"

namespace aa::alloc {

struct SuperOptimalResult {
  std::vector<util::Resource> c_hat;  ///< Super-optimal allocation per thread.
  double utility = 0.0;               ///< F_hat = sum f_i(c_hat_i).
};

/// Computes a super-optimal allocation for `num_servers` servers of capacity
/// `capacity` each, using the threshold-bisection allocator (the paper's
/// O(n (log mC)^2) path, citing Galil [16]).
[[nodiscard]] SuperOptimalResult super_optimal(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity);

/// Same, via the heap-greedy allocator (O((n + mC) log n)); used to
/// cross-check the bisection path in tests and ablations.
[[nodiscard]] SuperOptimalResult super_optimal_greedy(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity);

}  // namespace aa::alloc
