#pragma once

// Super-optimal allocation (paper Definition V.1): relax the m per-server
// capacity constraints to the single pooled constraint sum c_hat_i <= m*C
// (with each thread still capped at C, the domain of its utility function).
// Its utility F_hat upper-bounds the optimal AA utility F* (Lemma V.2), and
// both approximation algorithms take it as input.
//
// Strategy seam (docs/ALGORITHMS.md "Strategy seam"): `super_optimal` and
// `super_optimal_greedy` are the serial reference implementations and never
// change. The optimized paths — `super_optimal_parallel` (bit-identical SoA
// rewrite, optionally fanned across a thread pool) and `super_optimal_price`
// (single-price discovery with a documented tolerance, for the very-large-n
// regime) — sit behind SuperOptimalStrategy. alg1/alg2/alg2h/warm-start
// route through `super_optimal_routed`, which dispatches on the process-wide
// default set by aa_solve/aa_serve `--so-strategy`. Branch-and-bound keeps
// calling the serial reference directly: its pruning needs a true upper
// bound, and the price variant's utility may fall below F_hat (never above).

#include <span>
#include <string_view>

#include "alloc/allocator.hpp"

namespace aa::alloc {

struct SuperOptimalResult {
  std::vector<util::Resource> c_hat;  ///< Super-optimal allocation per thread.
  double utility = 0.0;               ///< F_hat = sum f_i(c_hat_i).
};

/// How super_optimal_routed / super_optimal_with compute the allocation.
enum class SuperOptimalStrategy {
  kSerial,    ///< allocate_bisection, the reference path (default).
  kParallel,  ///< allocate_bisection_soa: bit-identical, pool-accelerated.
  kPrice,     ///< allocate_price: tolerance contract, fastest at huge n.
};

struct SuperOptimalOptions {
  SuperOptimalStrategy strategy = SuperOptimalStrategy::kSerial;
  /// kPrice only: relative price-convergence tolerance (see allocate_price
  /// for the exact utility contract).
  double price_tolerance = 1e-9;
  /// kParallel/kPrice: pool for the probe fan-out; nullptr means
  /// support::global_pool(). Never stored by the process-wide default.
  support::ThreadPool* workers = nullptr;
};

/// Computes a super-optimal allocation for `num_servers` servers of capacity
/// `capacity` each, using the threshold-bisection allocator (the paper's
/// O(n (log mC)^2) path, citing Galil [16]).
[[nodiscard]] SuperOptimalResult super_optimal(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity);

/// Same, via the heap-greedy allocator (O((n + mC) log n)); used to
/// cross-check the bisection path in tests and ablations.
[[nodiscard]] SuperOptimalResult super_optimal_greedy(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity);

/// SoA + bracket-narrowing rewrite, fanned across `workers` (nullptr means
/// support::global_pool()). Bit-identical to super_optimal for every input
/// and worker count — guaranteed by super_optimal_equivalence_test.
[[nodiscard]] SuperOptimalResult super_optimal_parallel(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, support::ThreadPool* workers = nullptr);

/// Single-price discovery variant: utility is within
/// price_tol * (1 + max marginal) * m * C of F_hat and never above it (see
/// allocate_price). Not a valid bound source for branch-and-bound.
[[nodiscard]] SuperOptimalResult super_optimal_price(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, double price_tol = 1e-9,
    support::ThreadPool* workers = nullptr);

/// Dispatches on options.strategy.
[[nodiscard]] SuperOptimalResult super_optimal_with(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, const SuperOptimalOptions& options);

/// Dispatches on the process-wide default options. This is the entry point
/// alg1/alg2/warm-start call.
[[nodiscard]] SuperOptimalResult super_optimal_routed(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity);

/// Strategy-routed single-pool allocation over an explicit pool/cap pair;
/// the heterogeneous extension's pooled bound (pool = sum C_j, cap = max
/// C_j) goes through here so it follows the same seam.
[[nodiscard]] AllocationResult allocate_pooled_routed(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap);

/// Process-wide default strategy, consulted by super_optimal_routed. The
/// `workers` field is ignored (the routed paths always use the global
/// pool); set it per call via super_optimal_with instead. Not synchronized:
/// set it at startup (aa_solve/aa_serve do), before solver threads exist.
void set_default_super_optimal_options(const SuperOptimalOptions& options);
[[nodiscard]] SuperOptimalOptions default_super_optimal_options();

/// Parses "serial" | "parallel" | "price" (the aa_solve/aa_serve
/// --so-strategy values); throws std::invalid_argument otherwise.
[[nodiscard]] SuperOptimalStrategy parse_super_optimal_strategy(
    std::string_view name);
[[nodiscard]] std::string_view super_optimal_strategy_name(
    SuperOptimalStrategy strategy);

}  // namespace aa::alloc
